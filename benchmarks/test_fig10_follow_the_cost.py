"""Figure 10: follow-the-cost migration, Deco vs the Heuristic baseline.

Paper shapes: (a) Deco's total cost is the lowest at every fleet size,
with a gap that grows with workflow size; (b) Deco stays below the
Heuristic at every re-optimization threshold.
"""

from repro.bench import fig10_follow_the_cost
from repro.bench.harness import is_full_profile


def test_fig10(benchmark, config, report):
    degrees = (1.0, 4.0, 8.0) if is_full_profile() else (1.0, 4.0)
    thresholds = (0.1, 0.3, 0.5, 0.7, 0.9) if is_full_profile() else (0.1, 0.5, 0.9)
    out = benchmark.pedantic(
        lambda: fig10_follow_the_cost(config, degrees=degrees, thresholds=thresholds),
        rounds=1,
        iterations=1,
    )
    report("fig10a_follow_the_cost_by_size", out["by_size"], "Figure 10a: cost vs fleet size")
    report(
        "fig10b_follow_the_cost_by_threshold",
        out["by_threshold"],
        "Figure 10b: cost vs heuristic threshold",
    )

    for row in out["by_size"]:
        assert row["deco_cost"] <= row["heuristic_cost"] * 1.02
        assert row["deco_cost"] <= row["static_cost"] * 1.02
    # Gap grows with workflow size.
    norms = [r["cost_norm"] for r in out["by_size"]]
    assert norms[-1] <= norms[0] + 1e-9
    for row in out["by_threshold"]:
        assert row["deco_cost"] <= row["heuristic_cost"] * 1.02
