"""Figure 8: cost/time vs probabilistic deadline, Deco vs Autoscaling.

Paper shapes: Deco never pays more than Autoscaling in its optimization
objective at the same probabilistic guarantee, and both plans satisfy
the requirement.  (The paper reports 30-50% measured-cost reductions;
our Autoscaling implementation plus identical runtime models narrows
the gap -- see EXPERIMENTS.md for the measured numbers.)
"""

from repro.bench import fig08_probabilistic_deadline_sweep
from repro.bench.harness import is_full_profile


def test_fig08(benchmark, config, report):
    if is_full_profile():
        degrees = (1.0, 4.0, 8.0)
        percentiles = (90.0, 92.0, 94.0, 96.0, 98.0, 99.9)
    else:
        degrees = (1.0, 4.0)
        percentiles = (90.0, 96.0, 99.9)
    rows = benchmark.pedantic(
        lambda: fig08_probabilistic_deadline_sweep(config, degrees=degrees, percentiles=percentiles),
        rounds=1,
        iterations=1,
    )
    report("fig08_prob_deadline_sweep", rows, "Figure 8: probabilistic deadline sweep")

    for row in rows:
        # Deco meets the probabilistic requirement it optimized for.
        assert row["deco_prob"] >= row["percentile"] / 100.0 - 1e-9
        # Deco's objective (Eq. 1 expected cost) never exceeds Autoscaling's.
        assert row["expected_cost_norm"] <= 1.0 + 1e-6
    # Measured cost: Deco wins on average across the sweep.
    mean_norm = sum(r["cost_norm"] for r in rows) / len(rows)
    assert mean_norm <= 1.05

    # Makespan-cache reuse: the deadline is fixed per workflow, so every
    # solve after the first reuses Monte Carlo propagations through the
    # Deco makespan cache -- strictly fewer backend makespan
    # computations (misses) than states evaluated.
    by_wf: dict[str, list[dict]] = {}
    for row in rows:
        by_wf.setdefault(row["workflow"], []).append(row)
    for wf_rows in by_wf.values():
        first, rest = wf_rows[0], wf_rows[1:]
        assert rest, "sweep needs >= 2 percentiles per workflow"
        for row in rest:
            assert row["mk_cache_hits"] > 0, (
                f"{row['workflow']} p={row['percentile']}: no cache reuse"
            )
            assert row["mk_cache_misses"] < first["mk_cache_misses"], (
                "warm solve did not compute strictly fewer makespans "
                "than the cold one"
            )
