"""Extension bench: the spot-market cost/risk trade-off.

Beyond the paper's on-demand evaluation (its intro notes providers
offer "different pricing models"): sweep the bid level for a
deadline-style task on m1.large spot and show the classic frontier --
higher bids buy completion probability, the expected saving over
on-demand stays large even at aggressive (above on-demand) bids because
spot charges the *market* price.
"""

import numpy as np

from repro.cloud.spot import SpotPriceProcess, simulate_spot_run


def test_spot_bid_frontier(benchmark, config, report):
    process = SpotPriceProcess.for_type(config.catalog, "m1.large")
    rng = np.random.default_rng(config.seed)
    bids = (0.8, 1.0, 1.5, 2.0)  # fractions of the mean spot price... scaled below

    def run():
        rows = []
        for frac in bids:
            bid = process.mean_price * frac if frac <= 1.5 else process.on_demand * 1.2
            out = simulate_spot_run(
                process, duration_hours=5.0, bid=bid, rng=rng,
                trials=150, horizon_hours=72,
            )
            rows.append(
                {
                    "bid": bid,
                    "completion_prob": out.completion_probability,
                    "mean_cost": out.mean_cost,
                    "on_demand_cost": out.on_demand_cost,
                    "saving": out.saving_vs_on_demand,
                    "revocations": out.mean_revocations,
                    "makespan_h": out.mean_makespan_hours,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("spot_bid_frontier", rows, "Extension: spot bid frontier (m1.large)")

    probs = [r["completion_prob"] for r in rows]
    assert probs == sorted(probs), "completion probability must grow with the bid"
    assert rows[-1]["completion_prob"] > 0.95
    assert rows[-1]["saving"] > 0.3  # spot still far below on-demand
