"""Ablation benches for the design choices DESIGN.md calls out.

1. Probabilistic vs deterministic constraint notions (the paper's core
   argument): the deterministic plan is cheaper but misses the
   requirement; the probabilistic plan meets it.
2. Monte Carlo iteration count: estimate error shrinks with samples.
3. A* pruning: far fewer expansions than uninformed search, same optimum.
4. Warm-started vs cold transformation search.
"""

import pytest

from repro.bench import (
    ablation_astar_pruning,
    ablation_mc_iterations,
    ablation_probabilistic_vs_deterministic,
    ablation_search_seeds,
)


def test_probabilistic_vs_deterministic(benchmark, config, report):
    rows = benchmark.pedantic(
        lambda: ablation_probabilistic_vs_deterministic(config), rounds=1, iterations=1
    )
    report("ablation_probabilistic", rows, "Ablation: probabilistic vs deterministic")

    prob = next(r for r in rows if r["notion"] == "probabilistic")
    det = next(r for r in rows if r["notion"] == "deterministic")
    assert prob["meets_requirement"]
    assert prob["deadline_hit_rate"] >= det["deadline_hit_rate"] - 1e-9
    assert det["expected_cost"] <= prob["expected_cost"] + 1e-9


def test_mc_iterations(benchmark, config, report):
    rows = benchmark.pedantic(
        lambda: ablation_mc_iterations(config, sample_counts=(10, 50, 200)),
        rounds=1,
        iterations=1,
    )
    report("ablation_mc_iterations", rows, "Ablation: Monte Carlo iteration count")

    # Error shrinks (weakly) with more samples.
    assert rows[-1]["abs_error"] <= rows[0]["abs_error"] + 0.05
    assert rows[-1]["std"] <= rows[0]["std"] + 0.05


def test_astar_pruning(benchmark, config, report):
    rows = benchmark.pedantic(lambda: ablation_astar_pruning(config), rounds=1, iterations=1)
    report("ablation_astar", rows, "Ablation: A* vs uninformed admission search")

    astar = next(r for r in rows if r["variant"] == "astar")
    blind = next(r for r in rows if r["variant"] == "uninformed")
    assert astar["score"] == pytest.approx(blind["score"])
    assert astar["expanded"] <= blind["expanded"]


def test_search_seeds(benchmark, config, report):
    rows = benchmark.pedantic(lambda: ablation_search_seeds(config), rounds=1, iterations=1)
    report("ablation_seeds", rows, "Ablation: warm-start seeds")

    warm = next(r for r in rows if r["variant"] == "warm")
    assert warm["feasible"]


def test_failure_injection(benchmark, config, report):
    from repro.bench import ablation_failure_injection

    rows = benchmark.pedantic(
        lambda: ablation_failure_injection(config, failure_rates=(0.0, 0.1, 0.2)),
        rounds=1,
        iterations=1,
    )
    report("ablation_failures", rows, "Ablation: task-failure injection")

    assert rows[0]["deadline_hit_rate"] >= rows[-1]["deadline_hit_rate"] - 1e-9
    assert rows[-1]["mean_makespan"] > rows[0]["mean_makespan"]
    # Billed cost is hour-quantized, so on sub-hour tasks the retry cost
    # shows up as makespan, not dollars; just require it stays in band.
    assert rows[-1]["mean_cost"] >= rows[0]["mean_cost"] * 0.9
