"""Solver speedup: vectorized ("GPU") vs scalar ("CPU") backend.

The paper reports 10x-36x for its CUDA solver over a 6-core CPU solver.
Our substitution (NumPy array programs over pure-Python loops, same
numerics) must show the same order-of-magnitude shape, growing with
workflow size.
"""

import numpy as np

from repro.bench import solver_speedup
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.state import PlanState
from repro.workflow.generators import montage


def test_speedup_table(benchmark, config, report):
    rows = benchmark.pedantic(
        lambda: solver_speedup(config, degrees=(1.0, 4.0, 8.0)), rounds=1, iterations=1
    )
    report("solver_speedup", rows, "Solver speedup: vectorized vs scalar backend")

    for row in rows:
        assert row["speedup"] > 2.0, f"{row['workflow']}: no meaningful speedup"
    # The larger workflows see an order-of-magnitude gap.  (Single-shot
    # wall-clock on the smallest problem is noisy, so no cross-scale
    # monotonicity is asserted -- the paper's own speedups are not
    # monotone in size either: 12x/10x/20x.)
    assert rows[-1]["speedup"] > 5.0


def test_vectorized_evaluation_throughput(benchmark, config):
    """pytest-benchmark timing of the hot kernel itself: one batched
    state evaluation on Montage-8."""
    wf = montage(degrees=8.0, seed=config.seed)
    problem = CompiledProblem.compile(
        wf, config.catalog, deadline=1e9, percentile=96.0,
        num_samples=64, seed=config.seed, runtime_model=config.runtime_model,
    )
    backend = VectorizedBackend()
    rng = np.random.default_rng(0)
    states = [PlanState(rng.integers(0, problem.num_types, problem.num_tasks)) for _ in range(8)]

    result = benchmark(lambda: backend.evaluate_batch(problem, states))
    assert len(result) == 8
