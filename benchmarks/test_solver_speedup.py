"""Solver speedup: vectorized ("GPU") vs scalar ("CPU") backend, and the
level-parallel fast path vs the pre-optimization per-task loop.

The paper reports 10x-36x for its CUDA solver over a 6-core CPU solver.
Our substitution (NumPy array programs over pure-Python loops, same
numerics) must show the same order-of-magnitude shape, growing with
workflow size.  The level-parallel comparison is this repo's own
before/after: the same vectorized backend with the per-task propagation
loop (``level_parallel=False``) against the fused per-level kernel, at
the batch shape the search actually evaluates.
"""

from pathlib import Path

import numpy as np

from repro.bench import (
    incremental_search,
    incremental_speedup,
    optimization_overhead,
    solver_speedup,
    write_bench_solver_json,
)
from repro.bench.harness import is_full_profile
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.state import PlanState
from repro.workflow.generators import montage

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_solver.json"


def test_speedup_table(benchmark, config, report):
    rows = benchmark.pedantic(
        lambda: solver_speedup(config, degrees=(1.0, 4.0, 8.0)), rounds=1, iterations=1
    )
    report("solver_speedup", rows, "Solver speedup: vectorized vs scalar backend")

    for row in rows:
        assert row["speedup"] > 2.0, f"{row['workflow']}: no meaningful speedup"
        # The fused level kernel beats the per-task loop at every scale.
        assert row["level_speedup"] > 1.5, f"{row['workflow']}: level path too slow"
    # The larger workflows see an order-of-magnitude gap.  (Single-shot
    # wall-clock on the smallest problem is noisy, so no cross-scale
    # monotonicity is asserted -- the paper's own speedups are not
    # monotone in size either: 12x/10x/20x.)
    assert rows[-1]["speedup"] > 5.0
    # Montage-8, search-shaped batch: the level-parallel rewrite is the
    # headline optimization of this repo (typ. ~8x on the dev box).
    assert rows[-1]["workflow"] == "montage-8"
    assert rows[-1]["level_speedup"] > 5.0, (
        f"level-parallel path only {rows[-1]['level_speedup']:.2f}x over "
        f"the per-task loop on Montage-8"
    )

    # Incremental engine vs the PR-1 level-parallel path, on Montage-8:
    # delta propagation at the per-state evaluation shape, and the
    # end-to-end search with delta + screening.  Per-state evaluation is
    # the acceptance gate (>= 2x); the end-to-end ratio is smaller
    # because the search shares non-evaluation work (child generation,
    # ranking) between both modes -- and that shared cost was itself cut
    # during this work (buffer-pool reuse, dense critical-path walk), so
    # the full-evaluation baseline here is much faster than it was.
    # Both modes must stay bit-identical (`identical` proves the plan
    # and every sample are unchanged).
    inc_rows = incremental_speedup(config, degrees=(8.0,))
    search_rows = incremental_search(config, degrees=(8.0,))
    for row in inc_rows + search_rows:
        assert row["identical"] is True, f"{row['workflow']}: results diverged"
    assert inc_rows[-1]["incremental_speedup"] >= 2.0, (
        f"per-state delta propagation only "
        f"{inc_rows[-1]['incremental_speedup']:.2f}x over the full kernel"
    )
    assert search_rows[-1]["search_speedup"] >= 1.2, (
        f"incremental search only "
        f"{search_rows[-1]['search_speedup']:.2f}x over the full-evaluation search"
    )
    report(
        "incremental_speedup",
        inc_rows + search_rows,
        "Incremental evaluation: delta propagation + fidelity screening",
    )

    # Machine-readable record with before/after fields, at the repo root.
    sizes = (20, 100, 1000) if is_full_profile() else (20, 100, 400)
    payload = write_bench_solver_json(
        BENCH_JSON,
        config,
        speedup_rows=rows,
        overhead_rows=optimization_overhead(config, sizes=sizes),
        incremental_rows=inc_rows,
        incremental_search_rows=search_rows,
    )
    assert payload["solver_speedup"][-1]["taskloop_before_ms"] > payload[
        "solver_speedup"
    ][-1]["level_after_ms"]
    assert payload["incremental"]["per_state"][-1]["identical"] is True
    assert payload["git_sha"] and payload["generated_at"]


def test_vectorized_evaluation_throughput(benchmark, config):
    """pytest-benchmark timing of the hot kernel itself: one batched
    state evaluation on Montage-8."""
    wf = montage(degrees=8.0, seed=config.seed)
    problem = CompiledProblem.compile(
        wf, config.catalog, deadline=1e9, percentile=96.0,
        num_samples=64, seed=config.seed, runtime_model=config.runtime_model,
    )
    backend = VectorizedBackend()
    rng = np.random.default_rng(0)
    states = [PlanState(rng.integers(0, problem.num_types, problem.num_tasks)) for _ in range(8)]

    result = benchmark(lambda: backend.evaluate_batch(problem, states))
    assert len(result) == 8
