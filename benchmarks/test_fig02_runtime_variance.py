"""Figure 2: execution-time variance of Deco-optimized Montage plans.

Paper shape: the normalized execution time of Montage-1/4/8 varies
significantly across repeated runs (I/O and network interference).
"""

from repro.bench import fig02_runtime_variance
from repro.bench.harness import is_full_profile


def test_fig02(benchmark, config, report):
    degrees = (1.0, 4.0, 8.0) if is_full_profile() else (1.0, 4.0)
    rows = benchmark.pedantic(
        lambda: fig02_runtime_variance(config, degrees=degrees), rounds=1, iterations=1
    )
    report("fig02_runtime_variance", rows, "Figure 2: normalized makespan quantiles")

    for row in rows:
        assert row["min"] < row["median"] < row["max"]
        assert row["spread"] > 0.02, f"{row['workflow']} shows no dynamics"
        assert row["p25"] <= 1.0 <= row["p75"] or row["spread"] > 0.05
