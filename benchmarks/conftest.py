"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table/figure of the paper via the
:mod:`repro.bench` drivers, times the regeneration with
pytest-benchmark, asserts the paper's qualitative shape, and writes the
reproduced table to ``benchmarks/results/<name>.txt``.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_FULL=1`` for paper-scale parameters (slower).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import BenchConfig, format_table
from repro.bench.harness import is_full_profile

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    if is_full_profile():
        return BenchConfig(seed=7, num_samples=200, max_evaluations=3000)
    return BenchConfig(seed=7, num_samples=100, max_evaluations=800, runs_per_plan=8)


@pytest.fixture(scope="session")
def report():
    """Writes a reproduced table to the results directory and echoes it."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, rows, title: str) -> None:
        text = format_table(rows, title)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _report
