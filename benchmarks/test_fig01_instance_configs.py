"""Figure 1: Montage cost under seven instance configurations.

Paper shapes asserted: m1.small / m1.medium miss the deadline; among
deadline-meeting configurations Deco is the cheapest; Deco lands well
below m1.xlarge (the paper reports ~40% of its cost).
"""

from repro.bench import fig01_instance_configs


def test_fig01(benchmark, config, report):
    rows = benchmark.pedantic(
        lambda: fig01_instance_configs(config), rounds=1, iterations=1
    )
    report("fig01_instance_configs", rows, "Figure 1: Montage cost per configuration")

    by_name = {r["config"]: r for r in rows}
    assert not by_name["m1.small"]["meets_deadline"]
    assert by_name["deco"]["meets_deadline"]
    feasible = [r for r in rows if r["meets_deadline"]]
    assert by_name["deco"]["mean_cost"] == min(r["mean_cost"] for r in feasible)
    assert by_name["deco"]["cost_norm"] < 0.6
