"""Table 2: fitted I/O performance distributions per instance type.

Paper shape: sequential I/O follows a Gamma distribution and random
I/O a Normal distribution on every type; the fitted parameters must
recover the ground-truth values (which are the paper's Table 2).
"""

import pytest

from repro.bench import table2_io_distributions

#: The paper's Table 2 (theta converted to bytes/s in our catalog).
PAPER_TABLE2 = {
    "m1.small": dict(k=129.3, theta=0.79e6, mu=150.3, sigma=50.0),
    "m1.medium": dict(k=127.1, theta=0.80e6, mu=128.9, sigma=8.4),
    "m1.large": dict(k=376.6, theta=0.28e6, mu=172.9, sigma=34.8),
    "m1.xlarge": dict(k=408.1, theta=0.26e6, mu=1034.0, sigma=146.4),
}


def test_table2(benchmark, config, report):
    rows = benchmark.pedantic(lambda: table2_io_distributions(config), rounds=1, iterations=1)
    report("table2_io_calibration", rows, "Table 2: I/O performance distributions")

    for row in rows:
        truth = PAPER_TABLE2[row["instance_type"]]
        assert row["seq_io_family"] == "gamma"
        assert row["rand_io_family"] == "normal"
        assert row["seq_io_k"] == pytest.approx(truth["k"], rel=0.15)
        assert row["seq_io_theta"] == pytest.approx(truth["theta"], rel=0.15)
        assert row["rand_io_mu"] == pytest.approx(truth["mu"], rel=0.05)
        assert row["rand_io_sigma"] == pytest.approx(truth["sigma"], rel=0.2)
