"""Figures 6-7: network performance dynamics and pairwise histograms.

Paper shapes: m1.medium network performance varies substantially and is
well modeled by a Normal distribution (Fig. 6); the large<->large link
is faster and tighter than medium<->large (Fig. 7), i.e. better
instances buy steadier network performance.
"""

from repro.bench import fig06_network_dynamics, fig07_network_histograms


def test_fig06(benchmark, config, report):
    row = benchmark.pedantic(lambda: fig06_network_dynamics(config), rounds=1, iterations=1)
    report("fig06_network_dynamics", [row], "Figure 6: m1.medium network dynamics")

    assert row["max_relative_variation"] > 0.5  # "up to 50%" variance
    assert row["normal_fit_accepted"]


def test_fig07(benchmark, config, report):
    rows = benchmark.pedantic(lambda: fig07_network_histograms(config), rounds=1, iterations=1)
    report("fig07_network_histograms", rows, "Figure 7: pairwise link histograms")

    ll = next(r for r in rows if r["link"] == "m1.large<->m1.large")
    ml = next(r for r in rows if r["link"] == "m1.medium<->m1.large")
    assert ll["mean_mbps"] > ml["mean_mbps"]
    assert ll["cv"] < ml["cv"]
