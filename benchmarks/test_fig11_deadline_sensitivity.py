"""Figure 11: tight/medium/loose deadline sensitivity on Montage-8.

Paper shapes: Deco's expected cost decreases as the deadline loosens
(cheaper instances become admissible) while the execution time grows;
Deco does not exceed Autoscaling's cost in its objective.
"""

from repro.bench import fig11_deadline_sensitivity
from repro.bench.harness import is_full_profile


def test_fig11(benchmark, config, report):
    degrees = 8.0 if is_full_profile() else 4.0
    rows = benchmark.pedantic(
        lambda: fig11_deadline_sensitivity(config, degrees=degrees), rounds=1, iterations=1
    )
    report("fig11_deadline_sensitivity", rows, "Figure 11: deadline sensitivity")

    assert [r["deadline"] for r in rows] == ["tight", "medium", "loose"]
    # Deadline monotone in the expected objective.
    assert rows[0]["deco_expected_cost"] >= rows[1]["deco_expected_cost"] - 1e-9
    assert rows[1]["deco_expected_cost"] >= rows[2]["deco_expected_cost"] - 1e-9
    # Execution time grows as the deadline loosens.
    assert rows[0]["deco_time"] <= rows[2]["deco_time"] * 1.05
