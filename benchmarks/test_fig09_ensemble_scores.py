"""Figure 9: ensemble scores under budgets Bgt1-Bgt5, Deco vs SPSS.

Paper shapes: Deco's score >= SPSS's at every budget; the two coincide
at the extremes (Bgt5: both run everything affordable); SPSS's average
per-workflow cost is well above Deco's (the paper reports 1.4x).
"""

from repro.bench import fig09_ensemble_scores
from repro.bench.harness import is_full_profile
from repro.workflow.ensembles import ENSEMBLE_TYPES


def test_fig09(benchmark, config, report):
    kinds = ENSEMBLE_TYPES if is_full_profile() else ("constant", "uniform_unsorted", "pareto_sorted")
    rows = benchmark.pedantic(
        lambda: fig09_ensemble_scores(config, kinds=kinds), rounds=1, iterations=1
    )
    report("fig09_ensemble_scores", rows, "Figure 9: ensemble scores (Deco vs SPSS)")

    for row in rows:
        assert row["deco_score"] >= row["spss_score"] - 1e-9
    # Equal scores at the largest budget (both admit everything feasible).
    for kind in kinds:
        last = [r for r in rows if r["ensemble"] == kind][-1]
        assert last["deco_score"] >= last["spss_score"]
    # SPSS's admitted workflows cost more on average (paper: ~1.4x).
    ratios = [
        r["spss_avg_cost"] / r["deco_avg_cost"]
        for r in rows
        if r["deco_avg_cost"] > 0 and r["spss_avg_cost"] > 0
    ]
    assert sum(ratios) / len(ratios) > 1.1
