"""Optimization overhead per task (paper: 4.3-63.17 ms/task, 20-1000 tasks).

The paper's headline practicality claim: the per-task optimization
overhead stays in the tens of milliseconds even for 1000-task
workflows.  We assert the same band (our vectorized solver is at least
as fast as the paper's figure).
"""

from repro.bench import optimization_overhead
from repro.bench.harness import is_full_profile


def test_overhead(benchmark, config, report):
    sizes = (20, 100, 1000) if is_full_profile() else (20, 100, 400)
    rows = benchmark.pedantic(
        lambda: optimization_overhead(config, sizes=sizes), rounds=1, iterations=1
    )
    report("optimization_overhead", rows, "Optimization overhead per task")

    for row in rows:
        assert row["feasible"], f"{row['workflow']}: optimizer found no feasible plan"
        # Practicality band: at or below the paper's 63.17 ms/task ceiling.
        assert row["ms_per_task"] < 63.17


def test_single_schedule_call(benchmark, config):
    """pytest-benchmark timing of one complete Deco.schedule on a
    100-task Ligo workflow (the end-to-end optimizer latency)."""
    from repro.workflow.generators import ligo

    wf = ligo(num_tasks=100, seed=config.seed)
    deco = config.deco()

    plan = benchmark(lambda: deco.schedule(wf, "medium"))
    assert plan.feasible
