"""Use case 3: follow-the-cost runtime migration (Sections 3.3, 6.3.3).

Multiple workflows run across cloud regions with different price lists
(the paper uses EC2 US East vs Singapore, a ~33% gap on m1.small).
Periodically, a runtime optimizer may migrate a workflow's remaining
tasks to another region, paying the inter-region transfer cost (Eq. 9)
and transfer time (Eq. 10), to minimize the total monetary cost while
keeping every workflow within its (static, Eq.-10) deadline.

The driver simulates the fleet task-by-task with dynamic cloud
performance.  At every re-optimization period the *deco* policy
re-solves placement from current runtime state (a deterministic WLog
optimization -- the paper's "state is an array of integers, one region
id per workflow"); the *heuristic* baseline fixes an offline plan from
price differences and only adjusts when monitored task times deviate
from the estimate by more than a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import RngService
from repro.common.units import SECONDS_PER_HOUR
from repro.cloud.instance_types import Catalog
from repro.cloud.network import NetworkModel
from repro.cloud.pricing import PricingModel
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["WorkflowDeployment", "FollowCostResult", "FollowCostDriver"]

#: Modeled optimizer latency, charged to the workflow's clock (and to its
#: instance bill) on every runtime re-optimization.  The paper measures
#: Deco's GPU optimization at milliseconds per task, while the offline
#: heuristics it compares against "take a long time, which cannot catch
#: up with the workflow executions" -- the source of the threshold
#: effect in Fig. 10b.
DECO_REOPT_SECONDS_PER_TASK = 0.005
HEURISTIC_REOPT_SECONDS_PER_TASK = 0.5


@dataclass
class WorkflowDeployment:
    """One workflow in the fleet.

    ``assignment`` maps task id -> instance type name (from a prior
    scheduling optimization); ``region`` is where it currently runs.
    """

    workflow: Workflow
    assignment: dict[str, str]
    region: str
    deadline: float

    def __post_init__(self):
        missing = [t for t in self.workflow.task_ids if t not in self.assignment]
        if missing:
            raise ValidationError(f"deployment missing assignment for {missing[:3]}")
        if self.deadline <= 0:
            raise ValidationError("deadline must be > 0")


@dataclass(frozen=True)
class FollowCostResult:
    """Fleet-level outcome of one follow-the-cost run."""

    policy: str
    exec_cost: float
    migration_cost: float
    num_migrations: int
    makespans: tuple[float, ...]
    deadlines_met: int
    reoptimizations: int

    @property
    def total_cost(self) -> float:
        return self.exec_cost + self.migration_cost


@dataclass
class _RunState:
    """Mutable per-workflow execution progress."""

    deployment: WorkflowDeployment
    region: str
    assignment: dict[str, str] = field(default_factory=dict)  # current (adaptive) types
    next_index: int = 0              # next task (topological order) to run
    clock: float = 0.0               # this workflow's elapsed time
    exec_cost: float = 0.0
    migration_cost: float = 0.0
    migrations: int = 0
    reopt_seconds: float = 0.0
    last_estimate_error: float = 0.0

    def __post_init__(self):
        if not self.assignment:
            self.assignment = dict(self.deployment.assignment)

    @property
    def done(self) -> bool:
        return self.next_index >= len(self.deployment.workflow)


class FollowCostDriver:
    """Simulates the fleet and applies a migration policy."""

    def __init__(
        self,
        catalog: Catalog,
        seed: int = 0,
        period: float = 1800.0,
        runtime_model: RuntimeModel | None = None,
    ):
        if period <= 0:
            raise ValidationError(f"period must be > 0, got {period}")
        self.catalog = catalog
        self.period = period
        self.rngs = RngService(seed)
        self.model = runtime_model or RuntimeModel(catalog)
        self.pricing = PricingModel(catalog)
        self.network = NetworkModel(catalog)

    # ------------------------------------------------------------------

    def run(
        self,
        deployments: list[WorkflowDeployment],
        policy: str = "deco",
        threshold: float = 0.5,
        run_id: int = 0,
    ) -> FollowCostResult:
        """Execute the fleet under the given migration policy.

        ``policy="deco"`` re-optimizes every period from runtime state;
        ``policy="heuristic"`` uses the offline plan + threshold-
        triggered adjustment (the paper's comparison baseline);
        ``policy="static"`` never migrates.
        """
        if policy not in ("deco", "heuristic", "static"):
            raise ValidationError(f"unknown policy {policy!r}")
        if not 0 < threshold <= 10:
            raise ValidationError(f"threshold must be in (0, 10], got {threshold}")

        states = [_RunState(deployment=d, region=d.region) for d in deployments]
        rng = self.rngs.fresh(f"followcost/{policy}/{run_id}")
        reopts = 0

        if policy == "heuristic":
            # Offline stage: migrate each workflow to the cheaper region
            # up front when the projected saving beats the transfer cost.
            for st in states:
                target = self._offline_choice(st)
                if target != st.region:
                    self._migrate(st, target, rng)
        elif policy == "deco":
            # Deco also optimizes at submission time (its optimization is
            # cheap enough to run before launch).
            for st in states:
                self._deco_reoptimize(st, rng, charge=False)

        horizon = max(d.deadline for d in deployments) * 4
        clock = 0.0
        while any(not st.done for st in states) and clock < horizon:
            clock += self.period
            for st in states:
                self._advance_until(st, clock, rng)
            if all(st.done for st in states):
                break
            reopts += 1
            if policy == "deco":
                for st in states:
                    if not st.done:
                        self._deco_reoptimize(st, rng, charge=True)
            elif policy == "heuristic":
                for st in states:
                    if st.done or st.last_estimate_error <= threshold:
                        continue
                    self._charge_reopt(st, HEURISTIC_REOPT_SECONDS_PER_TASK)
                    target = self._offline_choice(st)
                    if target != st.region:
                        self._migrate(st, target, rng)
                    st.last_estimate_error = 0.0

        return FollowCostResult(
            policy=policy,
            exec_cost=float(sum(st.exec_cost for st in states)),
            migration_cost=float(sum(st.migration_cost for st in states)),
            num_migrations=int(sum(st.migrations for st in states)),
            makespans=tuple(st.clock for st in states),
            deadlines_met=sum(1 for st in states if st.clock <= st.deployment.deadline),
            reoptimizations=reopts,
        )

    # Execution --------------------------------------------------------------

    def _advance_until(self, st: _RunState, until: float, rng: np.random.Generator) -> None:
        """Run tasks (topological order) until the fleet clock catches up."""
        wf = st.deployment.workflow
        while not st.done and st.clock < until:
            tid = wf.task_ids[st.next_index]
            type_name = st.assignment[tid]
            duration = float(self.model.sample(wf.task(tid), type_name, rng))
            estimate = self.model.mean(wf.task(tid), type_name)
            st.last_estimate_error = max(
                st.last_estimate_error, abs(duration - estimate) / max(estimate, 1e-9)
            )
            st.clock += duration
            st.exec_cost += (
                duration / SECONDS_PER_HOUR * self.pricing.unit_price(type_name, st.region)
            )
            st.next_index += 1

    def _migrate(self, st: _RunState, target: str, rng: np.random.Generator) -> None:
        data = self._remaining_data(st)
        st.migration_cost += self.pricing.transfer_cost(data, st.region, target)
        bandwidth = self.network.sample_cross_region(st.region, target, rng)
        st.clock += data / bandwidth
        st.region = target
        st.migrations += 1

    def _charge_reopt(self, st: _RunState, seconds_per_task: float) -> None:
        """Model optimizer latency: the workflow (and its instance) waits."""
        remaining = len(st.deployment.workflow) - st.next_index
        pause = seconds_per_task * remaining
        st.reopt_seconds += pause
        st.clock += pause
        if not st.done:
            tid = st.deployment.workflow.task_ids[st.next_index]
            price = self.pricing.unit_price(st.assignment[tid], st.region)
            st.exec_cost += pause / SECONDS_PER_HOUR * price

    def _deco_reoptimize(self, st: _RunState, rng: np.random.Generator, charge: bool) -> None:
        """Deco's runtime step: re-pick region, then re-fit instance types.

        Type adaptation is the paper's "when a task finishes earlier than
        its scheduled time, Deco chooses more cost-effective and usually
        cheaper instance types for its child tasks": remaining tasks are
        demoted greedily while the remaining mean time still fits the
        deadline slack (with a safety margin), and promoted when the
        workflow has fallen behind schedule.
        """
        if charge:
            self._charge_reopt(st, DECO_REOPT_SECONDS_PER_TASK)
        target = self._best_region(st)
        if target != st.region:
            self._migrate(st, target, rng)
        wf = st.deployment.workflow
        names = self.catalog.type_names
        pending = wf.task_ids[st.next_index :]
        if not pending:
            return
        slack = st.deployment.deadline - st.clock
        margin = 0.9  # keep headroom against cloud dynamics
        remaining = self._remaining_work(st)

        def mean(tid, name):
            return self.model.mean(wf.task(tid), name)

        def price(name):
            return self.pricing.unit_price(name, st.region)

        if remaining > slack * margin:
            # Behind schedule: promote the biggest time-savers until the
            # remaining work fits again (or everything is maxed out).
            for _round in range(len(names)):
                gains = []
                for tid in pending:
                    idx = self.catalog.index_of(st.assignment[tid])
                    if idx + 1 < len(names):
                        gains.append((mean(tid, names[idx]) - mean(tid, names[idx + 1]), tid))
                gains.sort(reverse=True)
                progressed = False
                for gain, tid in gains:
                    if remaining <= slack * margin or gain <= 0:
                        break
                    idx = self.catalog.index_of(st.assignment[tid])
                    st.assignment[tid] = names[idx + 1]
                    remaining -= gain
                    progressed = True
                if not progressed or remaining <= slack * margin:
                    break
        else:
            # Ahead of schedule: demote for savings while still fitting.
            # Rounds of a saving-sorted sweep (each round moves every task
            # at most one step down) -- O(P log P) per round, K rounds max.
            for _round in range(len(names)):
                moves = []
                for tid in pending:
                    idx = self.catalog.index_of(st.assignment[tid])
                    if idx == 0:
                        continue
                    cur, down = names[idx], names[idx - 1]
                    delta = mean(tid, down) - mean(tid, cur)
                    saving = (
                        mean(tid, cur) * price(cur) - mean(tid, down) * price(down)
                    ) / SECONDS_PER_HOUR
                    if saving > 1e-12:
                        moves.append((saving, delta, tid))
                moves.sort(reverse=True)
                progressed = False
                for saving, delta, tid in moves:
                    if remaining + delta > slack * margin:
                        continue
                    idx = self.catalog.index_of(st.assignment[tid])
                    st.assignment[tid] = names[idx - 1]
                    remaining += delta
                    progressed = True
                if not progressed:
                    break

    # Decision logic ------------------------------------------------------------

    def _remaining_work(self, st: _RunState) -> float:
        """Expected remaining execution seconds (current assignment)."""
        wf = st.deployment.workflow
        return sum(
            self.model.mean(wf.task(tid), st.assignment[tid])
            for tid in wf.task_ids[st.next_index :]
        )

    def _remaining_data(self, st: _RunState) -> float:
        """Bytes that must move with the workflow: the *frontier* data.

        Only intermediate data crosses regions -- outputs of completed
        tasks that pending tasks still consume (the paper's "necessary
        data for executing the task").  External inputs live in the
        object store and are fetched from either region, and data a
        pending task will produce is produced at the destination.
        """
        wf = st.deployment.workflow
        done = set(wf.task_ids[: st.next_index])
        pending = set(wf.task_ids[st.next_index :])
        total = 0.0
        for parent, child in wf.edges():
            if parent in done and child in pending:
                total += wf.transfer_bytes(parent, child)
        return float(total)

    def _remaining_price_rate(self, st: _RunState, region: str) -> float:
        """Expected remaining cost per Eq. 8 if placed in ``region``."""
        wf = st.deployment.workflow
        return sum(
            self.model.mean(wf.task(tid), st.assignment[tid])
            / SECONDS_PER_HOUR
            * self.pricing.unit_price(st.assignment[tid], region)
            for tid in wf.task_ids[st.next_index :]
        )

    def _best_region(self, st: _RunState) -> str:
        """Deco's runtime choice: argmin exec+migration cost, deadline-safe."""
        best_region, best_cost = st.region, self._remaining_price_rate(st, st.region)
        remaining_time = self._remaining_work(st)
        slack = st.deployment.deadline - st.clock - remaining_time
        data = self._remaining_data(st)
        for region in self.catalog.region_names:
            if region == st.region:
                continue
            transfer_time = data / self.network.mean_cross_region_bandwidth(st.region, region)
            if transfer_time > slack:
                continue  # Eq. 10: migration would blow the deadline
            cost = self._remaining_price_rate(st, region) + self.pricing.transfer_cost(
                data, st.region, region
            )
            if cost < best_cost - 1e-12:
                best_region, best_cost = region, cost
        return best_region

    # Declarative path ------------------------------------------------------

    def wlog_facts(self, st: _RunState, chosen_region: str | None = None) -> list:
        """Fact base for the follow-the-cost WLog program, one workflow.

        Per region ``R``: ``wexeccost(w, R, C)`` (Eq. 8 over remaining
        tasks), ``wmigcost(w, R, C)`` (Eq. 9 for the frontier data),
        ``wruntime(w, R, T)`` (remaining time incl. migration transfer,
        Eq. 10).  ``wregion(w, R, 1|0)`` carries the candidate decision.
        """
        from repro.wlog.terms import Atom, Num, Rule, Struct

        def ratom(name: str) -> Atom:
            return Atom(name.replace("-", "_"))

        w = Atom("w0")
        data = self._remaining_data(st)
        rules = [Rule(Struct("workflow", (w,))), Rule(Struct("worigin", (w, ratom(st.region))))]
        for region in self.catalog.region_names:
            rules.append(Rule(Struct("region", (ratom(region),))))
            exec_cost = self._remaining_price_rate(st, region)
            if region == st.region:
                mig_cost, transfer = 0.0, 0.0
            else:
                mig_cost = self.pricing.transfer_cost(data, st.region, region)
                transfer = data / self.network.mean_cross_region_bandwidth(st.region, region)
            rules.append(Rule(Struct("wexeccost", (w, ratom(region), Num(exec_cost)))))
            rules.append(Rule(Struct("wmigcost", (w, ratom(region), Num(mig_cost)))))
            rules.append(
                Rule(
                    Struct(
                        "wruntime",
                        (w, ratom(region), Num(self._remaining_work(st) + transfer)),
                    )
                )
            )
            con = 1.0 if region == chosen_region else 0.0
            rules.append(Rule(Struct("wregion", (w, ratom(region), Num(con)))))
        return rules

    def wlog_choose_region(self, st: _RunState) -> str:
        """Decide this workflow's region by interpreting the WLog program.

        Enumerates the (per-workflow independent) region choices,
        evaluates each through ``followcost_program`` with deterministic
        semantics, and returns the cheapest deadline-safe placement --
        the reference semantics for :meth:`_best_region`, which computes
        the same argmin directly (agreement asserted in tests).
        """
        from repro.wlog.engine import Database, Engine
        from repro.wlog.library import followcost_program
        from repro.wlog.program import WLogProgram
        from repro.wlog.terms import to_python

        remaining_deadline = max(st.deployment.deadline - st.clock, 1e-9)
        program = WLogProgram.from_source(followcost_program(remaining_deadline))
        best_region, best_cost = st.region, float("inf")
        for region in self.catalog.region_names:
            db = Database(program.rules)
            db.extend(self.wlog_facts(st, chosen_region=region))
            engine = Engine(db)
            if not engine.ask("ontime"):
                continue
            cost = float(to_python(engine.first("totalcost(Ct)")["Ct"]))
            if region == st.region:
                stay_bias = 1e-12  # ties keep the workflow where it is
                if cost <= best_cost + stay_bias:
                    best_region, best_cost = region, cost
            elif cost < best_cost - 1e-12:
                best_region, best_cost = region, cost
        return best_region

    def _offline_choice(self, st: _RunState) -> str:
        """Heuristic baseline: price-difference rule, no deadline check."""
        best_region, best_cost = st.region, self._remaining_price_rate(st, st.region)
        data = self._remaining_data(st)
        for region in self.catalog.region_names:
            if region == st.region:
                continue
            cost = self._remaining_price_rate(st, region) + self.pricing.transfer_cost(
                data, st.region, region
            )
            if cost < best_cost - 1e-12:
                best_region, best_cost = region, cost
        return best_region
