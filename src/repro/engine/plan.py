"""Provisioning plans and deadline presets."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Mapping

from repro.common.errors import ValidationError
from repro.cloud.instance_types import Catalog
from repro.workflow.critical_path import static_makespan
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["ProvisioningPlan", "DeadlinePresets", "deadline_presets"]


@dataclass(frozen=True)
class ProvisioningPlan:
    """The engine's output: an instance type for every task.

    ``expected_cost`` is the paper's Eq. 1 objective (fractional-hour,
    mean-time cost); ``probability`` the Monte Carlo estimate of
    P(makespan <= deadline); both were computed by the solver at
    optimization time.  Execute the plan with
    :meth:`repro.cloud.CloudSimulator.execute` to get *measured* cost
    and makespan.
    """

    workflow_name: str
    assignment: Mapping[str, str]
    expected_cost: float
    probability: float
    feasible: bool
    deadline: float
    deadline_percentile: float
    evaluations: int = 0
    solve_seconds: float = 0.0
    backend: str = "gpu"
    #: The solve watchdog fired: the plan is the best incumbent at the
    #: wall-clock budget, not the converged search result.  ``False``
    #: for every unbounded (or in-budget) solve.
    timed_out: bool = False

    def __post_init__(self):
        object.__setattr__(self, "assignment", dict(self.assignment))

    @property
    def is_feasible(self) -> bool:
        return self.feasible

    def type_counts(self) -> dict[str, int]:
        """How many tasks landed on each instance type."""
        counts: dict[str, int] = {}
        for t in self.assignment.values():
            counts[t] = counts.get(t, 0) + 1
        return dict(sorted(counts.items()))

    def overhead_ms_per_task(self) -> float:
        """Optimization overhead per task -- the paper's 4.3-63.17 ms/task metric."""
        if not self.assignment:
            return 0.0
        return self.solve_seconds * 1000.0 / len(self.assignment)

    def decision_dict(self) -> dict:
        """The deterministic decision content of the plan.

        Everything the optimizer *decided* (assignment, cost,
        probability, feasibility, evaluations) but not how long the
        solve took: ``solve_seconds`` is host-speed metadata, and the
        parallel runtime's determinism contract promises byte-identical
        decision dicts for any worker count.  ``timed_out`` is excluded
        for the same reason -- whether a wall-clock watchdog fired is a
        property of the host's speed, not of the decision sequence.
        """
        data = asdict(self)
        data.pop("solve_seconds")
        data.pop("timed_out")
        return data

    # Serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the plan (the artifact handed to a WMS scheduler)."""
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ProvisioningPlan":
        """Inverse of :meth:`to_json`; raises on malformed payloads."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValidationError("plan JSON must be an object")
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValidationError(f"malformed plan JSON: {exc}") from exc


@dataclass(frozen=True)
class DeadlinePresets:
    """The paper's deadline parameterization (Section 6.1).

    ``dmin``/``dmax`` are the expected critical-path times with every
    task on the fastest / cheapest instance type; the experiments use

    * tight  = 1.5 x Dmin
    * medium = (Dmin + Dmax) / 2      (the default)
    * loose  = 0.75 x Dmax

    The paper's formulas assume Dmin << Dmax (CPU-bound workflows where
    type speed dominates).  On I/O-bound workflows Dmin/Dmax can exceed
    1/2 and the formulas invert (1.5*Dmin > 0.75*Dmax); in that case we
    fall back to interpolating the [Dmin, Dmax] range at 15%/50%/85% so
    tight < medium < loose always holds.
    """

    dmin: float
    dmax: float

    def _paper_formulas_ordered(self) -> bool:
        return 1.5 * self.dmin < (self.dmin + self.dmax) / 2.0 < 0.75 * self.dmax

    def _interp(self, frac: float) -> float:
        return self.dmin + frac * (self.dmax - self.dmin)

    @property
    def tight(self) -> float:
        if self._paper_formulas_ordered():
            return 1.5 * self.dmin
        return self._interp(0.15)

    @property
    def medium(self) -> float:
        return (self.dmin + self.dmax) / 2.0

    @property
    def loose(self) -> float:
        if self._paper_formulas_ordered():
            return 0.75 * self.dmax
        return self._interp(0.85)

    def get(self, name: str) -> float:
        try:
            return {"tight": self.tight, "medium": self.medium, "loose": self.loose}[name]
        except KeyError:
            raise ValidationError(
                f"unknown deadline preset {name!r}; choose tight/medium/loose"
            ) from None


def deadline_presets(
    workflow: Workflow,
    catalog: Catalog,
    runtime_model: RuntimeModel | None = None,
) -> DeadlinePresets:
    """Compute Dmin/Dmax for a workflow on a catalog."""
    model = runtime_model or RuntimeModel(catalog)
    fastest = catalog.fastest().name
    cheapest = catalog.cheapest().name
    dmin = static_makespan(workflow, {t: model.mean(workflow.task(t), fastest) for t in workflow.task_ids})
    dmax = static_makespan(workflow, {t: model.mean(workflow.task(t), cheapest) for t in workflow.task_ids})
    if dmin > dmax:  # catalog where the "fastest" type loses on I/O-bound work
        dmin, dmax = dmax, dmin
    return DeadlinePresets(dmin=dmin, dmax=dmax)
