"""The Deco engine: the public facade tying language, solver and cloud.

* :mod:`~repro.engine.plan` -- the :class:`ProvisioningPlan` result
  object and deadline presets (the paper's tight/medium/loose).
* :mod:`~repro.engine.compiler` -- WLog program -> compiled problem
  (the declarative-to-array bridge used for acceleration).
* :mod:`~repro.engine.deco` -- the :class:`Deco` facade: use case 1
  (workflow scheduling) end to end.
* :mod:`~repro.engine.ensemble` -- use case 2: workflow-ensemble
  admission with A* (paper Section 3.2 / 6.3.2).
* :mod:`~repro.engine.followcost` -- use case 3: runtime follow-the-cost
  migration across regions (paper Section 3.3 / 6.3.3).
"""

from repro.engine.plan import ProvisioningPlan, DeadlinePresets, deadline_presets
from repro.engine.compiler import try_compile
from repro.engine.deco import Deco
from repro.engine.ensemble import EnsembleDriver, EnsembleDecision, MemberOutcome
from repro.engine.followcost import (
    FollowCostDriver,
    FollowCostResult,
    WorkflowDeployment,
)

__all__ = [
    "ProvisioningPlan",
    "DeadlinePresets",
    "deadline_presets",
    "try_compile",
    "Deco",
    "EnsembleDriver",
    "EnsembleDecision",
    "MemberOutcome",
    "FollowCostDriver",
    "FollowCostResult",
    "WorkflowDeployment",
]
