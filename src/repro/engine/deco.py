"""The Deco facade (use case 1: workflow scheduling).

Two entry points:

* :meth:`Deco.schedule` -- programmatic: give it a workflow and a
  deadline, get a :class:`~repro.engine.plan.ProvisioningPlan`.  Under
  the hood this emits the paper's Example 1 WLog program, translates it
  to the probabilistic IR, compiles the IR to arrays and runs the
  transformation-driven search on the vectorized backend.
* :meth:`Deco.solve_program` -- declarative: hand it WLog source (plus
  an import registry) exactly as a Pegasus user would.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from repro.analysis.dominance import OpMask, compute_op_mask
from repro.common.errors import InfeasibleError, ValidationError, WLogAnalysisError
from repro.cloud.instance_types import Catalog
from repro.engine.compiler import compile_or_raise
from repro.faults.model import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.engine.plan import DeadlinePresets, ProvisioningPlan, deadline_presets
from repro.solver.backends import CompiledProblem, get_backend
from repro.solver.cache import EvalContext, MakespanCache
from repro.solver.search import GenericSearch, SearchResult
from repro.solver.state import PlanState
from repro.wlog.analysis import check_program
from repro.wlog.imports import ImportRegistry
from repro.wlog.library import scheduling_program
from repro.wlog.probir import translate
from repro.wlog.program import WLogProgram
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["Deco"]


class Deco:
    """The declarative optimization engine.

    Parameters
    ----------
    catalog:
        Instance catalog (see :func:`repro.cloud.ec2_catalog`).
    seed:
        Root seed for the Monte Carlo sample tensor.
    backend:
        ``"gpu"`` (vectorized, default), ``"cpu"`` (scalar reference) or
        ``"analytic"`` (moment propagation, no sampling -- deterministic
        and fastest, with the approximation error bounds documented in
        BENCH_solver.json's ``analytic`` section).
    num_samples:
        Monte Carlo realizations per state evaluation.
    max_evaluations / beam_width / children_per_state / expand_per_iter:
        Search budget knobs (see :class:`~repro.solver.search.GenericSearch`).
    incremental:
        Enable the incremental evaluation engine (delta propagation from
        dirty levels + two-stage sample-fidelity screening).  Plans are
        bit-identical either way; ``False`` is the escape hatch (the
        CLI's ``--no-incremental``).
    analytic_screen:
        Enable tier 0 of the evaluation cascade: a calibrated-margin
        analytic screen ahead of the prefix-MC and full-MC tiers.  Plans
        are identical either way (asserted by the solver bench);
        ``False`` is the escape hatch (the CLI's
        ``--no-analytic-screen``).  Ignored when ``backend`` is already
        ``"analytic"``.
    dominance_mask:
        Enable the dominance analysis
        (:func:`repro.analysis.dominance.compute_op_mask`): per-solve,
        an op mask computed from the sample tensor's per-cell bounds
        lets the search settle provably futile exploration promotes
        with the parent's evaluation instead of full Monte Carlo.
        Plans are identical either way (asserted by the property tests
        and the solver bench); ``False`` is the escape hatch (the
        CLI's ``--no-dominance-mask``).
    workers:
        Shard the beam search's candidate evaluation across this many
        persistent worker processes (the distributed beam solve,
        DESIGN.md §13).  ``None`` or ``1`` keeps the solve in-process.
        Each shard holds a worker-resident engine rebuilt once from
        :meth:`spec` whose caches stay warm across beam iterations;
        plans are bit-identical at any worker count (asserted by the
        shard test matrix and the solver bench's
        ``distributed.identical`` gate).  Environments that cannot run
        process pools downgrade to in-process evaluation with one
        warning; call :meth:`close` (or use the engine as a context
        manager) to release the worker processes.
    solve_deadline_s:
        Default wall-clock budget for every solve (the cooperative
        watchdog, see :meth:`GenericSearch.solve`): when it expires at
        an iteration boundary the search returns its best incumbent
        with ``timed_out=True`` on the plan instead of wedging.  A
        per-call ``solve_deadline_s`` on :meth:`schedule` overrides it;
        ``None`` (the default) solves unbounded.  A budget the solve
        never exhausts leaves plans bit-identical to the unbounded run.
    arena:
        On a sharded engine, host the solve's immutable tensors (the
        sample tensor, level-schedule matrices, calibrated quantile
        grids) in a content-addressed shared-memory arena that worker
        processes map read-only zero-copy (DESIGN.md §15) -- the
        begin-solve broadcast shrinks from a pickled compiled problem
        to a 64-hex key plus scalar deltas.  Plans are bit-identical
        either way (the workers rebuild the same
        :class:`CompiledProblem` views over the same bytes); ``False``
        is the escape hatch (the CLI's ``--no-arena``), and
        environments without ``multiprocessing.shared_memory`` fall
        back to the pickled-prologue path with one warning.
    adaptive_sharding:
        Size the per-shard candidate chunks by each shard's measured
        per-candidate cost (an EWMA fed by every job's reported
        wall-clock) instead of evenly, and let shards that finish a
        tier-2 round early steal the held-back tail of a straggler's
        chunk.  Both layers only re-route *where* chunks are computed
        -- shards return pure per-candidate numbers and the parent
        makes every decision -- so plans stay bit-identical (asserted
        by the shard test matrix and the solver bench's
        ``adaptive_sharding.identical`` gate).  ``False`` restores
        even chunking (the CLI's ``--no-adaptive-sharding``).

    A Deco instance memoizes the compiled problem per workflow
    (deadline/percentile changes derive via
    :meth:`CompiledProblem.with_deadline`, sharing the sample tensor),
    through :attr:`cache` the per-state makespan samples, and through
    :attr:`eval_context` the finish-time frontiers of expanded states --
    so deadline/percentile sweeps over the same workflow reuse every
    Monte Carlo propagation the search has already paid for, and search
    children re-propagate only the levels their dirty tasks can affect.
    :meth:`clear_caches` / :meth:`cache_stats` bound and report all of
    it from one place for long-running services.
    """

    #: How many (workflow, region) compiled problems to keep alive.
    _PROBLEM_CACHE_SIZE = 8

    def __init__(
        self,
        catalog: Catalog,
        seed: int = 0,
        backend: str = "gpu",
        num_samples: int = 200,
        max_evaluations: int = 3000,
        beam_width: int = 24,
        children_per_state: int = 12,
        expand_per_iter: int = 8,
        require_feasible: bool = False,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        reliability_percentile: float | None = None,
        incremental: bool = True,
        analytic_screen: bool = True,
        dominance_mask: bool = True,
        workers: int | None = None,
        solve_deadline_s: float | None = None,
        arena: bool = True,
        adaptive_sharding: bool = True,
    ):
        self.catalog = catalog
        self.seed = int(seed)
        self.cache = MakespanCache()
        self.eval_context = EvalContext()
        self.backend = get_backend(backend, cache=self.cache, eval_context=self.eval_context)
        self.num_samples = int(num_samples)
        self.require_feasible = require_feasible
        self.incremental = bool(incremental)
        self.analytic_screen = bool(analytic_screen)
        self.dominance_mask = bool(dominance_mask)
        if solve_deadline_s is not None and solve_deadline_s <= 0:
            raise ValidationError(
                f"solve_deadline_s must be > 0 seconds, got {solve_deadline_s!r}"
            )
        self.solve_deadline_s = solve_deadline_s
        #: The :class:`SearchResult` of the most recent solve -- counter
        #: introspection for benchmarks and services (not plan content).
        self.last_result: SearchResult | None = None
        # Engine-level fault awareness: every schedule() call scores
        # plans under this fault model (per-call kwargs override).
        # Lives in spec() so worker processes solve fault-aware too.
        self.faults = faults
        self.recovery = recovery
        self.reliability_percentile = reliability_percentile
        self.runtime_model = RuntimeModel(catalog)
        # (id(workflow), region) -> (workflow, base CompiledProblem); the
        # stored workflow reference pins the id and guards against reuse.
        self._problems: OrderedDict[tuple, tuple[Workflow, CompiledProblem]] = OrderedDict()
        # sample_token -> OpMask; deadline sweeps over one workflow share
        # the tensor (and so the token), so the mask is computed once.
        self._op_masks: OrderedDict[int | None, "OpMask"] = OrderedDict()
        self._search = GenericSearch(
            backend=self.backend,
            children_per_state=children_per_state,
            beam_width=beam_width,
            max_evaluations=max_evaluations,
            expand_per_iter=expand_per_iter,
            incremental=self.incremental,
            analytic_screen=self.analytic_screen,
        )
        # Distributed beam solve: a lazily created shard-affine pool
        # (one resident engine per shard), a monotone per-solve id that
        # stamps every shard job, and the lifetime aggregate of the
        # worker-side cache/delta counters (cache_stats "distributed").
        from repro.parallel.executor import resolve_workers

        self.workers = 1 if workers is None else resolve_workers(workers)
        self._shard_pool = None
        self._solve_key = 0
        self._distributed_solves = 0
        self._shard_counters: dict[str, int] = {}
        # Shared-memory tensor plane (DESIGN.md §15): a lazily created
        # content-addressed arena hosting compiled-problem tensors that
        # shard workers map zero-copy, a fingerprint memo so repeat
        # solves don't re-hash unchanged tensors, and the cost model
        # feeding the weighted shard partitioner.
        self.arena = bool(arena)
        self.adaptive_sharding = bool(adaptive_sharding)
        self._arena = None
        self._arena_warned = False
        self._fingerprints: OrderedDict[tuple, str] = OrderedDict()
        self._cost_model = None
        self._imbalance_sum = 0.0
        self._imbalance_rounds = 0

    # Worker-process rebuilding --------------------------------------------

    def spec(self) -> dict:
        """Picklable constructor arguments reproducing this engine.

        Worker processes rebuild an equivalent (cold-cache) Deco from
        this spec instead of pickling live caches and sample tensors;
        solves are cache-transparent, so plans come out identical.

        ``workers`` is deliberately excluded: a rebuilt engine always
        solves in-process, so worker processes never spawn nested pools.
        """
        return {
            "catalog": self.catalog,
            "seed": self.seed,
            "backend": self.backend.name,
            "num_samples": self.num_samples,
            "max_evaluations": self._search.max_evaluations,
            "beam_width": self._search.beam_width,
            "children_per_state": self._search.children_per_state,
            "expand_per_iter": self._search.expand_per_iter,
            "require_feasible": self.require_feasible,
            "faults": self.faults,
            "recovery": self.recovery,
            "reliability_percentile": self.reliability_percentile,
            "incremental": self.incremental,
            "analytic_screen": self.analytic_screen,
            "dominance_mask": self.dominance_mask,
            "solve_deadline_s": self.solve_deadline_s,
            "arena": self.arena,
            "adaptive_sharding": self.adaptive_sharding,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "Deco":
        """Rebuild an engine from :meth:`spec` (in a worker process)."""
        return cls(**spec)

    def _calibration_shipped(self, problem: CompiledProblem) -> bool:
        """Whether the arena segment should carry tier-0 quantile grids.

        Mirrors :meth:`GenericSearch._analytic_active`'s static gates --
        if the analytic tier can run on any shard, ship the calibration
        so no worker pays the ``np.quantile`` pass.  Shipping is a pure
        transfer optimization: a worker that calibrates locally gets
        bit-identical grids (``np.quantile`` over the same bytes).
        """
        return (
            self._search.analytic_screen
            and problem.num_tasks >= self._search.analytic_min_tasks
            and 0.0 < problem.required_probability < 1.0
            and getattr(self.backend, "name", "") != "analytic"
        )

    def _publish_problem(self, problem: CompiledProblem) -> str:
        """Publish ``problem``'s tensors into the arena; return the key.

        The key is the SHA-256 content fingerprint of the immutable
        arrays (plus faults metadata), so deadline sweeps over one
        workflow republish nothing and distinct engines hosting the
        same workflow converge on the same segment.  The fingerprint is
        memoized per ``sample_token`` -- hashing a Montage-8 tensor is
        not free -- and publishing an already-hosted key is a counted
        no-op.
        """
        from repro.engine.compiler import export_problem_arrays, problem_fingerprint
        from repro.parallel.arena import TensorArena

        calibrated = self._calibration_shipped(problem)
        memo_key = (problem.sample_token, calibrated)
        key = self._fingerprints.get(memo_key)
        if key is None:
            key = problem_fingerprint(problem, calibrated=calibrated)
            self._fingerprints[memo_key] = key
            while len(self._fingerprints) > self._PROBLEM_CACHE_SIZE:
                self._fingerprints.popitem(last=False)
        else:
            self._fingerprints.move_to_end(memo_key)
        if self._arena is None:
            self._arena = TensorArena()
        if key in self._arena:
            self._arena.counters["hits"] += 1
            return key
        calibration = None
        if calibrated:
            calibration = self._search._analytic_evaluator()._calibration(problem)
        arrays, meta = export_problem_arrays(problem, calibration=calibration)
        self._arena.publish(key, arrays, meta)
        return key

    def _distributor(
        self,
        workflow: Workflow,
        region: str | None,
        problem: CompiledProblem,
        faults: FaultModel | None,
        recovery: RecoveryPolicy | None,
        reliability_percentile: float | None,
    ):
        """This solve's sharded evaluator, or ``None`` when serial.

        Spins up the persistent shard pool on first use (each worker
        rebuilds an engine from :meth:`spec` exactly once), then
        installs the solve's compiled problem on every shard as the
        pool's prologue -- a worker respawned after a crash replays it
        before its first job.  Two transports:

        * **arena** (default when shared memory works): the parent
          publishes ``problem``'s immutable tensors into the
          content-addressed :class:`~repro.parallel.TensorArena` and
          broadcasts only the content key plus the deadline/faults
          scalars; workers map the segment read-only zero-copy and
          rebuild the same :class:`CompiledProblem` over those bytes.
          The broadcast is stamped with the context key, so repeat
          solves of an unchanged problem skip serialization entirely.
        * **legacy pickle** (``arena=False``, no ``/dev/shm``, or any
          arena failure -- one warning, then transparent fallback):
          broadcast the full compile/with_deadline/with_faults recipe
          and let each shard derive the problem itself.

        ``wf_key`` hashes the pickled workflow *content* (not its
        object identity); it keys both the shards' base-compilation
        reuse (legacy path) and the cost model's per-workflow EWMAs.
        """
        if self.workers <= 1:
            return None
        import hashlib
        import pickle

        from repro.parallel.executor import ShardPool
        from repro.parallel.workers import (
            beam_begin_solve,
            beam_begin_solve_arena,
            init_beam_worker,
        )
        from repro.solver.shards import ShardCostModel, ShardedEvaluator

        if self._shard_pool is None:
            self._shard_pool = ShardPool(
                self.workers, initializer=init_beam_worker, initargs=(self.spec(),)
            )
        if self._cost_model is None:
            self._cost_model = ShardCostModel()
        wf_key = hashlib.sha1(
            pickle.dumps((workflow, region), protocol=4)
        ).hexdigest()
        self._solve_key += 1
        solve_token: object = self._solve_key
        deadline = problem.deadline
        percentile = problem.required_probability * 100.0
        shipped = False
        if self.arena:
            try:
                from repro.parallel.arena import arena_available

                if arena_available():
                    arena_key = self._publish_problem(problem)
                    ctx_key = (
                        f"{arena_key}:{problem.deadline!r}"
                        f":{problem.required_probability!r}"
                    )
                    self._shard_pool.broadcast(
                        beam_begin_solve_arena,
                        (
                            ctx_key,
                            arena_key,
                            problem.deadline,
                            problem.required_probability,
                            problem.faults,
                            problem.recovery,
                            problem.reliability_required,
                        ),
                        stamp=ctx_key,
                    )
                    solve_token = ctx_key
                    shipped = True
            except Exception as exc:
                if not self._arena_warned:
                    self._arena_warned = True
                    import warnings

                    warnings.warn(
                        f"shared-memory arena unavailable ({exc!r}); "
                        "falling back to pickled-prologue broadcasts",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        if not shipped:
            self._shard_pool.broadcast(
                beam_begin_solve,
                (
                    self._solve_key, wf_key, workflow, region,
                    deadline, percentile, faults, recovery, reliability_percentile,
                ),
            )
        self._distributed_solves += 1
        return ShardedEvaluator(
            self._shard_pool,
            solve_token,
            cost_model=self._cost_model,
            wf_key=wf_key,
            adaptive=self.adaptive_sharding,
        )

    def close(self) -> None:
        """Release the shard pool's worker processes (idempotent).

        The engine stays fully usable afterwards: a later sharded
        solve lazily rebuilds the pool, and serial solves never needed
        it.  Long-running services and the CLI call this when a batch
        of solves is done; ``with Deco(...) as deco:`` does it for you.
        """
        if self._shard_pool is not None:
            self._shard_pool.close()
            self._shard_pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "Deco":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Cache management ------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop every evaluation cache this engine holds.

        Long-running services call this between tenants/workloads to
        bound memory: the makespan-row cache, the finish-time frontier
        context (including its screening-problem memo), the compiled
        problem memo, and the backend's pooled scratch buffers all reset
        to cold.  Subsequent solves are slower but bit-identical --
        every cache is a pure memo.
        """
        self.cache.clear()
        self.eval_context.clear()
        self._problems.clear()
        self._op_masks.clear()
        release = getattr(self.backend, "release_buffers", None)
        if release is not None:
            release()

    def cache_stats(self) -> dict:
        """One-stop memory/hit-rate report across all evaluation caches.

        Keys: ``makespan`` and ``frontier`` (hit/miss/entry counters
        plus ``nbytes``), ``compiled_problems`` (memoized problem
        count), ``delta`` (the backend's incremental-propagation
        counters, when the backend tracks them), ``analytic``
        (moment-propagation work counters, once any analytic tier or
        backend has run), and -- on a sharded engine (``workers > 1``)
        -- ``distributed``: the worker count, the number of sharded
        solves, and the lifetime aggregate of the shards' reported
        cache/delta/tier-0 counters, so sharded engines report the work
        their workers did instead of near-empty parent caches.
        """
        makespan = self.cache.counters()
        makespan["nbytes"] = self.cache.nbytes()
        frontier = self.eval_context.counters()
        frontier["nbytes"] = self.eval_context.nbytes()
        stats = {
            "makespan": makespan,
            "frontier": frontier,
            "compiled_problems": len(self._problems),
        }
        delta = getattr(self.backend, "delta_stats", None)
        if delta is not None:
            stats["delta"] = delta()
        analytic = getattr(self.backend, "analytic_stats", None)
        if analytic is None:
            analytic = self._search.analytic_stats
        tier0 = analytic()
        if tier0 is not None:
            stats["analytic"] = tier0
        if self.workers > 1:
            distributed: dict = {
                "workers": self.workers,
                "solves": self._distributed_solves,
                "arena_enabled": self.arena,
                "adaptive_sharding": self.adaptive_sharding,
            }
            distributed.update(self._shard_counters)
            if self._shard_pool is not None:
                distributed.update(self._shard_pool.counters)
            if self._arena is not None:
                arena_stats = self._arena.stats()
                distributed["arena_segments"] = arena_stats["segments"]
                distributed["arena_publishes"] = arena_stats["publishes"]
                distributed["arena_hits"] = arena_stats["hits"]
                distributed["arena_evictions"] = arena_stats["evictions"]
                distributed["arena_bytes"] = arena_stats["bytes_published"]
            if self._imbalance_rounds:
                distributed["shard_imbalance"] = (
                    self._imbalance_sum / self._imbalance_rounds
                )
            stats["distributed"] = distributed
        return stats

    # Deadline helpers ------------------------------------------------------

    def presets(self, workflow: Workflow) -> DeadlinePresets:
        """Dmin/Dmax-based deadline presets for ``workflow``."""
        return deadline_presets(workflow, self.catalog, self.runtime_model)

    def _resolve_deadline(self, workflow: Workflow, deadline: float | str) -> float:
        if isinstance(deadline, str):
            return self.presets(workflow).get(deadline)
        if deadline <= 0:
            raise ValidationError(f"deadline must be > 0, got {deadline}")
        return float(deadline)

    # Programmatic API --------------------------------------------------------

    def schedule(
        self,
        workflow: Workflow,
        deadline: float | str = "medium",
        deadline_percentile: float = 96.0,
        region: str | None = None,
        seeds: tuple[PlanState, ...] = (),
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        reliability_percentile: float | None = None,
        solve_deadline_s: float | None = None,
    ) -> ProvisioningPlan:
        """Optimize instance configurations for one workflow.

        Minimizes expected monetary cost (paper Eq. 1) subject to the
        probabilistic deadline P(makespan <= D) >= p (Eq. 3).

        With a fault model (per-call or engine-level), plans are scored
        *under* the faults: sampled task times and Eq.-1 costs are
        inflated by the analytic expected-retry/straggler/checkpoint
        factors (:meth:`CompiledProblem.with_faults`), and
        ``reliability_percentile`` adds the ``reliability(P, R)``
        success-probability constraint.
        """
        d = self._resolve_deadline(workflow, deadline)
        problem = self._compiled(workflow, region).with_deadline(
            d, percentile=deadline_percentile
        )
        f = faults if faults is not None else self.faults
        r = recovery if recovery is not None else self.recovery
        rp = (
            reliability_percentile
            if reliability_percentile is not None
            else self.reliability_percentile
        )
        if f is not None:
            problem = problem.with_faults(f, r, reliability_percentile=rp)
        distributor = self._distributor(workflow, region, problem, f, r, rp)
        return self._solve(
            problem,
            seeds=tuple(seeds) + self._warm_starts(problem),
            distributor=distributor,
            solve_deadline_s=(
                solve_deadline_s
                if solve_deadline_s is not None
                else self.solve_deadline_s
            ),
        )

    def _compiled(self, workflow: Workflow, region: str | None) -> CompiledProblem:
        """Compile ``workflow`` once; later deadlines derive from the base.

        The returned problem carries a placeholder deadline -- callers
        always go through :meth:`CompiledProblem.with_deadline`, which
        shares the sample tensor so the makespan cache keeps hitting.
        """
        key = (id(workflow), region)
        entry = self._problems.get(key)
        if entry is not None and entry[0] is workflow:
            self._problems.move_to_end(key)
            return entry[1]
        problem = CompiledProblem.compile(
            workflow=workflow,
            catalog=self.catalog,
            deadline=1.0,
            percentile=96.0,
            num_samples=self.num_samples,
            seed=self.seed,
            runtime_model=self.runtime_model,
            region=region,
        )
        self._problems[key] = (workflow, problem)
        while len(self._problems) > self._PROBLEM_CACHE_SIZE:
            self._problems.popitem(last=False)
        return problem

    def adopt_problem(
        self,
        workflow: Workflow,
        problem: CompiledProblem,
        region: str | None = None,
    ) -> None:
        """Install a pre-compiled base problem for ``workflow``.

        The service's shared-memory problem store uses this to hand an
        engine a :class:`CompiledProblem` attached zero-copy from an
        arena segment, so :meth:`schedule` skips compilation (and the
        sample-tensor materialization) entirely.  The problem must be a
        *base* compilation (placeholder deadline) for this exact
        workflow; deadlines derive via ``with_deadline`` as usual.
        """
        key = (id(workflow), region)
        self._problems[key] = (workflow, problem)
        while len(self._problems) > self._PROBLEM_CACHE_SIZE:
            self._problems.popitem(last=False)

    # Declarative API -----------------------------------------------------------

    def solve_program(
        self,
        source_or_program: str | WLogProgram,
        registry: ImportRegistry,
        region: str | None = None,
        strict: bool = False,
        analyze: bool = True,
    ) -> ProvisioningPlan:
        """Solve a WLog scheduling program (the paper's Example 1 shape).

        The program is statically analyzed first: error-level
        diagnostics (undefined predicates, malformed requirements,
        unsafe negation...) raise
        :class:`~repro.common.errors.WLogAnalysisError` before any IR
        translation; ``strict=True`` rejects warnings too.

        With ``analyze=True`` (the default) the semantic pass framework
        (:func:`repro.analysis.analyze_semantics`) then runs interval
        inference over the imported workflow/cloud *before* the
        expensive IR translation: a provably unreachable deadline,
        budget, or reliability requirement (E401-E403) is rejected in
        milliseconds instead of after a full histogram materialization
        and doomed solve.  ``strict=True`` rejects its W4xx warnings
        (vacuous constraints, dead rules) too; ``analyze=False`` skips
        the semantic gate entirely.
        """
        program = (
            WLogProgram.from_source(source_or_program)
            if isinstance(source_or_program, str)
            else source_or_program
        )
        program.validate_for_solving()
        check_program(program, registry=registry, strict=strict)
        if analyze:
            from repro.analysis import analyze_semantics
            from repro.wlog.diagnostics import render_diagnostics

            report = analyze_semantics(program, registry=registry)
            fatal = [d for d in report.diagnostics if d.is_error or strict]
            if fatal:
                rendered = render_diagnostics(fatal, program.source or None, "<program>")
                noun = "diagnostic" if len(fatal) == 1 else "diagnostics"
                raise WLogAnalysisError(
                    f"semantic analysis rejected the program with {len(fatal)} "
                    f"{noun}:\n{rendered}",
                    diagnostics=tuple(fatal),
                )
        ir = translate(program, registry)
        problem = compile_or_raise(ir, num_samples=self.num_samples, seed=self.seed, region=region)
        return self._solve(problem, seeds=self._warm_starts(problem))

    def example1_source(
        self,
        workflow_name: str = "montage",
        cloud_name: str = "amazonec2",
        deadline_seconds: float = 36_000.0,
        percentile: float = 95.0,
    ) -> str:
        """The WLog source :meth:`schedule` effectively runs (Example 1)."""
        return scheduling_program(
            cloud=cloud_name,
            workflow=workflow_name,
            percentile=percentile,
            deadline_seconds=deadline_seconds,
        )

    # Core ------------------------------------------------------------------------

    def _warm_starts(self, problem: CompiledProblem) -> tuple[PlanState, ...]:
        """Heuristic initial configurations (the paper defers initial-state
        choice to the transformation framework; we seed the search with the
        deadline-assignment heuristic at a few deadline tightenings so the
        transformation operations start from a competitive plan)."""
        from repro.baselines.autoscaling import autoscaling_plan

        wf = problem.workflow
        states = []
        # Deadline-assignment plans at several tightenings; evaluating the
        # whole ladder lets the search start from the cheapest feasible
        # heuristic plan and improve it with transformation operations.
        for factor in (1.0, 0.92, 0.85, 0.78, 0.7, 0.6, 0.5, 0.4):
            plan = autoscaling_plan(
                wf, self.catalog, problem.deadline * factor, self.runtime_model
            )
            states.append(problem.state_from_assignment(plan))
        return tuple(states)

    def _op_mask(self, problem: CompiledProblem) -> OpMask | None:
        """The memoized dominance mask for ``problem``'s tensor generation.

        Keyed by ``sample_token``: deadline/percentile sweeps share the
        tensor, so the per-cell bounds (a full tensor reduction) are
        paid once per workflow compilation, not once per solve.
        """
        if not self.dominance_mask:
            return None
        token = getattr(problem, "sample_token", None)
        mask = self._op_masks.get(token)
        if mask is None:
            mask = compute_op_mask(problem)
            self._op_masks[token] = mask
            while len(self._op_masks) > self._PROBLEM_CACHE_SIZE:
                self._op_masks.popitem(last=False)
        else:
            self._op_masks.move_to_end(token)
        return mask

    def _solve(
        self,
        problem: CompiledProblem,
        seeds: tuple[PlanState, ...] = (),
        distributor=None,
        solve_deadline_s: float | None = None,
    ) -> ProvisioningPlan:
        t0 = time.perf_counter()
        result = self._search.solve(
            problem,
            seeds=seeds,
            op_mask=self._op_mask(problem),
            distributor=distributor,
            deadline_s=(
                solve_deadline_s
                if solve_deadline_s is not None
                else self.solve_deadline_s
            ),
        )
        elapsed = time.perf_counter() - t0
        self.last_result = result
        if distributor is not None:
            for key, value in distributor.counters.items():
                self._shard_counters[key] = self._shard_counters.get(key, 0) + value
            self._imbalance_sum += getattr(distributor, "imbalance_sum", 0.0)
            self._imbalance_rounds += getattr(distributor, "imbalance_rounds", 0)
        if self.require_feasible and not result.feasible_found:
            raise InfeasibleError(
                f"no plan meets P(makespan <= {problem.deadline:g}s) >= "
                f"{problem.required_probability:.0%} for workflow "
                f"{problem.workflow.name!r}"
            )
        return ProvisioningPlan(
            workflow_name=problem.workflow.name,
            assignment=result.assignment_names(problem),
            expected_cost=result.best_eval.cost,
            probability=result.best_eval.probability,
            feasible=result.best_eval.feasible,
            deadline=problem.deadline,
            deadline_percentile=problem.required_probability * 100.0,
            evaluations=result.evaluations,
            solve_seconds=elapsed,
            backend=self.backend.name,
            timed_out=result.timed_out,
        )
