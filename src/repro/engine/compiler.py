"""WLog program -> compiled array problem.

The paper's GPU solver does not interpret ProbLog rules on the device;
the probabilistic IR is lowered to flat arrays (task-time samples,
prices, DAG structure) that the kernels consume.  This module is that
lowering for the *standard* problem family of Example 1:

    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(...) satisfies deadline(p%, D).
    var configs(Tid, Vid, Con) forall task(Tid) and vm(Vid).

Programs matching the pattern (one imported workflow, one imported
cloud, cost-minimization goal over ``totalcost``, one probabilistic
deadline over ``maxtime``) compile to a
:class:`~repro.solver.backends.CompiledProblem`; anything else returns
``None`` and the caller falls back to the interpreter path.  The
equivalence of the compiled evaluation with the interpreter's
Algorithm-1 evaluation is asserted in the test suite.
"""

from __future__ import annotations

from repro.common.errors import WLogError
from repro.solver.backends import CompiledProblem
from repro.wlog.probir import ProbabilisticIR
from repro.wlog.program import ConsSpec, WLogProgram
from repro.wlog.terms import Struct, to_python

__all__ = ["try_compile", "compile_or_raise"]

_GOAL_FUNCTORS = ("totalcost",)
_CONS_FUNCTORS = ("maxtime",)


def _deadline_constraint(program: WLogProgram) -> ConsSpec | None:
    for cons in program.constraints:
        if cons.requirement_kind() == "deadline":
            return cons
    return None


def _reliability_constraint(program: WLogProgram) -> ConsSpec | None:
    for cons in program.constraints:
        if cons.requirement_kind() == "reliability":
            return cons
    return None


def try_compile(
    ir: ProbabilisticIR,
    num_samples: int = 200,
    seed: int = 0,
    region: str | None = None,
) -> CompiledProblem | None:
    """Lower a translated program to arrays, or None if unrecognized."""
    program = ir.program
    mat = ir.materialized
    if program.goal is None or program.goal.mode != "minimize":
        return None
    goal_pred = program.goal.predicate
    if not (isinstance(goal_pred, Struct) and goal_pred.functor in _GOAL_FUNCTORS):
        return None
    cons = _deadline_constraint(program)
    reliability = _reliability_constraint(program)
    expected = 1 + (1 if reliability is not None else 0)
    if cons is None or len(program.constraints) != expected:
        return None
    if not (isinstance(cons.predicate, Struct) and cons.predicate.functor in _CONS_FUNCTORS):
        return None
    if reliability is not None and program.fault_spec is None:
        return None
    if mat.catalog is None or len(mat.workflows) != 1:
        return None
    if program.var_spec is None or program.var_spec.declaration.functor != "configs":
        return None

    assert cons.requirement is not None
    percentile = float(to_python(cons.requirement.args[0]))
    deadline = float(to_python(cons.requirement.args[1]))
    (workflow,) = mat.workflows.values()
    problem = CompiledProblem.compile(
        workflow=workflow,
        catalog=mat.catalog,
        deadline=deadline,
        percentile=percentile,
        num_samples=num_samples,
        seed=seed,
        region=region,
    )
    if program.fault_spec is not None:
        from repro.faults.recovery import RecoveryPolicy

        rel_percentile = None
        policy = RecoveryPolicy()
        if reliability is not None:
            assert reliability.requirement is not None
            rel_percentile = float(to_python(reliability.requirement.args[0]))
            policy = RecoveryPolicy(
                max_retries=int(to_python(reliability.requirement.args[1]))
            )
        problem = problem.with_faults(
            program.fault_spec.to_fault_model(),
            recovery=policy,
            reliability_percentile=rel_percentile,
        )
    return problem


def compile_or_raise(
    ir: ProbabilisticIR,
    num_samples: int = 200,
    seed: int = 0,
    region: str | None = None,
    strict: bool = False,
) -> CompiledProblem:
    """Like :func:`try_compile` but raising a descriptive error.

    Error-level static-analysis diagnostics also raise (as
    :class:`~repro.common.errors.WLogAnalysisError`) before lowering:
    the IR carries every materialized fact, so the exact fact surface
    is known here and undefined predicates are hard errors.
    """
    from repro.wlog.analysis import check_program

    facts = {r.indicator for r in ir.materialized.rules}
    facts |= {(pf.functor, len(pf.key) + 1) for pf in ir.materialized.prob_facts}
    check_program(
        ir.program, extra_predicates=facts, assume_import_facts=False, strict=strict
    )
    problem = try_compile(ir, num_samples=num_samples, seed=seed, region=region)
    if problem is None:
        raise WLogError(
            "program does not match the compilable scheduling pattern "
            "(minimize totalcost + one probabilistic deadline over maxtime "
            "+ configs variables over one workflow and one cloud, optionally "
            "a fault_model directive with one reliability constraint); "
            "evaluate it with ProbabilisticIR.evaluate instead"
        )
    return problem
