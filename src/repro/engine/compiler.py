"""WLog program -> compiled array problem.

The paper's GPU solver does not interpret ProbLog rules on the device;
the probabilistic IR is lowered to flat arrays (task-time samples,
prices, DAG structure) that the kernels consume.  This module is that
lowering for the *standard* problem family of Example 1:

    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(...) satisfies deadline(p%, D).
    var configs(Tid, Vid, Con) forall task(Tid) and vm(Vid).

Programs matching the pattern (one imported workflow, one imported
cloud, cost-minimization goal over ``totalcost``, one probabilistic
deadline over ``maxtime``) compile to a
:class:`~repro.solver.backends.CompiledProblem`; anything else returns
``None`` and the caller falls back to the interpreter path.  The
equivalence of the compiled evaluation with the interpreter's
Algorithm-1 evaluation is asserted in the test suite.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.common.errors import WLogError
from repro.solver.backends import CompiledProblem
from repro.solver.levels import LevelSchedule
from repro.wlog.probir import ProbabilisticIR
from repro.wlog.program import ConsSpec, WLogProgram
from repro.wlog.terms import Struct, to_python

__all__ = [
    "try_compile",
    "compile_or_raise",
    "ArenaWorkflowStub",
    "calibration_from_segment",
    "export_problem_arrays",
    "problem_fingerprint",
    "problem_from_segment",
]

_GOAL_FUNCTORS = ("totalcost",)
_CONS_FUNCTORS = ("maxtime",)


def _deadline_constraint(program: WLogProgram) -> ConsSpec | None:
    for cons in program.constraints:
        if cons.requirement_kind() == "deadline":
            return cons
    return None


def _reliability_constraint(program: WLogProgram) -> ConsSpec | None:
    for cons in program.constraints:
        if cons.requirement_kind() == "reliability":
            return cons
    return None


def try_compile(
    ir: ProbabilisticIR,
    num_samples: int = 200,
    seed: int = 0,
    region: str | None = None,
) -> CompiledProblem | None:
    """Lower a translated program to arrays, or None if unrecognized."""
    program = ir.program
    mat = ir.materialized
    if program.goal is None or program.goal.mode != "minimize":
        return None
    goal_pred = program.goal.predicate
    if not (isinstance(goal_pred, Struct) and goal_pred.functor in _GOAL_FUNCTORS):
        return None
    cons = _deadline_constraint(program)
    reliability = _reliability_constraint(program)
    expected = 1 + (1 if reliability is not None else 0)
    if cons is None or len(program.constraints) != expected:
        return None
    if not (isinstance(cons.predicate, Struct) and cons.predicate.functor in _CONS_FUNCTORS):
        return None
    if reliability is not None and program.fault_spec is None:
        return None
    if mat.catalog is None or len(mat.workflows) != 1:
        return None
    if program.var_spec is None or program.var_spec.declaration.functor != "configs":
        return None

    assert cons.requirement is not None
    percentile = float(to_python(cons.requirement.args[0]))
    deadline = float(to_python(cons.requirement.args[1]))
    (workflow,) = mat.workflows.values()
    problem = CompiledProblem.compile(
        workflow=workflow,
        catalog=mat.catalog,
        deadline=deadline,
        percentile=percentile,
        num_samples=num_samples,
        seed=seed,
        region=region,
    )
    if program.fault_spec is not None:
        from repro.faults.recovery import RecoveryPolicy

        rel_percentile = None
        policy = RecoveryPolicy()
        if reliability is not None:
            assert reliability.requirement is not None
            rel_percentile = float(to_python(reliability.requirement.args[0]))
            policy = RecoveryPolicy(
                max_retries=int(to_python(reliability.requirement.args[1]))
            )
        problem = problem.with_faults(
            program.fault_spec.to_fault_model(),
            recovery=policy,
            reliability_percentile=rel_percentile,
        )
    return problem


# Shared-memory tensor plane (DESIGN.md §15) ---------------------------------
#
# A CompiledProblem is, at runtime, a bag of immutable numpy arrays plus
# tiny metadata.  These helpers flatten it into (arrays, meta) suitable
# for :mod:`repro.parallel.arena` segments and rebuild an equivalent
# problem from an attached segment -- the zero-copy alternative to
# pickling the whole problem into every worker.


class ArenaWorkflowStub:
    """Minimal workflow stand-in for attached problems.

    Worker-side evaluation (makespan kernels, analytic moments, prefix
    screening, cost batches) never touches the workflow object beyond
    identity-ish metadata; plan assembly (``assignment_names``,
    ``state_from_assignment``) happens in the parent, which holds the
    real workflow.  Shipping a stub keeps the segment free of object
    graphs.
    """

    __slots__ = ("name", "num_tasks")

    def __init__(self, name: str, num_tasks: int):
        self.name = str(name)
        self.num_tasks = int(num_tasks)

    def __len__(self) -> int:
        return self.num_tasks

    def __repr__(self) -> str:
        return f"ArenaWorkflowStub({self.name!r}, {self.num_tasks})"


def export_problem_arrays(
    problem: CompiledProblem, calibration: tuple | None = None
) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a problem's immutable arrays (+ optional analytic
    calibration ``(grids, means, variances)``) into an arena payload."""
    lv = problem.levels
    assert lv is not None
    arrays: dict[str, np.ndarray] = {
        "tensor": problem.tensor,
        "tensor_taskmajor": problem.tensor_taskmajor,
        "mean_times": problem.mean_times,
        "prices": problem.prices,
        "parent_matrix": lv.parent_matrix,
        "order": lv.order,
        "depth": lv.depth,
        "rank": lv.rank,
        "sink_slots": lv.sink_slots,
    }
    for i, gather in enumerate(lv.level_parents):
        arrays[f"lvlp{i}"] = gather
    if calibration is not None:
        grids, means, variances = calibration
        arrays["calib_grids"] = grids
        arrays["calib_means"] = means
        arrays["calib_variances"] = variances
    meta = {
        "workflow_name": problem.workflow.name,
        "num_tasks": problem.num_tasks,
        "num_levels": lv.num_levels,
        "level_bounds": [list(b) for b in lv.level_bounds],
        "calibrated": calibration is not None,
    }
    return arrays, meta


def problem_fingerprint(problem: CompiledProblem, calibrated: bool = False) -> str:
    """Content key of a problem's sample-tensor generation.

    Hashes the arrays whose bytes determine every evaluation result
    (the task-major copy and level gathers are deterministic functions
    of these, so hashing them too would only slow the key down) plus
    the fault metadata that rides the derivation chain.  Problems with
    equal keys are interchangeable on the worker side.
    """
    from repro.parallel.arena import content_key

    lv = problem.levels
    assert lv is not None
    extra = pickle.dumps(
        (
            problem.workflow.name,
            problem.faults,
            problem.recovery,
            problem.reliability_required,
            bool(calibrated),
        ),
        protocol=4,
    )
    return content_key(
        {
            "tensor": problem.tensor,
            "mean_times": problem.mean_times,
            "prices": problem.prices,
            "parent_matrix": lv.parent_matrix,
        },
        extra=extra,
    )


def problem_from_segment(
    segment,
    catalog,
    *,
    workflow=None,
    deadline: float = 1.0,
    required_probability: float = 0.96,
    faults=None,
    recovery=None,
    reliability_required: float = 0.0,
) -> CompiledProblem:
    """Rebuild a :class:`CompiledProblem` over an attached segment's arrays.

    The tensors alias the shared mapping (zero-copy); per-solve scalars
    (deadline, fault metadata) come from the caller -- they ride the
    small broadcast delta, not the segment.  The rebuilt problem gets a
    fresh worker-local ``sample_token``, so worker caches key it like
    any locally compiled problem.
    """
    arrays, meta = segment.arrays, segment.meta
    level_parents = [arrays[f"lvlp{i}"] for i in range(int(meta["num_levels"]))]
    levels = LevelSchedule.from_arrays(
        parent_matrix=arrays["parent_matrix"],
        order=arrays["order"],
        depth=arrays["depth"],
        rank=arrays["rank"],
        sink_slots=arrays["sink_slots"],
        level_bounds=meta["level_bounds"],
        level_parents=level_parents,
    )
    parent_matrix = arrays["parent_matrix"]
    parents = tuple(
        tuple(int(p) for p in row[row >= 0]) for row in parent_matrix
    )
    wf = workflow if workflow is not None else ArenaWorkflowStub(
        meta["workflow_name"], int(meta["num_tasks"])
    )
    return CompiledProblem(
        workflow=wf,
        catalog=catalog,
        mean_times=arrays["mean_times"],
        tensor=arrays["tensor"],
        prices=arrays["prices"],
        parent_indices=parents,
        deadline=float(deadline),
        required_probability=float(required_probability),
        levels=levels,
        tensor_taskmajor=arrays["tensor_taskmajor"],
        faults=faults,
        recovery=recovery,
        reliability_required=float(reliability_required),
    )


def calibration_from_segment(segment) -> tuple | None:
    """The published analytic calibration ``(grids, means, variances)``,
    or ``None`` when the segment was exported without one."""
    arrays = segment.arrays
    if "calib_grids" not in arrays:
        return None
    return arrays["calib_grids"], arrays["calib_means"], arrays["calib_variances"]


def compile_or_raise(
    ir: ProbabilisticIR,
    num_samples: int = 200,
    seed: int = 0,
    region: str | None = None,
    strict: bool = False,
) -> CompiledProblem:
    """Like :func:`try_compile` but raising a descriptive error.

    Error-level static-analysis diagnostics also raise (as
    :class:`~repro.common.errors.WLogAnalysisError`) before lowering:
    the IR carries every materialized fact, so the exact fact surface
    is known here and undefined predicates are hard errors.
    """
    from repro.wlog.analysis import check_program

    facts = {r.indicator for r in ir.materialized.rules}
    facts |= {(pf.functor, len(pf.key) + 1) for pf in ir.materialized.prob_facts}
    check_program(
        ir.program, extra_predicates=facts, assume_import_facts=False, strict=strict
    )
    problem = try_compile(ir, num_samples=num_samples, seed=seed, region=region)
    if problem is None:
        raise WLogError(
            "program does not match the compilable scheduling pattern "
            "(minimize totalcost + one probabilistic deadline over maxtime "
            "+ configs variables over one workflow and one cloud, optionally "
            "a fault_model directive with one reliability constraint); "
            "evaluate it with ProbabilisticIR.evaluate instead"
        )
    return problem
