"""Use case 2: workflow-ensemble admission (paper Sections 3.2, 6.3.2).

Given an ensemble (prioritized workflows, per-workflow probabilistic
deadlines, one budget), maximize the total score ``sum 2**-priority``
of admitted workflows (Eq. 4) subject to the budget (Eq. 5), admitting
only workflows whose own probabilistic deadline is achievable (Eq. 6).

Per the paper's implementation notes, the search state is a boolean
vector over the ensemble's workflows and A* is enabled with the Score
metric as the g/h heuristic.  Each member's cost comes from running the
use-case-1 scheduling optimization under that member's deadline, which
is where Deco's advantage over SPSS originates: the transformation
operations find cheaper per-workflow plans, so more workflows fit the
budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.common.errors import ValidationError
from repro.engine.deco import Deco
from repro.engine.plan import ProvisioningPlan
from repro.parallel.workers import solve_plans
from repro.solver.search import AStarResult, AStarSearch
from repro.wlog.engine import Database, Engine
from repro.wlog.library import ensemble_program
from repro.wlog.program import WLogProgram
from repro.wlog.terms import Atom, Num, Rule, Struct, to_python
from repro.workflow.ensembles import Ensemble, EnsembleMember

__all__ = ["MemberOutcome", "EnsembleDecision", "EnsembleDriver"]


@dataclass(frozen=True)
class MemberOutcome:
    """Per-member result: the optimized plan and the admission decision.

    ``plan`` is ``None`` when the member's solve failed outright (a
    :class:`~repro.common.errors.DecoError` recorded-and-skipped by
    :meth:`EnsembleDriver.member_plans`); such members are never
    admitted but still appear in the decision so failures are visible.
    """

    member: EnsembleMember
    plan: ProvisioningPlan | None
    admitted: bool

    @property
    def solved(self) -> bool:
        """Whether the member's scheduling optimization produced a plan."""
        return self.plan is not None

    @property
    def cost(self) -> float:
        return self.plan.expected_cost if self.plan is not None else float("inf")

    @property
    def feasible(self) -> bool:
        """Whether the member's probabilistic deadline is achievable."""
        return self.plan is not None and self.plan.feasible


@dataclass(frozen=True)
class EnsembleDecision:
    """The admission decision for a whole ensemble."""

    ensemble_name: str
    outcomes: tuple[MemberOutcome, ...]
    total_score: float
    total_cost: float
    budget: float
    astar_expanded: int
    solve_seconds: float

    @property
    def admitted_priorities(self) -> tuple[int, ...]:
        return tuple(sorted(o.member.priority for o in self.outcomes if o.admitted))

    @property
    def num_admitted(self) -> int:
        return sum(1 for o in self.outcomes if o.admitted)


class EnsembleDriver:
    """Solves ensemble admission with Deco-optimized member plans + A*."""

    def __init__(self, deco: Deco, max_expansions: int = 50_000):
        self.deco = deco
        self.astar = AStarSearch(max_expansions=max_expansions)

    # ------------------------------------------------------------------

    def member_plans(
        self,
        ensemble: Ensemble,
        workers: int | None = None,
        progress: Callable[[int, int], None] | None = None,
        on_error: str = "record",
    ) -> dict[int, ProvisioningPlan | None]:
        """Optimize every member under its own probabilistic deadline.

        Member solves are independent, so ``workers > 1`` fans them out
        over processes (each worker rebuilds a pristine engine from
        :meth:`~repro.engine.deco.Deco.spec`); the plans are identical
        to the serial ones for any worker count.

        A member whose solve raises a
        :class:`~repro.common.errors.DecoError` is recorded as ``None``
        and skipped rather than killing the whole ensemble
        (``on_error="record"``, the default); pass ``on_error="raise"``
        to get the fail-fast behavior back.
        """
        jobs = [
            (m.priority, m.workflow, m.deadline, m.deadline_percentile)
            for m in ensemble.by_priority()
        ]
        plans = solve_plans(
            self.deco, jobs, workers=workers, progress=progress, on_error=on_error
        )
        return {priority: plans[priority] for priority, *_ in jobs}

    def decide(
        self,
        ensemble: Ensemble,
        plans: Mapping[int, ProvisioningPlan] | None = None,
    ) -> EnsembleDecision:
        """Admit the score-maximal affordable subset (A* search).

        ``plans`` may carry precomputed member plans (the bench harness
        reuses them across budget sweeps).
        """
        if ensemble.budget == float("inf"):
            raise ValidationError("ensemble admission needs a finite budget")
        t0 = time.perf_counter()
        plans = dict(plans) if plans is not None else self.member_plans(ensemble)

        # Only members whose probabilistic deadline is achievable at all
        # are candidates (Eq. 6); their admission costs are Eq.-1 costs.
        # Members whose solve failed (plan None) are excluded outright.
        candidates = [
            m.priority
            for m in ensemble.by_priority()
            if plans[m.priority] is not None and plans[m.priority].feasible
        ]
        cost_of = {p: plans[p].expected_cost for p in candidates}
        score_of = {p: 2.0 ** (-p) for p in candidates}
        budget = ensemble.budget

        admitted = self._admit(candidates, cost_of, score_of, budget)

        outcomes = tuple(
            MemberOutcome(
                member=m,
                plan=plans[m.priority],
                admitted=m.priority in admitted.best_state,  # type: ignore[operator]
            )
            for m in ensemble.by_priority()
        )
        chosen = admitted.best_state
        total_cost = sum(cost_of[p] for p in chosen)
        total_score = sum(score_of[p] for p in chosen)
        return EnsembleDecision(
            ensemble_name=ensemble.name,
            outcomes=outcomes,
            total_score=total_score,
            total_cost=total_cost,
            budget=budget,
            astar_expanded=admitted.expanded,
            solve_seconds=time.perf_counter() - t0,
        )

    # Declarative path ---------------------------------------------------

    def wlog_facts(
        self,
        ensemble: Ensemble,
        plans: Mapping[int, ProvisioningPlan],
        admitted: frozenset[int] = frozenset(),
    ) -> list[Rule]:
        """The fact base the ensemble WLog program runs against.

        Per member ``w<p>``: ``workflow/1``, ``wscore/2`` (= 2**-p),
        ``wcost/2`` (Deco-optimized Eq.-1 cost), ``wfeasible/1`` (only
        when the member's probabilistic deadline is achievable), and the
        decision facts ``run(w<p>, 1|0)``.
        """
        rules: list[Rule] = []
        for member in ensemble.by_priority():
            w = Atom(f"w{member.priority}")
            plan = plans[member.priority]
            rules.append(Rule(Struct("workflow", (w,))))
            rules.append(Rule(Struct("wscore", (w, Num(member.score)))))
            # A failed solve (plan None) contributes a zero-cost,
            # never-feasible member: it can't be admitted, so the cost
            # never enters any admitted subset's total.
            cost = plan.expected_cost if plan is not None else 0.0
            rules.append(Rule(Struct("wcost", (w, Num(cost)))))
            if plan is not None and plan.feasible:
                rules.append(Rule(Struct("wfeasible", (w,))))
            rules.append(
                Rule(Struct("run", (w, Num(1.0 if member.priority in admitted else 0.0))))
            )
        # The program's \+ wfeasible(W) needs the predicate defined even
        # when no member is feasible.
        if not any(
            plans[m.priority] is not None and plans[m.priority].feasible
            for m in ensemble.members
        ):
            rules.append(Rule(Struct("wfeasible", (Atom("no_feasible_member"),))))
        return rules

    def evaluate_admission_wlog(
        self,
        ensemble: Ensemble,
        plans: Mapping[int, ProvisioningPlan],
        admitted: frozenset[int],
    ) -> tuple[float, float, bool]:
        """Evaluate one admission subset through the WLog program.

        Returns ``(score, cost, admissible)`` as the program's
        ``totalscore``/``ensemblecost``/``admissible`` queries report
        them -- the reference semantics of use case 2.
        """
        program = WLogProgram.from_source(ensemble_program(budget=ensemble.budget))
        db = Database(program.rules)
        db.extend(self.wlog_facts(ensemble, plans, admitted))
        engine = Engine(db)
        score = float(to_python(engine.first("totalscore(S)")["S"]))
        cost = float(to_python(engine.first("ensemblecost(C)")["C"]))
        admissible = engine.ask("admissible") and cost <= ensemble.budget + 1e-12
        return score, cost, admissible

    def decide_via_wlog(
        self,
        ensemble: Ensemble,
        plans: Mapping[int, ProvisioningPlan] | None = None,
    ) -> EnsembleDecision:
        """Admission with every candidate evaluated by the WLog program.

        Same A* skeleton as :meth:`decide`, but the scores, costs and
        admissibility of each searched subset come from interpreting the
        declarative program (paper Section 5's evaluation loop) rather
        than from precomputed Python dictionaries.  Interpreter-priced,
        so intended for moderate ensembles (tested up to ~15 members);
        :meth:`decide` is the compiled equivalent and the two must
        agree (asserted in the test suite).
        """
        if ensemble.budget == float("inf"):
            raise ValidationError("ensemble admission needs a finite budget")
        t0 = time.perf_counter()
        plans = dict(plans) if plans is not None else self.member_plans(ensemble)
        candidates = [
            m.priority
            for m in ensemble.by_priority()
            if plans[m.priority] is not None and plans[m.priority].feasible
        ]
        cache: dict[frozenset[int], tuple[float, float, bool]] = {}

        def look(state: frozenset[int]) -> tuple[float, float, bool]:
            out = cache.get(state)
            if out is None:
                out = self.evaluate_admission_wlog(ensemble, plans, state)
                cache[state] = out
            return out

        def addable(state):
            start = max(state) + 1 if state else 0
            return [
                p
                for p in candidates
                if p >= start and look(frozenset(state | {p}))[2]
            ]

        def neighbors(state):
            return [frozenset(state | {p}) for p in addable(state)]

        def g_score(state) -> float:
            return -look(state)[0]

        def h_score(state) -> float:
            _, cost, _ = look(state)
            remaining = ensemble.budget - cost
            start = max(state) + 1 if state else 0
            return -sum(
                2.0 ** (-p)
                for p in candidates
                if p >= start and plans[p].expected_cost <= remaining + 1e-12
            )

        result = self.astar.solve(frozenset(), neighbors, g_score, h_score, lambda s: not addable(s))
        chosen: frozenset[int] = result.best_state  # type: ignore[assignment]
        score, cost, _ = look(chosen)
        outcomes = tuple(
            MemberOutcome(member=m, plan=plans[m.priority], admitted=m.priority in chosen)
            for m in ensemble.by_priority()
        )
        return EnsembleDecision(
            ensemble_name=ensemble.name,
            outcomes=outcomes,
            total_score=score,
            total_cost=cost,
            budget=ensemble.budget,
            astar_expanded=result.expanded,
            solve_seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------

    def _admit(self, candidates, cost_of, score_of, budget) -> AStarResult:
        """A* over admitted subsets, maximizing score within budget.

        States are frozensets of priorities, built by inserting
        candidates in ascending priority so each subset is generated
        once.  ``g`` is the negated score so far; ``h`` the negated
        optimistic remaining score (every still-affordable candidate);
        ``h`` is admissible, so the first goal popped is score-optimal.
        """
        candidates = sorted(candidates)

        def used(state) -> float:
            return sum(cost_of[p] for p in state)

        def addable(state):
            remaining = budget - used(state)
            start = max(state) + 1 if state else 0
            return [p for p in candidates if p >= start and cost_of[p] <= remaining + 1e-12]

        def neighbors(state):
            return [frozenset(state | {p}) for p in addable(state)]

        def g_score(state) -> float:
            return -sum(score_of[p] for p in state)

        def h_score(state) -> float:
            remaining = budget - used(state)
            start = max(state) + 1 if state else 0
            return -sum(
                score_of[p] for p in candidates if p >= start and cost_of[p] <= remaining + 1e-12
            )

        def is_goal(state) -> bool:
            return not addable(state)

        return self.astar.solve(frozenset(), neighbors, g_score, h_score, is_goal)
