"""Exception hierarchy for the Deco reproduction.

All library-raised exceptions derive from :class:`DecoError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing user errors (bad WLog programs, invalid workflows)
from engine failures (infeasible optimizations).
"""

from __future__ import annotations


class DecoError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(DecoError, ValueError):
    """A model object (workflow, plan, distribution...) is malformed."""


class CloudError(DecoError):
    """The cloud simulator was driven into an invalid state.

    Examples: releasing an instance twice, scheduling a task onto an
    instance that was never acquired, or referencing an unknown region.
    """


class WLogError(DecoError):
    """Base class for errors in the WLog declarative language layer."""


class WLogSyntaxError(WLogError):
    """The WLog source text could not be tokenized or parsed.

    Carries the source position to make programs debuggable.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class WLogRuntimeError(WLogError):
    """Evaluation of a (syntactically valid) WLog program failed.

    Examples: arithmetic on an unbound variable, calling an unknown
    predicate, or an ``import`` of a workflow/cloud that was never
    registered with the engine.
    """


class SolverError(DecoError):
    """The search engine failed (bad backend name, malformed state...)."""


class InfeasibleError(SolverError):
    """No provisioning plan satisfies the declared constraints.

    Raised by drivers that are asked for a feasible plan when even the
    most aggressive state in the search space violates a constraint
    (e.g. the deadline is below the runtime on the fastest instance).
    """
