"""Exception hierarchy for the Deco reproduction.

All library-raised exceptions derive from :class:`DecoError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing user errors (bad WLog programs, invalid workflows)
from engine failures (infeasible optimizations).
"""

from __future__ import annotations


def format_source_context(source: str, line: int, column: int, end_column: int = 0) -> str:
    """Render a source line with a ``^`` caret marking ``line:column``.

    Shared by :class:`WLogSyntaxError` and the static-analysis
    diagnostics renderer (:mod:`repro.wlog.diagnostics`) so parse errors
    and lint findings point at programs the same way.  Columns are
    1-based; ``end_column`` (exclusive) widens the caret to underline a
    whole token.  Returns ``""`` when the position is out of range.
    """
    lines = source.splitlines()
    if not (1 <= line <= len(lines)):
        return ""
    text = lines[line - 1].expandtabs(1)
    col = max(1, min(column, len(text) + 1))
    width = max(1, end_column - col) if end_column > col else 1
    return f"    {text}\n    {' ' * (col - 1)}{'^' * width}"


class DecoError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(DecoError, ValueError):
    """A model object (workflow, plan, distribution...) is malformed."""


class CloudError(DecoError):
    """The cloud simulator was driven into an invalid state.

    Examples: releasing an instance twice, scheduling a task onto an
    instance that was never acquired, or referencing an unknown region.
    """


class ExecutionAborted(CloudError):
    """A simulated run exhausted its retry budget and was abandoned.

    Unlike a bare :class:`CloudError`, this carries the full context of
    the abort so failures are debuggable and censorable: the task that
    gave up, how many attempts it burned, the simulation clock at abort
    time, and the :class:`~repro.cloud.simulator.TaskRecord`\\ s of every
    task that *did* complete (``run_many(on_abort="record")`` turns
    these into censored outcomes instead of killing the batch).
    """

    def __init__(
        self,
        message: str,
        *,
        task_id: str = "",
        attempts: int = 0,
        sim_time: float = 0.0,
        task_records: tuple = (),
        partial_result=None,
    ):
        self.task_id = task_id
        self.attempts = attempts
        self.sim_time = sim_time
        self.task_records = tuple(task_records)
        self.partial_result = partial_result
        super().__init__(message)


class WLogError(DecoError):
    """Base class for errors in the WLog declarative language layer."""


class WLogSyntaxError(WLogError):
    """The WLog source text could not be tokenized or parsed.

    Carries the source position to make programs debuggable.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0, source: str | None = None):
        self.line = line
        self.column = column
        self.base_message = message
        if line:
            message = f"{message} (line {line}, column {column})"
            if source:
                excerpt = format_source_context(source, line, column)
                if excerpt:
                    message = f"{message}\n{excerpt}"
        super().__init__(message)


class WLogAnalysisError(WLogError):
    """A WLog program was rejected by the static analyzer.

    Carries the :class:`~repro.wlog.diagnostics.Diagnostic` records that
    triggered the rejection in :attr:`diagnostics`, so callers (CLI,
    services) can render them with source context instead of a bare
    message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)


class WLogRuntimeError(WLogError):
    """Evaluation of a (syntactically valid) WLog program failed.

    Examples: arithmetic on an unbound variable, calling an unknown
    predicate, or an ``import`` of a workflow/cloud that was never
    registered with the engine.
    """


class ServiceError(DecoError):
    """The job-service runtime failed (bad journal, unknown job...).

    Every subclass must survive a pickle round-trip with all fields
    intact -- service exceptions routinely cross process-pool
    boundaries (worker -> dispatcher) and land in dead-letter records.
    The parametrized hierarchy test in
    ``tests/common/test_error_pickling.py`` enforces this: keep extra
    fields either reconstructible from ``args`` or stored on the
    instance ``__dict__`` (which :meth:`BaseException.__reduce__`
    preserves), and give every ``__init__`` parameter after the message
    a default so ``cls(*args)`` always succeeds.
    """


class JournalCorrupt(ServiceError):
    """The write-ahead journal has an undecodable record *before* the tail.

    A torn final line is expected after a crash mid-append and is
    silently dropped on replay; corruption anywhere else means the file
    was damaged by something other than a crash and replay must not
    guess.  Carries the journal path and the offending line number.
    """

    def __init__(self, message: str, path: str = "", line_number: int = 0):
        self.path = str(path)
        self.line_number = int(line_number)
        super().__init__(message)


class AdmissionError(ServiceError):
    """A job submission was refused by admission control.

    Structured backpressure, not a crash: carries the machine-readable
    ``reason`` (``"queue_full"`` or ``"rate_limited"``) and the
    ``retry_after_s`` hint after which the submission is expected to be
    accepted, so clients back off instead of hammering the queue.
    """

    def __init__(self, message: str, reason: str = "", retry_after_s: float = 0.0):
        self.reason = str(reason)
        self.retry_after_s = float(retry_after_s)
        super().__init__(message)


class JobNotFound(ServiceError):
    """A status/result query named a job id the service has no record of."""

    def __init__(self, message: str, job_id: str = ""):
        self.job_id = str(job_id)
        super().__init__(message)


class SolverError(DecoError):
    """The search engine failed (bad backend name, malformed state...)."""


class InfeasibleError(SolverError):
    """No provisioning plan satisfies the declared constraints.

    Raised by drivers that are asked for a feasible plan when even the
    most aggressive state in the search space violates a constraint
    (e.g. the deadline is below the runtime on the fastest instance).
    """
