"""Deterministic, named random streams.

Every stochastic subsystem (cloud dynamics, workflow generation, Monte
Carlo inference, baseline tie-breaking) must be independently replayable:
changing how many samples the solver draws must not perturb the cloud's
performance trace.  We achieve this with *named child streams*: a single
root seed is combined with a string path (e.g. ``"cloud/io/m1.small"``)
through :class:`numpy.random.SeedSequence`, yielding decorrelated,
order-independent generators.
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np

__all__ = ["RngService", "spawn_rng"]


def _path_entropy(path: str) -> list[int]:
    """Map a stream path to stable 32-bit words of entropy.

    CRC32 is adequate here: we need a stable, platform-independent hash
    (``hash()`` is salted per process), not a cryptographic one.
    """
    words = []
    for part in path.split("/"):
        words.append(zlib.crc32(part.encode("utf-8")) & 0xFFFFFFFF)
    return words


def spawn_rng(seed: int, path: str) -> np.random.Generator:
    """Create a generator for ``path`` derived from ``seed``.

    The same ``(seed, path)`` pair always yields the same stream, and
    distinct paths yield statistically independent streams.
    """
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF, *_path_entropy(path)])
    return np.random.Generator(np.random.PCG64(ss))


class RngService:
    """A factory of named random streams rooted at one seed.

    Streams are cached so repeated lookups of the same path return the
    *same* generator object (its state advances as it is consumed); use
    :meth:`fresh` for a stateless re-derivation.

    >>> rngs = RngService(seed=7)
    >>> a = rngs.get("cloud/net")
    >>> b = rngs.get("cloud/net")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, path: str) -> np.random.Generator:
        """Return the (cached, stateful) generator for ``path``."""
        gen = self._streams.get(path)
        if gen is None:
            gen = spawn_rng(self.seed, path)
            self._streams[path] = gen
        return gen

    def fresh(self, path: str) -> np.random.Generator:
        """Return a brand-new generator for ``path`` at its initial state."""
        return spawn_rng(self.seed, path)

    def child(self, prefix: str) -> "RngService":
        """A service whose paths are implicitly prefixed with ``prefix``.

        Useful for handing a subsystem its own namespace without leaking
        the parent's layout.
        """
        return _PrefixedRngService(self, prefix)

    def pristine(self) -> "RngService":
        """An equivalent service with no consumed stream state.

        Worker processes rebuild their RNG from this, so a replication's
        stream depends only on ``(seed, path)`` -- never on how much of
        any stream the parent already consumed.
        """
        return RngService(self.seed)

    def paths(self) -> Iterator[str]:
        """Paths that have been materialized so far (for diagnostics)."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngService(seed={self.seed}, streams={len(self._streams)})"


class _PrefixedRngService(RngService):
    """View of a parent :class:`RngService` under a path prefix."""

    def __init__(self, parent: RngService, prefix: str):
        # Intentionally skip RngService.__init__: all state lives in parent.
        self.seed = parent.seed
        self._parent = parent
        self._prefix = prefix.rstrip("/")

    @property
    def _streams(self) -> dict[str, np.random.Generator]:  # type: ignore[override]
        return self._parent._streams

    def get(self, path: str) -> np.random.Generator:
        return self._parent.get(f"{self._prefix}/{path}")

    def fresh(self, path: str) -> np.random.Generator:
        return self._parent.fresh(f"{self._prefix}/{path}")

    def child(self, prefix: str) -> "RngService":
        return _PrefixedRngService(self._parent, f"{self._prefix}/{prefix}")

    def pristine(self) -> "RngService":
        return self._parent.pristine().child(self._prefix)
