"""Shared low-level substrate used by every other subsystem.

This package deliberately has no dependencies on the rest of :mod:`repro`
so that any module can import it without creating cycles.  It provides:

* :mod:`repro.common.rng` -- a seedable random-source service.  Every
  stochastic component in the reproduction (cloud performance dynamics,
  workflow generators, Monte Carlo inference) draws from named child
  streams of a single root seed, so whole experiments are replayable.
* :mod:`repro.common.units` -- explicit time/money unit helpers.  The
  paper mixes seconds (task runtimes), hours (billing) and dollars;
  keeping conversions in one place avoids the classic factor-3600 bug.
* :mod:`repro.common.errors` -- the exception hierarchy.
"""

from repro.common.errors import (
    DecoError,
    CloudError,
    ValidationError,
    WLogError,
    WLogSyntaxError,
    WLogRuntimeError,
    SolverError,
    InfeasibleError,
)
from repro.common.rng import RngService, spawn_rng
from repro.common.units import (
    SECONDS_PER_HOUR,
    hours_to_seconds,
    seconds_to_hours,
    billed_hours,
)

__all__ = [
    "DecoError",
    "CloudError",
    "ValidationError",
    "WLogError",
    "WLogSyntaxError",
    "WLogRuntimeError",
    "SolverError",
    "InfeasibleError",
    "RngService",
    "spawn_rng",
    "SECONDS_PER_HOUR",
    "hours_to_seconds",
    "seconds_to_hours",
    "billed_hours",
]
