"""Time and money unit conventions.

Conventions used across the library (documented once, enforced here):

* **Task runtimes and makespans are in seconds** (floats).
* **Prices are in dollars per instance-hour**, matching the EC2 price
  list the paper uses (e.g. m1.small at $0.044/h).
* **Billing** in the 2015 EC2 model rounds usage *up* to whole hours per
  acquired instance ("instance partial hour"); the optimizer's analytic
  cost model (Eq. 1 of the paper) instead charges fractional hours of
  the mean runtime.  Both conversions live here.
"""

from __future__ import annotations

import math

__all__ = [
    "SECONDS_PER_HOUR",
    "hours_to_seconds",
    "seconds_to_hours",
    "billed_hours",
    "fractional_cost",
    "billed_cost",
]

SECONDS_PER_HOUR: float = 3600.0


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return float(hours) * SECONDS_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return float(seconds) / SECONDS_PER_HOUR


def billed_hours(seconds: float) -> int:
    """Whole instance-hours billed for ``seconds`` of usage.

    EC2's 2015 billing model: any started hour is charged in full, and
    acquiring an instance for zero time still bills one hour (the paper's
    simulator releases instances on the hour boundary for exactly this
    reason).

    >>> billed_hours(0.0)
    1
    >>> billed_hours(3600.0)
    1
    >>> billed_hours(3600.1)
    2
    """
    if seconds < 0:
        raise ValueError(f"negative usage: {seconds}")
    return max(1, int(math.ceil(seconds / SECONDS_PER_HOUR)))


def fractional_cost(seconds: float, unit_price_per_hour: float) -> float:
    """Fractional-hour cost used by the analytic model (paper Eq. 1-2)."""
    if seconds < 0:
        raise ValueError(f"negative usage: {seconds}")
    return seconds_to_hours(seconds) * unit_price_per_hour


def billed_cost(seconds: float, unit_price_per_hour: float) -> float:
    """Whole-hour billed cost, as the simulator charges it."""
    return billed_hours(seconds) * unit_price_per_hour
