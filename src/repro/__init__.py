"""Deco: declarative optimization of workflow resource provisioning in IaaS clouds.

A from-scratch reproduction of Zhou, He, Cheng & Lau, *"A Declarative
Optimization Engine for Resource Provisioning of Scientific Workflows in
IaaS Clouds"*, HPDC 2015.

Subpackages
-----------
``repro.common``
    Seeded RNG streams, units, errors.
``repro.distributions``
    Parametric families, histograms, fitting (cloud calibration model).
``repro.workflow``
    DAG model, DAX XML, generators (Montage/Ligo/Epigenomics), ensembles,
    runtime model, the six transformation operations.
``repro.cloud``
    IaaS cloud substrate: instance catalog, pricing, network, the
    discrete-event simulator, calibration micro-benchmarks, metadata store.
``repro.wlog``
    The WLog declarative language: parser, unification, SLD resolution,
    built-ins, the probabilistic IR and Monte Carlo inference.
``repro.solver``
    Provisioning-plan search: generic (transformation-driven) and A*
    search with scalar ("CPU") and vectorized ("GPU") evaluation backends.
``repro.engine``
    The Deco facade and drivers for the three use cases.
``repro.baselines``
    Autoscaling, SPSS, the migration Heuristic, static/random schedulers.
``repro.wms``
    Pegasus-like workflow management system integration.
``repro.bench``
    Experiment harness regenerating every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
