"""The solver's plan-state representation.

A state assigns every task an instance-type index (0 = cheapest in the
default region), exactly the ``configs(Tid, Vid, Con)`` grounding of
the WLog ``var`` directive.  States are immutable and hashable so the
search's visited-set and pruning work on raw bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import SolverError

__all__ = ["PlanState", "StateEval"]


class PlanState:
    """An immutable instance-type assignment vector.

    States produced by the single-task edit operations
    (:meth:`with_type` / :meth:`promote` / :meth:`demote`) additionally
    carry their *lineage*: ``parent_key`` is the originating state's
    :attr:`key` and ``dirty`` the tuple of task indices whose assignment
    changed.  Lineage is evaluation metadata only -- equality and
    hashing look at the assignment bytes alone -- and lets the
    incremental evaluator reuse the parent's cached finish-time frontier
    and re-propagate only the levels the dirty tasks can affect.
    """

    __slots__ = ("assignment", "_key", "parent_key", "dirty")

    def __init__(
        self,
        assignment: np.ndarray,
        parent_key: bytes | None = None,
        dirty: tuple[int, ...] | None = None,
    ):
        arr = np.asarray(assignment, dtype=np.int16)
        if arr.ndim != 1:
            raise SolverError(f"assignment must be 1-D, got shape {arr.shape}")
        if arr.size and arr.min() < 0:
            raise SolverError("assignment contains negative type indices")
        arr = arr.copy()
        arr.setflags(write=False)
        self.assignment = arr
        self._key = arr.tobytes()
        if (parent_key is None) != (dirty is None):
            raise SolverError("parent_key and dirty must be given together")
        self.parent_key = parent_key
        self.dirty = dirty

    @classmethod
    def uniform(cls, num_tasks: int, type_index: int = 0) -> "PlanState":
        """Every task on the same type (the paper's initial state uses 0)."""
        return cls(np.full(num_tasks, type_index, dtype=np.int16))

    def __len__(self) -> int:
        return int(self.assignment.size)

    def __eq__(self, other) -> bool:
        return isinstance(other, PlanState) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    @property
    def key(self) -> bytes:
        return self._key

    def with_type(self, task_index: int, type_index: int) -> "PlanState":
        """A copy with one task reassigned (lineage records the dirty task)."""
        arr = self.assignment.copy()
        arr[task_index] = type_index
        return PlanState(arr, parent_key=self._key, dirty=(int(task_index),))

    def promote(self, task_index: int, num_types: int) -> "PlanState | None":
        """Promote one task (None when already on the top type)."""
        cur = int(self.assignment[task_index])
        if cur + 1 >= num_types:
            return None
        return self.with_type(task_index, cur + 1)

    def demote(self, task_index: int) -> "PlanState | None":
        """Demote one task (None when already on the cheapest type)."""
        cur = int(self.assignment[task_index])
        if cur == 0:
            return None
        return self.with_type(task_index, cur - 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PlanState({self.assignment.tolist()})"


@dataclass(frozen=True)
class StateEval:
    """Evaluation of one state against the compiled problem.

    ``cost`` is the paper's Eq. 1 objective; ``probability`` estimates
    P(makespan <= deadline); ``feasible`` is that probability meeting
    the declared percentile; ``mean_makespan`` is informational.
    ``source`` records which evaluation tier produced the numbers --
    ``"mc"`` for Monte Carlo backends, ``"analytic"`` for the
    moment-propagation backend -- so cascade introspection and the
    benchmarks can attribute evaluations without guessing.
    """

    cost: float
    probability: float
    feasible: bool
    mean_makespan: float
    source: str = "mc"

    def better_than(self, other: "StateEval | None", mode: str = "minimize") -> bool:
        """Feasibility-first comparison used by the search."""
        if other is None:
            return True
        if self.feasible != other.feasible:
            return self.feasible
        if not self.feasible:
            return self.probability > other.probability
        if mode == "minimize":
            return self.cost < other.cost
        return self.cost > other.cost
