"""Search algorithms over provisioning-plan states.

:class:`GenericSearch` is the paper's Algorithm 2: traverse the state
space from an initial configuration, with state transitions driven by
the transformation operations (Promote toward feasibility, Demote
toward lower cost), evaluating every visited state with the compiled
probabilistic IR and keeping the best feasible solution.  As in the
paper, we choose *exploration* (frontier states expand independently
and are evaluated in batches -- the GPU-friendly layout) and prune
states that cannot improve on the incumbent (promoting only raises
cost, so any state already costlier than the best feasible solution is
dead -- the observation behind the paper's A* variant).

Expansion is *batched*: each iteration takes the top
``expand_per_iter`` beam states, generates all their transformation
children, dedupes them against the visited set, and evaluates the
union as **one** backend batch -- the paper's block-per-state GPU
layout, where every kernel launch carries many states.  Priority and
pruning semantics are those of the one-state-at-a-time loop; only the
evaluation granularity changes.

:class:`AStarSearch` is a generic best-first A* over user-supplied
``g``/``h`` scores, used when a WLog program declares
``enabled(astar)`` (workflow-ensemble admission in the paper).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Iterable

import numpy as np
from scipy.special import ndtr, ndtri

from repro.analysis.dominance import OpMask, futile_offpath_promotes
from repro.common.errors import SolverError, ValidationError
from repro.solver.backends import CompiledProblem, EvaluationBackend, VectorizedBackend
from repro.solver.state import PlanState, StateEval

if TYPE_CHECKING:  # import cycle guard (shards import the worker module)
    from repro.solver.shards import ShardedEvaluator


def _critical_indices(
    parent_indices: tuple[tuple[int, ...], ...], task_times: np.ndarray
) -> list[int]:
    """Dense-index critical path under per-task times.

    Semantically identical to
    :func:`repro.workflow.critical_path.critical_path` (same first-tie
    argmax over the same parent order, same topological end-tie rule)
    but operating on the compiled problem's index tuples -- this runs
    once per beam expansion, and the id<->index dict traffic of the
    workflow-level function dominated expansion cost on large DAGs.
    """
    times = task_times.tolist()
    n = len(times)
    if not n:
        return []
    finish = [0.0] * n
    best = [-1] * n
    for i, parents in enumerate(parent_indices):
        if parents:
            bp = parents[0]
            bf = finish[bp]
            for p in parents[1:]:
                f = finish[p]
                if f > bf:
                    bf = f
                    bp = p
            finish[i] = bf + times[i]
            best[i] = bp
        else:
            finish[i] = times[i]
    end = max(range(n), key=finish.__getitem__)
    path: list[int] = []
    cur = end
    while cur >= 0:
        path.append(cur)
        cur = best[cur]
    path.reverse()
    return path

__all__ = ["SearchResult", "GenericSearch", "AStarSearch", "AStarResult"]


@dataclass
class SearchResult:
    """Outcome of a generic search run.

    ``evaluations`` counts every candidate that consumed evaluation
    budget -- including candidates the fidelity screens discarded -- so
    the number (and the search trajectory it gates) is identical with
    screening on or off.  ``exact_evals`` is the subset actually
    evaluated at full Monte Carlo fidelity; ``screen_evals`` the
    prefix-fidelity screenings; ``screened_out`` the candidates the
    prefix screen discarded.  ``analytic_evals`` / ``analytic_screened_out`` /
    ``analytic_accepted`` are the tier-0 analytic cascade's
    counterparts: candidates the moment-propagation tier evaluated,
    settled as clearly infeasible, or settled as clearly feasible --
    settled either way means no Monte Carlo was spent on them (zero
    when the analytic screen is off or never activated).
    ``pruned_candidates`` counts candidates whose tier-2 full-MC
    evaluation the dominance
    :class:`~repro.analysis.dominance.OpMask` replaced with the
    parent's evaluation (their makespan samples are provably bitwise
    the parent's); they consume budget and pass the screening tiers
    like every other candidate, so the trajectory is identical with
    the mask on or off.  The ``states_incremental`` / ``levels_skipped`` /
    ``levels_total`` / ``rows_recomputed`` / ``rows_total`` counters
    come from the backend's delta-propagation path (zero when the
    backend has no :class:`~repro.solver.cache.EvalContext`).

    On a sharded solve (``workers > 1``) the cache and delta counters
    aggregate the per-shard deltas each worker reports, so sharded and
    serial solves report comparable work totals; ``speculated`` /
    ``speculation_hits`` count the speculative child expansions the
    parent ran while shards evaluated, and how many were consumed by
    the next iteration's expansion (the rest were reconciled away).
    All *trajectory* counters (evaluations, expansions, the tier
    counters, ``screened_out``, ``pruned_candidates``) are parent-side
    decisions and therefore identical at any worker count.
    """

    best_state: PlanState
    best_eval: StateEval
    evaluations: int
    expansions: int
    feasible_found: bool
    trace: list[tuple[int, float]] = field(default_factory=list)
    cache_hits: int = 0    # makespan-cache hits during this solve
    cache_misses: int = 0  # makespan rows actually computed
    exact_evals: int = 0       # full-fidelity evaluations performed
    screen_evals: int = 0      # prefix-fidelity screenings performed
    screened_out: int = 0      # candidates discarded by the prefix screen
    analytic_evals: int = 0        # tier-0 analytic evaluations performed
    analytic_screened_out: int = 0  # candidates settled clearly infeasible (no MC)
    analytic_accepted: int = 0      # candidates settled clearly feasible (no MC)
    pruned_candidates: int = 0      # candidates settled by the dominance mask
    states_incremental: int = 0  # states evaluated via delta propagation
    levels_skipped: int = 0      # level recomputations the delta path avoided
    levels_total: int = 0        # level recomputations a full pass would do
    rows_recomputed: int = 0     # task rows actually re-propagated
    rows_total: int = 0          # task rows a full pass would propagate
    workers: int = 1             # shard count the solve actually ran with
    speculated: int = 0          # speculative child expansions performed
    speculation_hits: int = 0    # speculations consumed by the next iteration
    #: The cooperative watchdog fired: the wall-clock budget passed to
    #: :meth:`GenericSearch.solve` expired at an iteration boundary and
    #: the search returned its best incumbent instead of running the
    #: evaluation budget dry.  Always ``False`` on an unbounded solve.
    timed_out: bool = False

    def assignment_names(self, problem: CompiledProblem) -> dict[str, str]:
        """task id -> instance type name for the best state."""
        names = problem.catalog.type_names
        wf = problem.workflow
        return {tid: names[int(self.best_state.assignment[wf.index_of(tid)])] for tid in wf.task_ids}


class GenericSearch:
    """Transformation-driven search (paper Algorithm 2).

    Parameters
    ----------
    backend:
        Evaluation backend (vectorized "gpu" by default).
    children_per_state:
        Cap on transformation children generated per expansion; children
        are ranked by how much they are expected to help (critical-path
        time for Promote, cost saving for Demote).
    beam_width:
        Frontier cap -- the exploration/exploitation balance knob.
    max_evaluations:
        Total state-evaluation budget.
    expand_per_iter:
        How many beam states expand per iteration; their children are
        deduped and evaluated as one backend batch (block-per-state).
    incremental:
        Enable the incremental evaluation engine: parent finish-time
        frontiers are pinned before expansion (so children take the
        backend's delta-propagation path) and beam candidates are
        screened at prefix fidelity before full evaluation.  The
        returned plan is bit-identical either way (asserted by the test
        suite and the solver bench); ``False`` is the escape hatch.
    screen_samples / screen_margin:
        Two-stage fidelity knobs: candidates are first evaluated on the
        first ``screen_samples`` Monte Carlo draws (the same draws for
        every state -- common random numbers), and discarded when that
        screened deadline probability trails the requirement by more
        than ``screen_margin``.  The margin is deliberately generous
        (~5 binomial standard errors at the default prefix), so only
        candidates that are hopeless at full fidelity too are dropped;
        survivors -- and therefore the returned winner -- are always
        re-evaluated at full fidelity.
    analytic_screen / analytic_margin / analytic_accept_margin:
        Tier 0 of the three-tier cascade (analytic -> prefix MC ->
        full MC): before the prefix screen, candidates are evaluated by
        the moment-propagation
        :class:`~repro.solver.analytic_backend.AnalyticBackend` (no
        sampling at all) and classified **two-sided** on the
        standardized deadline slack ``z = (D - mean) / sd`` against the
        required quantile ``z_req = ndtri(required_probability)``:

        * ``z <= z_req - analytic_margin`` -- *settled infeasible*:
          clearly hopeless, no Monte Carlo spent;
        * ``z >= z_req + analytic_accept_margin`` -- *settled
          feasible* (*accepted*), no Monte Carlo spent;
        * otherwise -- *ambiguous*: falls through to the Monte Carlo
          tiers, which alone replicate sampling noise at the
          feasibility boundary.

        Settled candidates are not dropped: they join the frontier
        with a closed-form :class:`StateEval` (``source="analytic"``),
        so frontier membership -- and therefore the exploration
        structure -- is unchanged by the tier.  This is sound because
        the Eq.-1 cost is deterministic (mean times x prices):
        feasibility is the *only* thing sampling contributes to the
        search's decisions, so a settled state's incumbent updates and
        pruning tests are exact, and only the expansion *order among
        clearly-infeasible states* (a probability tie-break far from
        the boundary) rests on analytic numbers.

        Both margins are in standard-normal units, calibrated against
        the measured analytic-vs-MC classification boundary on full
        cascade trajectories over the workflow catalog: across 15
        searches (Montage-1/4/8 x 5 seeds) the worst MC-feasible state
        sat at ``z - z_req = -0.025``, ~10x inside the default reject
        margin of 0.3 (see BENCH_solver.json's ``analytic.accuracy``
        section and DESIGN.md §11).  ``analytic_sd_floor`` guards the
        z-space test on near-deterministic workflows: the
        classification sd is floored at that fraction of the analytic
        mean, so a margin of ``m`` always demands at least
        ``m * floor`` *relative* slack and a sub-percent Clark mean
        bias (makespan cv << 1%, e.g. LIGO-style chain ensembles)
        cannot masquerade as many sigmas -- and when even the batch
        *median* sd falls below the floor, the tier stands down for
        good rather than mirror degenerate 0/1 Monte Carlo
        probabilities with a continuous surrogate.  The same
        feasible-incumbent gate and dry-batch standdown as the prefix
        screen apply, and the returned plan is identical with the tier
        on or off (asserted by the test suite and the solver bench).
        The tier disables itself when the main backend is already
        analytic, when the problem has fewer than
        ``analytic_min_tasks`` tasks (the delta-MC path is already
        cheap there; the tier measured net-negative on Montage-1/4),
        and when ``required_probability`` is 0 or 1 (``z_req`` is not
        finite there -- e.g. a 100th-percentile deadline demands
        *every* sample meet it, which no normal surrogate can
        certify).
    """

    #: Consecutive no-reject batches after which a screening tier
    #: stands down (near convergence the passes are pure overhead).
    _DRY_SCREEN_LIMIT = 2

    def __init__(
        self,
        backend: EvaluationBackend | None = None,
        children_per_state: int = 12,
        beam_width: int = 24,
        max_evaluations: int = 4000,
        expand_per_iter: int = 8,
        incremental: bool = True,
        screen_samples: int = 32,
        screen_margin: float = 0.25,
        analytic_screen: bool = True,
        analytic_margin: float = 0.3,
        analytic_accept_margin: float = 1.5,
        analytic_sd_floor: float = 0.02,
        analytic_min_tasks: int = 256,
    ):
        if (
            children_per_state < 1
            or beam_width < 1
            or max_evaluations < 1
            or expand_per_iter < 1
        ):
            raise SolverError("search parameters must be >= 1")
        if screen_samples < 1:
            raise SolverError("screen_samples must be >= 1")
        if screen_margin < 0:
            raise SolverError("screen_margin must be >= 0")
        if analytic_margin < 0 or analytic_accept_margin < 0:
            raise SolverError("analytic margins must be >= 0")
        if analytic_sd_floor < 0:
            raise SolverError("analytic_sd_floor must be >= 0")
        if analytic_min_tasks < 0:
            raise SolverError("analytic_min_tasks must be >= 0")
        self.backend = backend or VectorizedBackend()
        self.children_per_state = children_per_state
        self.beam_width = beam_width
        self.max_evaluations = max_evaluations
        self.expand_per_iter = expand_per_iter
        self.incremental = bool(incremental)
        self.screen_samples = int(screen_samples)
        self.screen_margin = float(screen_margin)
        self.analytic_screen = bool(analytic_screen)
        self.analytic_margin = float(analytic_margin)
        self.analytic_accept_margin = float(analytic_accept_margin)
        self.analytic_sd_floor = float(analytic_sd_floor)
        self.analytic_min_tasks = int(analytic_min_tasks)
        self._analytic: EvaluationBackend | None = None

    # ------------------------------------------------------------------

    def solve(
        self,
        problem: CompiledProblem,
        initial: PlanState | None = None,
        seeds: Iterable[PlanState] = (),
        op_mask: OpMask | None = None,
        distributor: "ShardedEvaluator | None" = None,
        deadline_s: float | None = None,
    ) -> SearchResult:
        """Search for the cheapest plan meeting the deadline constraint.

        The initial state is all-cheapest (paper Fig. 5b); the uniform
        states of every type are evaluated as additional seeds, and
        callers may pass extra warm-start ``seeds`` (e.g. a heuristic
        baseline's plan, which the search then strictly improves).

        ``op_mask`` (see :func:`repro.analysis.dominance.compute_op_mask`)
        lets the dominance analysis settle provably futile exploration
        promotes without full evaluation: a masked child inherits its
        parent's feasibility/probability/mean makespan (provably
        bitwise what full evaluation would return) with its own exact
        Eq.-1 cost.  It consumes budget and passes the screening
        tiers like every other candidate -- only the tier-2 full-MC
        call is skipped -- so the returned plan is identical with the
        mask on or off (asserted by the property tests and the solver
        bench).

        ``distributor`` (a
        :class:`~repro.solver.shards.ShardedEvaluator`) shards each
        iteration's candidate batch across the engine's worker pool.
        Shards compute only pure per-candidate numbers; every decision
        stays here, so the returned plan is bit-identical to the serial
        path at any worker count (asserted by the shard test matrix and
        the solver bench's ``distributed.identical`` gate).  While
        shards run the tier-2 batch, the parent speculatively expands
        the current frontier's top states -- memoized child lists that
        the next iteration consumes if those parents survive the merge
        and discards otherwise.

        ``deadline_s`` is the cooperative watchdog: a wall-clock budget
        (seconds, measured on the monotonic clock from entry) checked at
        every iteration boundary.  When it expires the search stops
        expanding and returns its best incumbent with
        ``SearchResult.timed_out = True`` -- a hung or oversized solve
        degrades to best-effort instead of wedging its worker.  The
        check sits *between* iterations, never inside one, so a budget
        ample enough that it never fires leaves the trajectory (and the
        returned plan) bit-identical to the unbounded solve; an
        undersized budget still returns a valid (often feasible, thanks
        to the warm-start seeds) incumbent.  ``None`` disables it.
        """
        if deadline_s is not None and not deadline_s > 0:
            raise ValidationError(f"deadline_s must be > 0 seconds, got {deadline_s!r}")
        t_deadline = (
            time.monotonic() + float(deadline_s) if deadline_s is not None else None
        )
        n = problem.num_tasks
        k = problem.num_types
        if op_mask is not None and op_mask.sample_token != getattr(
            problem, "sample_token", None
        ):
            # A mask is only exact for the tensor generation it was
            # computed from (with_faults inflates the cells); a stale or
            # support-bound mask silently degrades to no pruning.
            op_mask = None
        start = initial or PlanState.uniform(n, 0)
        seed_states = [start] + [PlanState.uniform(n, t) for t in range(k)] + list(seeds)
        # Dedupe while preserving order.
        seen: set[bytes] = set()
        frontier_states: list[PlanState] = []
        for st in seed_states:
            if len(st) != n:
                raise SolverError(f"seed state has {len(st)} tasks, problem has {n}")
            if st.key not in seen:
                seen.add(st.key)
                frontier_states.append(st)

        cache = getattr(self.backend, "cache", None)
        hits0, misses0 = (cache.hits, cache.misses) if cache else (0, 0)
        delta0 = dict(getattr(self.backend, "delta_counters", None) or {})

        if distributor is not None and not distributor.is_serial:
            evals = distributor.eval_round(frontier_states)
        else:
            evals = self.backend.evaluate_batch(problem, frontier_states)
        evaluations = len(frontier_states)
        exact_evals = len(frontier_states)
        screen_evals = 0
        screened_out = 0
        analytic_evals = 0
        analytic_screened_out = 0
        analytic_accepted = 0
        pruned_candidates = 0
        best_state, best_eval = None, None
        for st, ev in zip(frontier_states, evals):
            if ev.better_than(best_eval):
                best_state, best_eval = st, ev
        assert best_state is not None and best_eval is not None

        frontier: list[tuple[PlanState, StateEval]] = list(zip(frontier_states, evals))
        trace = [(evaluations, best_eval.cost if best_eval.feasible else float("inf"))]
        expansions = 0
        dry_screens = 0
        dry_analytic = 0
        # Speculative expansion memo: (parent key, incumbent feasibility)
        # -> raw ``_children`` output, populated while shards evaluate
        # and consumed (or discarded) by the very next iteration.  The
        # key carries the only input ``_children`` reads from the
        # incumbent -- its feasibility flag -- so a hit is *provably*
        # what the fresh call would return; everything else it depends
        # on (problem, the parent's state and eval, the op mask) is
        # frozen for the solve.
        spec_memo: dict[tuple[bytes, bool], list[tuple[PlanState, bool]]] = {}
        speculated = 0
        speculation_hits = 0
        timed_out = False
        sort_key = self._frontier_key

        while frontier and evaluations < self.max_evaluations:
            if t_deadline is not None and time.monotonic() >= t_deadline:
                # Iteration-boundary check only: an in-flight batch is
                # never abandoned halfway, so every number already on
                # the frontier is exact and the incumbent is a plan the
                # unbounded search would also have visited.
                timed_out = True
                break
            # Stable total order: priority first, assignment bytes as
            # the tiebreak, so the ranking is a function of the
            # frontier *set* -- never of the insertion order a shard
            # merge (or any future refactor) might perturb.
            frontier.sort(key=sort_key)
            frontier = frontier[: self.beam_width]
            batch = frontier[: self.expand_per_iter]
            frontier = frontier[self.expand_per_iter :]
            dist = (
                distributor
                if distributor is not None and not distributor.is_serial
                else None
            )

            # Children of every expanded state, deduped against the
            # visited set, form one backend batch (block-per-state).
            # ``inherited`` holds the parent evaluation of children the
            # dominance mask settled (probability provably identical to
            # the parent's); the exact cost is filled in below.
            children: list[PlanState] = []
            inherited: dict[bytes, StateEval] = {}
            for state, ev in batch:
                expansions += 1
                kids = spec_memo.pop((state.key, best_eval.feasible), None)
                if kids is None:
                    kids = self._children(problem, state, ev, best_eval, op_mask)
                else:
                    speculation_hits += 1
                for c, dominated in kids:
                    if c.key not in seen:
                        seen.add(c.key)
                        children.append(c)
                        if dominated:
                            inherited[c.key] = ev
            # Reconcile: speculations whose parent did not make this
            # batch (pruned, outranked, or the incumbent's feasibility
            # flipped) are stale one-step lookahead -- discard them.
            spec_memo.clear()
            if not children:
                continue
            budget = self.max_evaluations - evaluations
            children = children[:budget]
            # Every candidate consumes budget whether or not the screen
            # later discards it -- keeping the budget trajectory (and so
            # the search decisions) identical with screening on or off.
            evaluations += len(children)

            # Dominance-flagged children flow through tiers 0 and 1
            # exactly like everyone else -- the screening batches (and
            # so every screening decision) are byte-identical with the
            # mask on or off -- and only skip the tier-2 full-MC call,
            # where their inherited evaluation is provably what the
            # backend would have returned.
            settled: dict[bytes, StateEval] = {}

            # Tier 0: two-sided analytic classification (no sampling).
            # The gating logic mirrors the prefix screen below -- only
            # active once a feasible incumbent exists -- with its own
            # dry-batch standdown.  Classification happens on the
            # standardized slack z (see the class docstring): the
            # calibrated margins absorb the independence/normal
            # approximation error, so a settled candidate's *feasible*
            # flag matches what full-fidelity MC would have concluded.
            # Settled candidates skip the Monte Carlo tiers entirely
            # but stay in the search: because the Eq.-1 cost is
            # deterministic, a settled StateEval drives the exact same
            # incumbent/prune decisions the MC one would, and only the
            # frontier ordering *among clearly-infeasible states* (a
            # probability tie-break) rests on the analytic numbers.
            survivors = list(children)

            # Distributed round A: tier-0 moments and tier-1 prefix
            # probabilities ride ONE sharded barrier.  Sound because
            # both are pure per-candidate values: the parent runs the
            # global classification below on the concatenated moments,
            # and subsets the precomputed probabilities to the tier-0
            # survivors -- bitwise the serial cascade's numbers.  The
            # tier-1 gate is monotone in batch size, so pre-computing
            # for the full batch can only over-compute (wasted shard
            # work), never under-compute: the gate is re-checked on the
            # actual survivor count before any probability is *used*.
            a_mean = a_var = None
            pre_probs: dict[bytes, float] | None = None
            if dist is not None:
                want_moments = dry_analytic < self._DRY_SCREEN_LIMIT and (
                    self._analytic_active(problem, best_eval, len(survivors))
                )
                want_screen = dry_screens < self._DRY_SCREEN_LIMIT and (
                    self._screen_active(problem, best_eval, len(survivors))
                )
                if want_moments or want_screen:
                    a_mean, a_var, probs_all = dist.screen_round(
                        survivors, want_moments, want_screen, self.screen_samples
                    )
                    if probs_all is not None:
                        pre_probs = {
                            c.key: float(p) for c, p in zip(survivors, probs_all)
                        }

            if dry_analytic < self._DRY_SCREEN_LIMIT and self._analytic_active(
                problem, best_eval, len(survivors)
            ):
                if a_mean is None:
                    a_mean, a_var = self._analytic_evaluator().makespan_moments(
                        problem, survivors
                    )
                sd = np.sqrt(np.maximum(a_var, 0.0))
                floor = self.analytic_sd_floor * np.abs(a_mean)
                if float(np.median(sd)) < float(np.median(floor)):
                    # Near-deterministic makespans (cv below the sd
                    # floor, e.g. long LIGO-style chains where variance
                    # averages out): MC deadline probabilities are
                    # degenerate 0/1 coin-edges there, so mirroring them
                    # from moments is hopeless and the tier's numbers
                    # would perturb the frontier's probability
                    # tie-breaks.  The tier stands down for good --
                    # makespan dispersion is a property of the workflow,
                    # not of the frontier position.
                    dry_analytic = self._DRY_SCREEN_LIMIT
                    decided = None
                else:
                    # The classification sd is floored at
                    # ``analytic_sd_floor`` of the mean, so margins
                    # always demand a minimum *relative* deadline slack
                    # on top of the sigma count.
                    np.maximum(sd, floor, out=sd)
                    z = (problem.deadline - a_mean) / np.maximum(sd, 1e-9)
                    analytic_evals += len(survivors)
                    z_req = float(ndtri(problem.required_probability))
                    decided = (z <= z_req - self.analytic_margin) | (
                        z >= z_req + self.analytic_accept_margin
                    )
                if decided is None:
                    pass
                elif decided.any():
                    idx = np.nonzero(decided)[0]
                    dec_states = [survivors[i] for i in idx]
                    costs = problem.expected_cost_batch(
                        np.stack([st.assignment for st in dec_states])
                    )
                    probs = ndtr(z[idx])
                    for j, (st, c) in enumerate(zip(dec_states, costs)):
                        feas = bool(z[idx[j]] >= z_req)
                        settled[st.key] = StateEval(
                            cost=float(c),
                            probability=float(probs[j]),
                            feasible=feas,
                            mean_makespan=float(a_mean[idx[j]]),
                            source="analytic",
                        )
                        if feas:
                            analytic_accepted += 1
                        else:
                            analytic_screened_out += 1
                    survivors = [
                        c for c, d in zip(survivors, decided) if not d
                    ]
                    dry_analytic = 0
                else:
                    dry_analytic += 1

            # Tier 1: prefix-fidelity screen (common random numbers)
            # over the ambiguous band.  Stands down after two
            # consecutive batches where it rejected nothing: near
            # convergence every candidate is a one-step edit of a
            # feasible state, so the prefix pass is pure overhead.  The
            # trigger counts rejections only -- deterministic, so the
            # trajectory stays run-to-run stable (and plan-identical:
            # screening never changes selections).
            if survivors and dry_screens < self._DRY_SCREEN_LIMIT and self._screen_active(
                problem, best_eval, len(survivors)
            ):
                if pre_probs is not None:
                    # Same per-state values the shards computed in round
                    # A, subset to the tier-0 survivors.
                    probs = np.array([pre_probs[c.key] for c in survivors])
                else:
                    probs = self.backend.screen_probabilities(
                        problem, survivors, self.screen_samples
                    )
                screen_evals += len(survivors)
                keep = probs + self.screen_margin >= problem.required_probability
                if not np.all(keep):
                    dropped = len(survivors)
                    survivors = [c for c, k in zip(survivors, keep) if k]
                    screened_out += dropped - len(survivors)
                    dry_screens = 0
                else:
                    dry_screens += 1

            # Tier 2: full-fidelity evaluation -- except for survivors
            # the dominance mask flagged, whose makespan samples are
            # provably bitwise the parent's: they settle with the
            # parent's probability/feasibility/mean makespan and their
            # own exact Eq.-1 cost (the same function the backends
            # use), bit-for-bit what ``evaluate_batch`` would return,
            # at zero propagation cost.
            to_eval = [c for c in survivors if c.key not in inherited]
            dominated_states = [c for c in survivors if c.key in inherited]
            if dominated_states:
                pruned_candidates += len(dominated_states)
                exact_costs = problem.expected_cost_batch(
                    np.stack([c.assignment for c in dominated_states])
                )
                for c, cost in zip(dominated_states, exact_costs):
                    pev = inherited[c.key]
                    settled[c.key] = StateEval(
                        cost=float(cost),
                        probability=pev.probability,
                        feasible=pev.feasible,
                        mean_makespan=pev.mean_makespan,
                        source=pev.source,
                    )
            if to_eval:
                if dist is not None:
                    # Distributed round B: shards pin their own chunk's
                    # parents and evaluate at full fidelity; meanwhile
                    # the parent speculatively expands the states most
                    # likely to top the next iteration's batch -- the
                    # current frontier's best under the same total
                    # order the next sort will use.  Child generation
                    # (critical paths, dominance masks) thus overlaps
                    # shard evaluation instead of serializing after it.
                    jobs = dist.submit_eval(
                        to_eval, [state for state, _ in batch], self.incremental
                    )
                    for st, sev in sorted(frontier, key=sort_key)[
                        : self.expand_per_iter
                    ]:
                        memo_key = (st.key, best_eval.feasible)
                        if memo_key not in spec_memo:
                            spec_memo[memo_key] = self._children(
                                problem, st, sev, best_eval, op_mask
                            )
                            speculated += 1
                    child_evals = dist.gather_eval(jobs)
                else:
                    # Pin the expanded parents' finish-time frontiers so
                    # the full evaluation takes the delta-propagation
                    # path.  Only parents that still have an MC-bound
                    # child are pinned -- a frontier is a performance
                    # hint, not a correctness requirement, and pinning a
                    # parent whose whole brood was settled above would
                    # be pure wasted propagation.
                    if self.incremental and hasattr(self.backend, "ensure_frontier"):
                        needed = {c.parent_key for c in to_eval}
                        for state, _ in batch:
                            if state.key in needed:
                                self.backend.ensure_frontier(problem, state)

                    child_evals = self.backend.evaluate_batch(problem, to_eval)
                exact_evals += len(to_eval)
                settled.update(
                    (cst.key, cev) for cst, cev in zip(to_eval, child_evals)
                )
            if not settled:
                continue

            # Merge in the *original* child order: incumbent updates on
            # exact-cost ties keep the first-seen winner, so the
            # iteration order must not depend on which tier settled a
            # candidate for the cascade to stay plan-identical.
            for cst in children:
                cev = settled.get(cst.key)
                if cev is None:
                    continue
                if cev.better_than(best_eval):
                    best_state, best_eval = cst, cev
                    trace.append(
                        (evaluations, best_eval.cost if best_eval.feasible else float("inf"))
                    )
                # Prune: a feasible child costlier than the incumbent can
                # only get worse by promoting further (paper Section 5.3).
                if best_eval.feasible and cev.cost >= best_eval.cost and cev.feasible:
                    continue
                frontier.append((cst, cev))

        # An incumbent settled by tier 0 carries analytic numbers; the
        # *choice* is already exact (feasibility guaranteed by the
        # calibrated accept margin, cost deterministic), but the
        # reported probability / mean makespan should come from the
        # full-fidelity referee like every other returned plan's.
        if best_eval.source == "analytic":
            best_eval = self.backend.evaluate_batch(problem, [best_state])[0]
            exact_evals += 1

        delta1 = dict(getattr(self.backend, "delta_counters", None) or {})
        # Worker-side work totals: the shards' caches saw the traffic
        # this process's caches would have seen serially, so fold their
        # reported deltas in -- sharded and serial solves then report
        # comparable totals instead of the sharded one reading ~zero.
        shard = dict(getattr(distributor, "counters", None) or {})
        return SearchResult(
            best_state=best_state,
            best_eval=best_eval,
            evaluations=evaluations,
            expansions=expansions,
            feasible_found=best_eval.feasible,
            trace=trace,
            cache_hits=((cache.hits - hits0) if cache else 0)
            + shard.get("makespan_hits", 0),
            cache_misses=((cache.misses - misses0) if cache else 0)
            + shard.get("makespan_misses", 0),
            exact_evals=exact_evals,
            screen_evals=screen_evals,
            screened_out=screened_out,
            analytic_evals=analytic_evals,
            analytic_screened_out=analytic_screened_out,
            analytic_accepted=analytic_accepted,
            pruned_candidates=pruned_candidates,
            states_incremental=delta1.get("states_incremental", 0)
            - delta0.get("states_incremental", 0)
            + shard.get("states_incremental", 0),
            levels_skipped=delta1.get("levels_skipped", 0)
            - delta0.get("levels_skipped", 0)
            + shard.get("levels_skipped", 0),
            levels_total=delta1.get("levels_total", 0)
            - delta0.get("levels_total", 0)
            + shard.get("levels_total", 0),
            rows_recomputed=delta1.get("rows_recomputed", 0)
            - delta0.get("rows_recomputed", 0)
            + shard.get("rows_recomputed", 0),
            rows_total=delta1.get("rows_total", 0)
            - delta0.get("rows_total", 0)
            + shard.get("rows_total", 0),
            workers=distributor.workers if distributor is not None else 1,
            speculated=speculated,
            speculation_hits=speculation_hits,
            timed_out=timed_out,
        )

    # ------------------------------------------------------------------

    def _analytic_evaluator(self):
        """The lazily built tier-0 analytic evaluator.

        Shares the main backend's :class:`~repro.solver.cache.ScratchPool`
        when it exposes one, so the cascade's tiers do not pin duplicate
        large buffers.
        """
        if self._analytic is None:
            from repro.solver.analytic_backend import AnalyticBackend

            self._analytic = AnalyticBackend(pool=getattr(self.backend, "pool", None))
        return self._analytic

    def analytic_stats(self) -> dict | None:
        """Tier-0 work counters, or ``None`` if the tier never ran."""
        if self._analytic is None:
            return None
        return self._analytic.analytic_stats()

    def _analytic_active(
        self, problem: CompiledProblem, best: StateEval | None, batch_size: int
    ) -> bool:
        """Whether the tier-0 analytic screen should run for this batch.

        Requires a feasible incumbent (same identity argument as the
        prefix screen -- and it guarantees the reliability constraint,
        which is assignment-free, is satisfiable, so an accepted
        candidate really is feasible), enough candidates to amortize
        the pass, a problem at or above the measured size crossover
        (``analytic_min_tasks``: below it the delta-propagation MC path
        is already so cheap that the extra analytic pass nets out
        negative -- montage-4/240 tasks measures ~0.9x, montage-8/680
        tasks 2-3x), a finite required quantile (``ndtri`` of 0 or 1 is
        infinite and nothing could be classified), and a main backend
        that is not itself analytic (the tier would just repeat the
        final evaluation).
        """
        return (
            self.analytic_screen
            and best is not None
            and best.feasible
            and batch_size >= 4
            and problem.num_tasks >= self.analytic_min_tasks
            and 0.0 < problem.required_probability < 1.0
            and getattr(self.backend, "name", "") != "analytic"
        )

    def _screen_active(
        self, problem: CompiledProblem, best: StateEval | None, batch_size: int
    ) -> bool:
        """Whether the prefix screen should run for this candidate batch.

        Requires a feasible incumbent (see the stage-1 comment in
        :meth:`solve`), a sample budget the prefix meaningfully
        undercuts, and enough candidates to amortize the extra kernel.
        """
        return (
            self.incremental
            and best is not None
            and best.feasible
            and problem.num_samples >= 2 * self.screen_samples
            and batch_size >= 4
        )

    @staticmethod
    def _priority(ev: StateEval) -> tuple:
        """Frontier ordering: feasible cheap states first, then near-feasible."""
        if ev.feasible:
            return (0, ev.cost, -ev.probability)
        return (1, -ev.probability, ev.cost)

    @classmethod
    def _frontier_key(cls, se: tuple[PlanState, StateEval]) -> tuple:
        """Total order for frontier ranking: priority, then assignment bytes.

        The byte tiebreak makes the ranking a function of the frontier
        *set*: two entries never compare equal (state keys are unique
        within a frontier), so the sorted order -- and with it every
        beam/expansion cut -- is independent of insertion order.  That
        is what lets the sharded merge concatenate chunk results in any
        grouping and still reproduce the serial beam exactly.
        """
        return (*cls._priority(se[1]), se[0].key)

    def _children(
        self,
        problem: CompiledProblem,
        state: PlanState,
        ev: StateEval,
        best: StateEval | None,
        op_mask: OpMask | None = None,
    ) -> list[tuple[PlanState, bool]]:
        """Transformation children: Promote when infeasible, Demote when feasible.

        Promote targets the tasks dominating the (mean-time) critical
        path under the current assignment; Demote targets off-path tasks
        with the largest cost saving.  Both directions are generated for
        feasible states so the search can trade off around the incumbent.

        Each child is returned with a *dominated* flag: ``True`` means
        the dominance mask proved the child's makespan samples are
        bitwise the parent's (only off-path exploration promotes
        qualify -- see
        :func:`repro.analysis.dominance.futile_offpath_promotes`), so
        the caller may settle it with the parent's evaluation.  The
        flag requires an exact (``"mc"``) parent evaluation: inheriting
        from an analytically settled parent would propagate tier-0
        approximations into numbers the mask promises to be exact.
        """
        n = problem.num_tasks
        idx = np.arange(n)
        mean_now = problem.mean_times[state.assignment, idx]
        cp_idx = _critical_indices(problem.parent_indices, mean_now)
        cp_set = set(cp_idx)

        children: list[tuple[PlanState, bool]] = []

        if not ev.feasible:
            # Promote critical tasks, largest time first.
            order = sorted(cp_idx, key=lambda i: -mean_now[i])
            for i in order[: self.children_per_state]:
                child = state.promote(i, problem.num_types)
                if child is not None:
                    children.append((child, False))
            # A couple of off-path promotes for exploration (the
            # per-sample critical path can differ from the mean one).
            futile = None
            if (
                op_mask is not None
                and ev.source == "mc"
                and op_mask.allows("promote")
                and problem.num_types > 1
            ):
                futile = futile_offpath_promotes(
                    op_mask, problem.parent_indices, state.assignment
                )
            off = sorted((i for i in range(n) if i not in cp_set), key=lambda i: -mean_now[i])
            for i in off[: max(2, self.children_per_state // 4)]:
                child = state.promote(i, problem.num_types)
                if child is not None:
                    children.append((child, futile is not None and bool(futile[i])))
            return children

        # Feasible: demote to cut cost; off-path tasks have slack.
        cost_now = problem.mean_times[state.assignment, idx] * problem.prices[state.assignment]
        demote_saving = np.full(n, -np.inf)
        for i in range(n):
            t = int(state.assignment[i])
            if t > 0:
                demote_saving[i] = cost_now[i] - (
                    problem.mean_times[t - 1, i] * problem.prices[t - 1]
                )
        off_order = sorted(
            (i for i in range(n) if i not in cp_set and demote_saving[i] > 0),
            key=lambda i: -demote_saving[i],
        )
        on_order = sorted(
            (i for i in cp_idx if demote_saving[i] > 0), key=lambda i: -demote_saving[i]
        )
        half = max(1, self.children_per_state // 2)
        for i in off_order[:half] + on_order[:half]:
            child = state.demote(i)
            if child is not None:
                children.append((child, False))
        # Keep one promote direction alive for robustness near the boundary.
        if cp_idx:
            i = max(cp_idx, key=lambda j: mean_now[j])
            child = state.promote(i, problem.num_types)
            if child is not None and (best is None or not best.feasible):
                children.append((child, False))
        return children


# ---------------------------------------------------------------------------
# A* search (enabled(astar) with user g/h scores)
# ---------------------------------------------------------------------------


@dataclass
class AStarResult:
    """Outcome of an A* run."""

    best_state: Hashable
    best_f: float
    expanded: int
    visited: int
    found_goal: bool


class AStarSearch:
    """Best-first A* over user-supplied scores.

    Generic over any hashable state; the paper's usage supplies
    ``cal_g_score``/``est_h_score`` from the WLog program (both mapped
    to estimated monetary cost in Example 1's extension, and to the
    ensemble Score metric in use case 2).
    """

    def __init__(self, max_expansions: int = 100_000):
        if max_expansions < 1:
            raise SolverError("max_expansions must be >= 1")
        self.max_expansions = max_expansions

    def solve(
        self,
        initial: Hashable,
        neighbors: Callable[[Hashable], Iterable[Hashable]],
        g_score: Callable[[Hashable], float],
        h_score: Callable[[Hashable], float],
        is_goal: Callable[[Hashable], bool],
    ) -> AStarResult:
        """Minimize ``g + h`` until the first goal state is popped.

        With an admissible ``h`` the first goal popped is optimal; with
        the paper's heuristic (h = current cost estimate) the search
        degrades gracefully to greedy best-first, which is the behaviour
        the paper exploits for pruning.
        """
        counter = itertools.count()
        open_heap: list[tuple[float, int, Hashable]] = []
        g0, h0 = g_score(initial), h_score(initial)
        heapq.heappush(open_heap, (g0 + h0, next(counter), initial))
        closed: set[Hashable] = set()
        best_state, best_f, found = initial, g0 + h0, is_goal(initial)
        expanded = 0

        while open_heap and expanded < self.max_expansions:
            f, _, state = heapq.heappop(open_heap)
            if state in closed:
                continue
            closed.add(state)
            expanded += 1
            if is_goal(state):
                return AStarResult(state, f, expanded, len(closed), True)
            for nxt in neighbors(state):
                if nxt in closed:
                    continue
                nf = g_score(nxt) + h_score(nxt)
                heapq.heappush(open_heap, (nf, next(counter), nxt))
                if nf < best_f:
                    best_state, best_f = nxt, nf

        # Budget exhausted.  The best tracked state may be a goal that
        # was pushed but never popped; report it as found rather than
        # freezing ``found`` at is_goal(initial).
        return AStarResult(
            best_state, best_f, expanded, len(closed), found or is_goal(best_state)
        )
