"""Search algorithms over provisioning-plan states.

:class:`GenericSearch` is the paper's Algorithm 2: traverse the state
space from an initial configuration, with state transitions driven by
the transformation operations (Promote toward feasibility, Demote
toward lower cost), evaluating every visited state with the compiled
probabilistic IR and keeping the best feasible solution.  As in the
paper, we choose *exploration* (frontier states expand independently
and are evaluated in batches -- the GPU-friendly layout) and prune
states that cannot improve on the incumbent (promoting only raises
cost, so any state already costlier than the best feasible solution is
dead -- the observation behind the paper's A* variant).

Expansion is *batched*: each iteration takes the top
``expand_per_iter`` beam states, generates all their transformation
children, dedupes them against the visited set, and evaluates the
union as **one** backend batch -- the paper's block-per-state GPU
layout, where every kernel launch carries many states.  Priority and
pruning semantics are those of the one-state-at-a-time loop; only the
evaluation granularity changes.

:class:`AStarSearch` is a generic best-first A* over user-supplied
``g``/``h`` scores, used when a WLog program declares
``enabled(astar)`` (workflow-ensemble admission in the paper).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

import numpy as np

from repro.common.errors import SolverError
from repro.solver.backends import CompiledProblem, EvaluationBackend, VectorizedBackend
from repro.solver.state import PlanState, StateEval


def _critical_indices(
    parent_indices: tuple[tuple[int, ...], ...], task_times: np.ndarray
) -> list[int]:
    """Dense-index critical path under per-task times.

    Semantically identical to
    :func:`repro.workflow.critical_path.critical_path` (same first-tie
    argmax over the same parent order, same topological end-tie rule)
    but operating on the compiled problem's index tuples -- this runs
    once per beam expansion, and the id<->index dict traffic of the
    workflow-level function dominated expansion cost on large DAGs.
    """
    times = task_times.tolist()
    n = len(times)
    if not n:
        return []
    finish = [0.0] * n
    best = [-1] * n
    for i, parents in enumerate(parent_indices):
        if parents:
            bp = parents[0]
            bf = finish[bp]
            for p in parents[1:]:
                f = finish[p]
                if f > bf:
                    bf = f
                    bp = p
            finish[i] = bf + times[i]
            best[i] = bp
        else:
            finish[i] = times[i]
    end = max(range(n), key=finish.__getitem__)
    path: list[int] = []
    cur = end
    while cur >= 0:
        path.append(cur)
        cur = best[cur]
    path.reverse()
    return path

__all__ = ["SearchResult", "GenericSearch", "AStarSearch", "AStarResult"]


@dataclass
class SearchResult:
    """Outcome of a generic search run.

    ``evaluations`` counts every candidate that consumed evaluation
    budget -- including candidates the fidelity screen discarded -- so
    the number (and the search trajectory it gates) is identical with
    screening on or off.  ``exact_evals`` is the subset actually
    evaluated at full Monte Carlo fidelity; ``screen_evals`` the
    prefix-fidelity screenings; ``screened_out`` the candidates the
    screen discarded.  The ``states_incremental`` / ``levels_skipped`` /
    ``levels_total`` / ``rows_recomputed`` / ``rows_total`` counters
    come from the backend's delta-propagation path (zero when the
    backend has no :class:`~repro.solver.cache.EvalContext`).
    """

    best_state: PlanState
    best_eval: StateEval
    evaluations: int
    expansions: int
    feasible_found: bool
    trace: list[tuple[int, float]] = field(default_factory=list)
    cache_hits: int = 0    # makespan-cache hits during this solve
    cache_misses: int = 0  # makespan rows actually computed
    exact_evals: int = 0       # full-fidelity evaluations performed
    screen_evals: int = 0      # prefix-fidelity screenings performed
    screened_out: int = 0      # candidates discarded by the screen
    states_incremental: int = 0  # states evaluated via delta propagation
    levels_skipped: int = 0      # level recomputations the delta path avoided
    levels_total: int = 0        # level recomputations a full pass would do
    rows_recomputed: int = 0     # task rows actually re-propagated
    rows_total: int = 0          # task rows a full pass would propagate

    def assignment_names(self, problem: CompiledProblem) -> dict[str, str]:
        """task id -> instance type name for the best state."""
        names = problem.catalog.type_names
        wf = problem.workflow
        return {tid: names[int(self.best_state.assignment[wf.index_of(tid)])] for tid in wf.task_ids}


class GenericSearch:
    """Transformation-driven search (paper Algorithm 2).

    Parameters
    ----------
    backend:
        Evaluation backend (vectorized "gpu" by default).
    children_per_state:
        Cap on transformation children generated per expansion; children
        are ranked by how much they are expected to help (critical-path
        time for Promote, cost saving for Demote).
    beam_width:
        Frontier cap -- the exploration/exploitation balance knob.
    max_evaluations:
        Total state-evaluation budget.
    expand_per_iter:
        How many beam states expand per iteration; their children are
        deduped and evaluated as one backend batch (block-per-state).
    incremental:
        Enable the incremental evaluation engine: parent finish-time
        frontiers are pinned before expansion (so children take the
        backend's delta-propagation path) and beam candidates are
        screened at prefix fidelity before full evaluation.  The
        returned plan is bit-identical either way (asserted by the test
        suite and the solver bench); ``False`` is the escape hatch.
    screen_samples / screen_margin:
        Two-stage fidelity knobs: candidates are first evaluated on the
        first ``screen_samples`` Monte Carlo draws (the same draws for
        every state -- common random numbers), and discarded when that
        screened deadline probability trails the requirement by more
        than ``screen_margin``.  The margin is deliberately generous
        (~5 binomial standard errors at the default prefix), so only
        candidates that are hopeless at full fidelity too are dropped;
        survivors -- and therefore the returned winner -- are always
        re-evaluated at full fidelity.
    """

    def __init__(
        self,
        backend: EvaluationBackend | None = None,
        children_per_state: int = 12,
        beam_width: int = 24,
        max_evaluations: int = 4000,
        expand_per_iter: int = 8,
        incremental: bool = True,
        screen_samples: int = 32,
        screen_margin: float = 0.25,
    ):
        if (
            children_per_state < 1
            or beam_width < 1
            or max_evaluations < 1
            or expand_per_iter < 1
        ):
            raise SolverError("search parameters must be >= 1")
        if screen_samples < 1:
            raise SolverError("screen_samples must be >= 1")
        if screen_margin < 0:
            raise SolverError("screen_margin must be >= 0")
        self.backend = backend or VectorizedBackend()
        self.children_per_state = children_per_state
        self.beam_width = beam_width
        self.max_evaluations = max_evaluations
        self.expand_per_iter = expand_per_iter
        self.incremental = bool(incremental)
        self.screen_samples = int(screen_samples)
        self.screen_margin = float(screen_margin)

    # ------------------------------------------------------------------

    def solve(
        self,
        problem: CompiledProblem,
        initial: PlanState | None = None,
        seeds: Iterable[PlanState] = (),
    ) -> SearchResult:
        """Search for the cheapest plan meeting the deadline constraint.

        The initial state is all-cheapest (paper Fig. 5b); the uniform
        states of every type are evaluated as additional seeds, and
        callers may pass extra warm-start ``seeds`` (e.g. a heuristic
        baseline's plan, which the search then strictly improves).
        """
        n = problem.num_tasks
        k = problem.num_types
        start = initial or PlanState.uniform(n, 0)
        seed_states = [start] + [PlanState.uniform(n, t) for t in range(k)] + list(seeds)
        # Dedupe while preserving order.
        seen: set[bytes] = set()
        frontier_states: list[PlanState] = []
        for st in seed_states:
            if len(st) != n:
                raise SolverError(f"seed state has {len(st)} tasks, problem has {n}")
            if st.key not in seen:
                seen.add(st.key)
                frontier_states.append(st)

        cache = getattr(self.backend, "cache", None)
        hits0, misses0 = (cache.hits, cache.misses) if cache else (0, 0)
        delta0 = dict(getattr(self.backend, "delta_counters", None) or {})

        evals = self.backend.evaluate_batch(problem, frontier_states)
        evaluations = len(frontier_states)
        exact_evals = len(frontier_states)
        screen_evals = 0
        screened_out = 0
        best_state, best_eval = None, None
        for st, ev in zip(frontier_states, evals):
            if ev.better_than(best_eval):
                best_state, best_eval = st, ev
        assert best_state is not None and best_eval is not None

        frontier: list[tuple[PlanState, StateEval]] = list(zip(frontier_states, evals))
        trace = [(evaluations, best_eval.cost if best_eval.feasible else float("inf"))]
        expansions = 0
        dry_screens = 0

        while frontier and evaluations < self.max_evaluations:
            frontier.sort(key=lambda se: self._priority(se[1]))
            frontier = frontier[: self.beam_width]
            batch = frontier[: self.expand_per_iter]
            frontier = frontier[self.expand_per_iter :]

            # Children of every expanded state, deduped against the
            # visited set, form one backend batch (block-per-state).
            children: list[PlanState] = []
            for state, ev in batch:
                expansions += 1
                for c in self._children(problem, state, ev, best_eval):
                    if c.key not in seen:
                        seen.add(c.key)
                        children.append(c)
            if not children:
                continue
            budget = self.max_evaluations - evaluations
            children = children[:budget]
            # Every candidate consumes budget whether or not the screen
            # later discards it -- keeping the budget trajectory (and so
            # the search decisions) identical with screening on or off.
            evaluations += len(children)

            # Stage 1: prefix-fidelity screen (common random numbers).
            # Only active once a feasible incumbent exists: an infeasible
            # candidate can never unseat a feasible best, so a candidate
            # screened as hopelessly infeasible can only have influenced
            # the frontier tail the beam was going to trim anyway.
            # The screen stands down after two consecutive batches where
            # it rejected nothing: near convergence every candidate is a
            # one-step edit of a feasible state, so the prefix pass is
            # pure overhead.  The trigger counts rejections only --
            # deterministic, so the trajectory stays run-to-run stable
            # (and plan-identical: screening never changes selections).
            survivors = children
            if dry_screens < 2 and self._screen_active(problem, best_eval, len(children)):
                probs = self.backend.screen_probabilities(
                    problem, children, self.screen_samples
                )
                screen_evals += len(children)
                keep = probs + self.screen_margin >= problem.required_probability
                if not np.all(keep):
                    survivors = [c for c, k in zip(children, keep) if k]
                    screened_out += len(children) - len(survivors)
                    dry_screens = 0
                else:
                    dry_screens += 1
            if not survivors:
                continue

            # Pin the expanded parents' finish-time frontiers so stage 2
            # evaluates the survivors through the delta-propagation path.
            if self.incremental and hasattr(self.backend, "ensure_frontier"):
                for state, _ in batch:
                    self.backend.ensure_frontier(problem, state)

            # Stage 2: full-fidelity evaluation of the survivors.
            child_evals = self.backend.evaluate_batch(problem, survivors)
            exact_evals += len(survivors)

            for cst, cev in zip(survivors, child_evals):
                if cev.better_than(best_eval):
                    best_state, best_eval = cst, cev
                    trace.append(
                        (evaluations, best_eval.cost if best_eval.feasible else float("inf"))
                    )
                # Prune: a feasible child costlier than the incumbent can
                # only get worse by promoting further (paper Section 5.3).
                if best_eval.feasible and cev.cost >= best_eval.cost and cev.feasible:
                    continue
                frontier.append((cst, cev))

        delta1 = dict(getattr(self.backend, "delta_counters", None) or {})
        return SearchResult(
            best_state=best_state,
            best_eval=best_eval,
            evaluations=evaluations,
            expansions=expansions,
            feasible_found=best_eval.feasible,
            trace=trace,
            cache_hits=(cache.hits - hits0) if cache else 0,
            cache_misses=(cache.misses - misses0) if cache else 0,
            exact_evals=exact_evals,
            screen_evals=screen_evals,
            screened_out=screened_out,
            states_incremental=delta1.get("states_incremental", 0)
            - delta0.get("states_incremental", 0),
            levels_skipped=delta1.get("levels_skipped", 0)
            - delta0.get("levels_skipped", 0),
            levels_total=delta1.get("levels_total", 0) - delta0.get("levels_total", 0),
            rows_recomputed=delta1.get("rows_recomputed", 0)
            - delta0.get("rows_recomputed", 0),
            rows_total=delta1.get("rows_total", 0) - delta0.get("rows_total", 0),
        )

    # ------------------------------------------------------------------

    def _screen_active(
        self, problem: CompiledProblem, best: StateEval | None, batch_size: int
    ) -> bool:
        """Whether the prefix screen should run for this candidate batch.

        Requires a feasible incumbent (see the stage-1 comment in
        :meth:`solve`), a sample budget the prefix meaningfully
        undercuts, and enough candidates to amortize the extra kernel.
        """
        return (
            self.incremental
            and best is not None
            and best.feasible
            and problem.num_samples >= 2 * self.screen_samples
            and batch_size >= 4
        )

    @staticmethod
    def _priority(ev: StateEval) -> tuple:
        """Frontier ordering: feasible cheap states first, then near-feasible."""
        if ev.feasible:
            return (0, ev.cost, -ev.probability)
        return (1, -ev.probability, ev.cost)

    def _children(
        self,
        problem: CompiledProblem,
        state: PlanState,
        ev: StateEval,
        best: StateEval | None,
    ) -> list[PlanState]:
        """Transformation children: Promote when infeasible, Demote when feasible.

        Promote targets the tasks dominating the (mean-time) critical
        path under the current assignment; Demote targets off-path tasks
        with the largest cost saving.  Both directions are generated for
        feasible states so the search can trade off around the incumbent.
        """
        n = problem.num_tasks
        idx = np.arange(n)
        mean_now = problem.mean_times[state.assignment, idx]
        cp_idx = _critical_indices(problem.parent_indices, mean_now)
        cp_set = set(cp_idx)

        children: list[PlanState] = []

        if not ev.feasible:
            # Promote critical tasks, largest time first.
            order = sorted(cp_idx, key=lambda i: -mean_now[i])
            for i in order[: self.children_per_state]:
                child = state.promote(i, problem.num_types)
                if child is not None:
                    children.append(child)
            # A couple of off-path promotes for exploration (the
            # per-sample critical path can differ from the mean one).
            off = sorted((i for i in range(n) if i not in cp_set), key=lambda i: -mean_now[i])
            for i in off[: max(2, self.children_per_state // 4)]:
                child = state.promote(i, problem.num_types)
                if child is not None:
                    children.append(child)
            return children

        # Feasible: demote to cut cost; off-path tasks have slack.
        cost_now = problem.mean_times[state.assignment, idx] * problem.prices[state.assignment]
        demote_saving = np.full(n, -np.inf)
        for i in range(n):
            t = int(state.assignment[i])
            if t > 0:
                demote_saving[i] = cost_now[i] - (
                    problem.mean_times[t - 1, i] * problem.prices[t - 1]
                )
        off_order = sorted(
            (i for i in range(n) if i not in cp_set and demote_saving[i] > 0),
            key=lambda i: -demote_saving[i],
        )
        on_order = sorted(
            (i for i in cp_idx if demote_saving[i] > 0), key=lambda i: -demote_saving[i]
        )
        half = max(1, self.children_per_state // 2)
        for i in off_order[:half] + on_order[:half]:
            child = state.demote(i)
            if child is not None:
                children.append(child)
        # Keep one promote direction alive for robustness near the boundary.
        if cp_idx:
            i = max(cp_idx, key=lambda j: mean_now[j])
            child = state.promote(i, problem.num_types)
            if child is not None and (best is None or not best.feasible):
                children.append(child)
        return children


# ---------------------------------------------------------------------------
# A* search (enabled(astar) with user g/h scores)
# ---------------------------------------------------------------------------


@dataclass
class AStarResult:
    """Outcome of an A* run."""

    best_state: Hashable
    best_f: float
    expanded: int
    visited: int
    found_goal: bool


class AStarSearch:
    """Best-first A* over user-supplied scores.

    Generic over any hashable state; the paper's usage supplies
    ``cal_g_score``/``est_h_score`` from the WLog program (both mapped
    to estimated monetary cost in Example 1's extension, and to the
    ensemble Score metric in use case 2).
    """

    def __init__(self, max_expansions: int = 100_000):
        if max_expansions < 1:
            raise SolverError("max_expansions must be >= 1")
        self.max_expansions = max_expansions

    def solve(
        self,
        initial: Hashable,
        neighbors: Callable[[Hashable], Iterable[Hashable]],
        g_score: Callable[[Hashable], float],
        h_score: Callable[[Hashable], float],
        is_goal: Callable[[Hashable], bool],
    ) -> AStarResult:
        """Minimize ``g + h`` until the first goal state is popped.

        With an admissible ``h`` the first goal popped is optimal; with
        the paper's heuristic (h = current cost estimate) the search
        degrades gracefully to greedy best-first, which is the behaviour
        the paper exploits for pruning.
        """
        counter = itertools.count()
        open_heap: list[tuple[float, int, Hashable]] = []
        g0, h0 = g_score(initial), h_score(initial)
        heapq.heappush(open_heap, (g0 + h0, next(counter), initial))
        closed: set[Hashable] = set()
        best_state, best_f, found = initial, g0 + h0, is_goal(initial)
        expanded = 0

        while open_heap and expanded < self.max_expansions:
            f, _, state = heapq.heappop(open_heap)
            if state in closed:
                continue
            closed.add(state)
            expanded += 1
            if is_goal(state):
                return AStarResult(state, f, expanded, len(closed), True)
            for nxt in neighbors(state):
                if nxt in closed:
                    continue
                nf = g_score(nxt) + h_score(nxt)
                heapq.heappush(open_heap, (nf, next(counter), nxt))
                if nf < best_f:
                    best_state, best_f = nxt, nf

        # Budget exhausted.  The best tracked state may be a goal that
        # was pushed but never popped; report it as found rather than
        # freezing ``found`` at is_goal(initial).
        return AStarResult(
            best_state, best_f, expanded, len(closed), found or is_goal(best_state)
        )
