"""Vectorized analytic evaluation: moment propagation instead of sampling.

The third evaluation strategy next to Monte Carlo (``gpu``/``cpu``) and
the per-task histogram algebra of :mod:`repro.solver.analytic`: a fully
array-programmed reimplementation of the same propagation that operates
directly on the compiled problem's tensors and
:class:`~repro.solver.levels.LevelSchedule`, so a whole candidate batch
is evaluated without touching a single Monte Carlo lane.

Representation
--------------
Each ``(type, task)`` cell is **calibrated once per sample tensor** into
a fixed ``Q``-point quantile grid -- the midpoint quantiles of the
cell's empirical sample row -- memoized by ``sample_token`` exactly like
the makespan caches, so :meth:`CompiledProblem.with_deadline` sweeps
reuse one calibration and :meth:`CompiledProblem.with_faults`
derivations (whose tensors are analytically inflated) calibrate their
own.  The propagation itself carries the grid's first two moments
``(mean, variance)`` per task -- the discretized-distribution analogue
of carrying S samples, with a 2-wide lane instead of an S-wide one.

Algebra
-------
Per level the kernel applies, to ``(n_L, B)`` moment blocks, the same
gather pattern as the Monte Carlo level kernel:

* ``+`` (a task after its ready time) adds means and -- assuming the
  task's own time independent of its ready time, which is exact under
  the runtime model's per-(task, type) bandwidth draws -- variances;
* ``max`` (a join over parents) uses Clark's Gaussian moment matching
  (C. E. Clark, *The greatest of a finite set of random variables*,
  1961): the mean and variance of ``max(X1, X2)`` for independent
  normals, applied pairwise down the parent columns.

Both steps treat joining paths as independent -- the same approximation
the histogram propagation makes.  Under positive path correlation
(shared ancestors) independence *overestimates* ``E[max]``, so the
analytic deadline probability is biased **low** at correlated joins: a
pessimistic screen that never flatters an infeasible plan at a join.
The normal surrogate can bias the upper tail the other way on skewed
sums, which is why the screening tier keeps a calibrated safety margin
and full-fidelity Monte Carlo remains the referee (see DESIGN.md §11
and the measured ``analytic`` error bounds in BENCH_solver.json).

The final makespan is exposed both as ``(mean, variance)`` --
``deadline_probabilities`` is a closed-form normal CDF -- and, through
:meth:`makespan_samples`, as a ``Q``-point quantile grid per state so
the backend satisfies the common backend interface.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np
from scipy.special import ndtr, ndtri

from repro.common.errors import SolverError
from repro.solver.backends import (
    CompiledProblem,
    EvaluationBackend,
    validated_assignments,
)
from repro.solver.cache import EvalContext, MakespanCache, ScratchPool
from repro.solver.state import StateEval

__all__ = ["AnalyticBackend", "clark_max"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)
#: Variance floor: keeps ``alpha = dm / sqrt(v1 + v2)`` finite for
#: deterministic operands.  At this scale ``ndtr`` saturates to 0/1 and
#: the Clark formulas collapse to the exact deterministic max.
_MIN_VAR = 1e-18


def clark_max(
    m1: np.ndarray, v1: np.ndarray, m2: np.ndarray, v2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Clark's moment-matched ``max`` of independent normals, elementwise.

    Returns the exact mean and variance of ``max(X1, X2)`` for
    independent ``X1 ~ N(m1, v1)``, ``X2 ~ N(m2, v2)``.  Degenerate
    operands need no branching: with both variances at the floor,
    ``alpha`` saturates ``ndtr`` and the result is the deterministic
    ``(max(m1, m2), 0)``.
    """
    a = np.sqrt(np.maximum(v1 + v2, _MIN_VAR))
    alpha = (m1 - m2) / a
    t = ndtr(alpha)  # P(X1 >= X2) under the normal model
    u = 1.0 - t
    phi = np.exp(-0.5 * alpha * alpha) / _SQRT_2PI
    mean = m1 * t + m2 * u + a * phi
    second = (m1 * m1 + v1) * t + (m2 * m2 + v2) * u + (m1 + m2) * a * phi
    var = second - mean * mean
    np.maximum(var, 0.0, out=var)
    return mean, var


def _clark_max_into(
    m1: np.ndarray,
    v1: np.ndarray,
    m2: np.ndarray,
    v2: np.ndarray,
    out_m: np.ndarray,
    out_v: np.ndarray,
    ws: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> None:
    """Allocation-free :func:`clark_max` into caller-owned buffers.

    The level kernel's hot loop runs one Clark step per parent column
    per level; at search batch sizes the ufunc temporaries dominate the
    kernel's runtime, so this variant threads every intermediate through
    three scratch buffers (``ws``) from the shared pool.  Inputs are
    read-only; results land in ``out_m`` / ``out_v`` (distinct from the
    inputs).
    """
    w0, w1, w2 = ws
    np.add(v1, v2, out=out_v)
    np.maximum(out_v, _MIN_VAR, out=out_v)
    np.sqrt(out_v, out=out_v)  # a = sd of the difference
    np.subtract(m1, m2, out=w0)
    np.divide(w0, out_v, out=w0)  # alpha
    ndtr(w0, out=w1)  # t = P(X1 >= X2)
    np.multiply(w0, w0, out=w0)
    np.multiply(w0, -0.5, out=w0)
    np.exp(w0, out=w0)
    np.multiply(w0, 1.0 / _SQRT_2PI, out=w0)  # phi(alpha)
    np.multiply(w0, out_v, out=w0)  # a * phi
    np.subtract(m1, m2, out=out_m)
    np.multiply(out_m, w1, out=out_m)
    np.add(out_m, m2, out=out_m)
    np.add(out_m, w0, out=out_m)  # mean = m2 + (m1 - m2) t + a phi
    np.multiply(m1, m1, out=out_v)
    np.add(out_v, v1, out=out_v)  # E[X1^2]
    np.multiply(m2, m2, out=w2)
    np.add(w2, v2, out=w2)  # E[X2^2]
    np.subtract(out_v, w2, out=out_v)
    np.multiply(out_v, w1, out=out_v)
    np.add(out_v, w2, out=out_v)  # E[X2^2] + (E[X1^2] - E[X2^2]) t
    np.add(m1, m2, out=w2)
    np.multiply(w2, w0, out=w2)
    np.add(out_v, w2, out=out_v)  # second moment
    np.multiply(out_m, out_m, out=w2)
    np.subtract(out_v, w2, out=out_v)
    np.maximum(out_v, 0.0, out=out_v)


def _clark_reduce(
    m: np.ndarray, v: np.ndarray, pool: ScratchPool
) -> tuple[np.ndarray, np.ndarray]:
    """Pairwise Clark ``max`` over axis 1 of ``(n, P, B)`` moment stacks.

    The big fan-in path (reduction tasks like Montage's ``mConcatFit``):
    a log2(P)-step tournament instead of a sequential column walk.
    Padded parent slots carry the zero sentinel moments; at reduction
    levels every real operand's mean dwarfs its standard deviation, so
    Clark against the sentinel degrades to the identity (error < 1e-6
    relative -- the same argument the MC kernel's sentinel row relies
    on, checked by the accuracy tests).

    ``m`` and ``v`` must be freshly gathered (writable, caller-owned):
    each tournament round runs through pooled scratch and writes its
    winners back into the stacks' leading columns, so the reduction
    allocates nothing beyond the pool's grow-only backing.
    """
    n, p, b = m.shape
    if p <= 1:
        return m[:, 0], v[:, 0]
    # One take per buffer at the first round's (largest) width; later
    # rounds slice the same backing rather than re-entering the pool.
    om_f = pool.take("an_red_m", (n, p // 2, b))
    ov_f = pool.take("an_red_v", (n, p // 2, b))
    w0_f = pool.take("an_red_w0", (n, p // 2, b))
    w1_f = pool.take("an_red_w1", (n, p // 2, b))
    w2_f = pool.take("an_red_w2", (n, p // 2, b))
    while p > 1:
        half = p // 2
        om = om_f[:, :half]
        ov = ov_f[:, :half]
        ws = (w0_f[:, :half], w1_f[:, :half], w2_f[:, :half])
        _clark_max_into(m[:, :half], v[:, :half], m[:, half : 2 * half], v[:, half : 2 * half],
                        om, ov, ws)
        m[:, :half] = om
        v[:, :half] = ov
        if p % 2:
            m[:, half] = m[:, p - 1]
            v[:, half] = v[:, p - 1]
            p = half + 1
        else:
            p = half
    return m[:, 0], v[:, 0]


class AnalyticBackend(EvaluationBackend):
    """Moment-propagation evaluation of plan states (no Monte Carlo).

    Usable standalone (``Deco(backend="analytic")``) and as tier 0 of
    the search's screening cascade.  ``pool`` shares the owning MC
    backend's :class:`~repro.solver.cache.ScratchPool` so the cascade's
    tiers do not pin duplicate large buffers; ``cache`` and
    ``eval_context`` are carried for interface parity -- analytic rows
    are quantile grids, not sample rows, so they must never be stored
    in a :class:`MakespanCache` shared with an MC backend (see
    :meth:`cached_makespan_samples`).
    """

    name = "analytic"

    def __init__(
        self,
        cache: MakespanCache | None = None,
        eval_context: EvalContext | None = None,
        quantile_points: int = 32,
        pool: ScratchPool | None = None,
        max_calibrations: int = 8,
    ):
        super().__init__(cache=cache, eval_context=eval_context)
        if quantile_points < 4:
            raise SolverError(f"quantile_points must be >= 4, got {quantile_points}")
        if max_calibrations < 1:
            raise SolverError(f"max_calibrations must be >= 1, got {max_calibrations}")
        self.quantile_points = int(quantile_points)
        self.pool = pool if pool is not None else ScratchPool()
        self.max_calibrations = int(max_calibrations)
        # sample_token -> ((K, N, Q) grids, (K*N,) means, (K*N,) variances)
        self._calibrations: OrderedDict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = OrderedDict()
        #: Monotone work counters (mirrors the MC backend's delta_counters).
        self.counters = {"states_analytic": 0, "calibrations": 0}

    # Calibration ------------------------------------------------------

    def _calibration(
        self, problem: CompiledProblem
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-tensor quantile grids + derived moments, LRU-memoized.

        Keyed by ``sample_token`` like every evaluation cache:
        ``with_deadline`` derivations share one calibration, while
        ``with_faults`` tensors (already analytically inflated by
        :meth:`FaultModel.inflate`) calibrate their own -- fault
        awareness flows into the analytic tier with no extra code.
        """
        token = problem.sample_token
        entry = self._calibrations.get(token)
        if entry is not None:
            self._calibrations.move_to_end(token)
            return entry
        q = self.quantile_points
        # Midpoint quantile levels: the mass centers of Q equal-probability
        # bins, so grid mean/variance estimate the row's moments without
        # the 0/1 endpoint blow-up of extreme order statistics.
        levels = (np.arange(q) + 0.5) / q
        grids = np.quantile(problem.tensor, levels, axis=1)  # (Q, K, N)
        grids = np.ascontiguousarray(grids.transpose(1, 2, 0))  # (K, N, Q)
        means = np.ascontiguousarray(grids.mean(axis=2).reshape(-1))  # (K*N,)
        variances = np.ascontiguousarray(grids.var(axis=2).reshape(-1))
        for arr in (grids, means, variances):
            arr.setflags(write=False)
        entry = (grids, means, variances)
        self._calibrations[token] = entry
        while len(self._calibrations) > self.max_calibrations:
            self._calibrations.popitem(last=False)
        self.counters["calibrations"] += 1
        return entry

    def adopt_calibration(
        self,
        token: int | None,
        grids: np.ndarray,
        means: np.ndarray,
        variances: np.ndarray,
    ) -> None:
        """Install a precomputed calibration under ``token``.

        The shared-memory tensor plane ships the parent's quantile grids
        alongside the problem tensors; a worker adopting them skips its
        own full-tensor ``np.quantile`` pass.  ``np.quantile`` is
        deterministic on identical input bytes, so adopted and locally
        computed calibrations are bit-identical -- adoption changes
        where the work happens, never the numbers.
        """
        if token in self._calibrations:
            self._calibrations.move_to_end(token)
            return
        self._calibrations[token] = (grids, means, variances)
        while len(self._calibrations) > self.max_calibrations:
            self._calibrations.popitem(last=False)

    # Propagation ------------------------------------------------------

    def makespan_moments(
        self, problem: CompiledProblem, states
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(B,)`` mean and variance of the makespan for B states.

        The analytic counterpart of the MC backend's fused level kernel:
        identical gather structure (level-contiguous permutation, column
        takes for narrow fan-in, one 3-D gather for wide), but each lane
        carries a (mean, variance) pair instead of S samples.
        """
        states = list(states)
        b = len(states)
        n = problem.num_tasks
        if b == 0:
            return np.zeros(0), np.zeros(0)
        if n == 0:
            return np.zeros(b), np.zeros(b)
        _, mean_rows, var_rows = self._calibration(problem)
        assign = validated_assignments(problem, states)  # (B, N)
        sched = problem.levels

        perm_assign = assign.T.take(sched.order, axis=0)  # (N, B)
        idx = perm_assign * n + sched.order[:, None]  # (N, B) flat (type, task) ids
        m_lanes = mean_rows[idx]  # (N, B)
        v_lanes = var_rows[idx]
        fm = self.pool.take("an_finish_m", (n + 1, b))
        fv = self.pool.take("an_finish_v", (n + 1, b))
        fm[n] = 0.0  # the sentinel moments every padded parent slot reads
        fv[n] = 0.0
        for (lo, hi), gather, columns in zip(
            sched.level_bounds, sched.level_parents, sched.level_columns
        ):
            if gather.shape[1] == 0:
                fm[lo:hi] = m_lanes[lo:hi]
                fv[lo:hi] = v_lanes[lo:hi]
            elif columns is not None:
                # Column 0 is always a real parent (levels > 0 hold only
                # tasks with >= 1 parent); later columns may pad with the
                # sentinel, where the ready moments pass through exactly
                # instead of Clark-maxing against N(0, 0).  All the
                # intermediates live in pooled double buffers: the Clark
                # steps here are the kernel's hot loop, and letting each
                # one churn ~10 ufunc temporaries would dominate the
                # per-state cost.
                w = hi - lo
                rm = self.pool.take("an_rm", (w, b))
                rv = self.pool.take("an_rv", (w, b))
                cm = self.pool.take("an_cm", (w, b))
                cv = self.pool.take("an_cv", (w, b))
                om = self.pool.take("an_om", (w, b))
                ov = self.pool.take("an_ov", (w, b))
                ws = (
                    self.pool.take("an_ws0", (w, b)),
                    self.pool.take("an_ws1", (w, b)),
                    self.pool.take("an_ws2", (w, b)),
                )
                np.take(fm, columns[0], axis=0, mode="clip", out=rm)
                np.take(fv, columns[0], axis=0, mode="clip", out=rv)
                for col in columns[1:]:
                    np.take(fm, col, axis=0, mode="clip", out=om)
                    np.take(fv, col, axis=0, mode="clip", out=ov)
                    _clark_max_into(rm, rv, om, ov, cm, cv, ws)
                    pad = col == n
                    if pad.any():
                        cm[pad] = rm[pad]
                        cv[pad] = rv[pad]
                    rm, cm = cm, rm
                    rv, cv = cv, rv
                np.add(rm, m_lanes[lo:hi], out=fm[lo:hi])
                np.add(rv, v_lanes[lo:hi], out=fv[lo:hi])
            else:
                # Big fan-in, few tasks: pairwise Clark tournament.
                rm, rv = _clark_reduce(fm[gather], fv[gather], self.pool)
                np.add(rm, m_lanes[lo:hi], out=fm[lo:hi])
                np.add(rv, v_lanes[lo:hi], out=fv[lo:hi])

        # Sink reduction: with non-negative task times every inner task's
        # finish is dominated by some sink's, so the makespan is the max
        # over sink rows alone (same argument as the delta kernel).
        sinks = sched.sink_slots
        mm = fm[sinks[0]].copy()
        mv = fv[sinks[0]].copy()
        for t in sinks[1:]:
            mm, mv = clark_max(mm, mv, fm[t], fv[t])
        self.counters["states_analytic"] += b
        return mm, mv

    def deadline_probabilities(self, problem: CompiledProblem, states) -> np.ndarray:
        """``(B,)`` analytic P(makespan <= deadline): a closed-form CDF."""
        return ndtr(self.deadline_z(problem, states))

    def deadline_z(self, problem: CompiledProblem, states) -> np.ndarray:
        """``(B,)`` standardized deadline slack ``(D - mean) / sd``.

        The screening cascade classifies in z-space rather than
        probability space: near certainty ``ndtr`` saturates (every
        comfortably feasible plan reads ``P = 1.0``), while z keeps
        discriminating -- a state at ``z = 4`` is far safer than one at
        ``z = 2`` even though both round to probability 1.  Margins on z
        are margins in units of the plan's own makespan spread.
        """
        mean, var = self.makespan_moments(problem, states)
        sd = np.sqrt(np.maximum(var, _MIN_VAR))
        return (problem.deadline - mean) / sd

    # Backend interface ------------------------------------------------

    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        """``(B, Q)`` makespan *quantile grids* (not Monte Carlo rows).

        The backend-interface view of the propagated distribution: row b
        holds the Q midpoint quantiles of the moment-matched normal, so
        ``row.mean()`` / ``np.mean(row <= d)`` estimate the same
        quantities sample rows do.  Q is ``quantile_points``, not the
        problem's S.
        """
        states = list(states)
        mean, var = self.makespan_moments(problem, states)
        if not states:
            return np.zeros((0, self.quantile_points))
        q = self.quantile_points
        z = ndtri((np.arange(q) + 0.5) / q)
        sd = np.sqrt(np.maximum(var, 0.0))
        return mean[:, None] + sd[:, None] * z[None, :]

    def cached_makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        """Uncached :meth:`makespan_samples`.

        Deliberately bypasses ``self.cache``: analytic rows are Q-point
        quantile grids and the cache may be shared with an MC backend
        whose rows are ``(S,)`` sample rows under the same
        ``(sample_token, state key)`` -- mixing them would corrupt both.
        The calibration memo already makes analytic re-evaluation cheap.
        """
        return self.makespan_samples(problem, list(states))

    def evaluate_batch(self, problem: CompiledProblem, states) -> list[StateEval]:
        """Closed-form evaluation: Eq. 1 cost + normal-CDF probability."""
        states = list(states)
        if not states:
            return []
        mean, var = self.makespan_moments(problem, states)
        assign = np.stack([st.assignment for st in states])
        costs = problem.expected_cost_batch(assign)
        sd = np.sqrt(np.maximum(var, _MIN_VAR))
        probs = ndtr((problem.deadline - mean) / sd)
        threshold = problem.required_probability - 1e-12
        reliable = (
            problem.plan_success_probability >= problem.reliability_required - 1e-12
        )
        return [
            StateEval(
                cost=float(costs[b]),
                probability=float(probs[b]),
                feasible=bool(probs[b] >= threshold) and reliable,
                mean_makespan=float(mean[b]),
                source="analytic",
            )
            for b in range(len(states))
        ]

    def screen_probabilities(
        self, problem: CompiledProblem, states, prefix: int
    ) -> np.ndarray:
        """Analytic probabilities regardless of ``prefix``.

        There is no cheaper fidelity below the analytic propagation, so
        the two-stage screen's prefix stage collapses onto the full
        analytic evaluation when this backend runs standalone.
        """
        return self.deadline_probabilities(problem, states)

    # Bookkeeping ------------------------------------------------------

    def analytic_stats(self) -> dict[str, int]:
        """A copy of the monotone analytic-work counters."""
        return dict(self.counters)

    def release_buffers(self) -> None:
        """Drop scratch buffers and calibrations (``Deco.clear_caches``)."""
        self.pool.clear()
        self._calibrations.clear()
