"""Topological level schedule: the level-parallel DAG layout.

The per-task propagation loop in the vectorized backend costs one
Python iteration (and a handful of NumPy calls) per *task*; for wide
DAGs like Montage that is hundreds of interpreter round-trips to do
what is structurally ~9 levels of independent work.  A
:class:`LevelSchedule` precomputes, once per compiled problem:

* ``parent_matrix`` -- an ``(N, Pmax)`` padded parent-index matrix with
  a ``-1`` sentinel, the flat form GPU kernels consume;
* a **level-contiguous permutation** of the task axis: tasks sorted by
  topological level (stably, so topological order is preserved inside a
  level), which turns every level's finish-time block into a contiguous
  row slice -- level updates become slice writes instead of scattered
  fancy assignments;
* per level, the parent row-gather indices in permuted coordinates.
  Narrow fan-in levels (``P <= 4``, the common wide-workflow case)
  store one contiguous index column per parent slot so propagation is
  P row-``take``s + running ``maximum``; big fan-in levels (reduction
  tasks like Montage's ``mConcatFit``) use one 3-D gather + ``max``.
  Padding slots point at a dedicated always-zero row, so "no parent"
  needs no branching.

:meth:`LevelSchedule.propagate` / :meth:`LevelSchedule.makespan` then
advance one whole level per step with fused gather + ``max``
reductions over every Monte Carlo lane at once, dropping the
Python-loop trip count from N (tasks) to D (depth).  The arithmetic
per task is identical to the per-task loop -- each finish time is
``max(parent finishes, 0) + task time`` over the same float64 operands,
and ``max`` is exact -- so results are bit-identical to the scalar
reference backend, which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.errors import SolverError

__all__ = ["LevelSchedule"]

# Fan-in at or below this uses per-parent-slot column takes; above it,
# a single 3-D gather + max reduction (big fan-in, few tasks).
_COLUMN_FANIN_MAX = 4


@dataclass(frozen=True)
class LevelSchedule:
    """Precomputed level structure of a task DAG (topological indices).

    Attributes
    ----------
    num_tasks:
        N, the number of tasks.
    parent_matrix:
        ``(N, Pmax)`` int64; row i holds task i's parent indices (in the
        original topological numbering) padded with ``-1`` -- the
        conventional sentinel of flattened DAG layouts.
    order:
        ``(N,)`` int64; ``order[r]`` is the original index of the task
        in permuted slot ``r``.  Tasks are sorted by level, stably, so
        each level occupies one contiguous slot range.
    level_bounds:
        Per level, the ``(lo, hi)`` permuted slot range.
    level_parents:
        Per level, an ``(n_L, P_L)`` int64 matrix of parent *slots*
        (permuted coordinates).  Padding entries are ``num_tasks``: they
        index the always-zero row the propagation appends, so a padded
        gather behaves like "no parent" without branching.
    level_columns:
        Per level: for fan-in <= 4, a tuple of P contiguous ``(n_L,)``
        parent-slot columns (the fast row-``take`` path); ``None`` for
        big fan-in levels, which use ``level_parents`` directly.
    depth:
        ``(N,)`` int64; ``depth[i]`` is task i's topological level in the
        *original* numbering -- the map from a dirty task to the first
        level the incremental evaluator must recompute.
    rank:
        ``(N,)`` int64; ``rank[i]`` is task i's permuted slot (inverse of
        ``order``).
    sink_slots:
        Permuted slots of tasks with no children.  Because every child's
        finish time is >= each parent's (task times are non-negative),
        the makespan equals the max over sink finishes alone -- the
        incremental path's cheap final reduction.
    """

    num_tasks: int
    parent_matrix: np.ndarray
    order: np.ndarray
    level_bounds: tuple[tuple[int, int], ...]
    level_parents: tuple[np.ndarray, ...]
    level_columns: tuple[tuple[np.ndarray, ...] | None, ...]
    depth: np.ndarray
    rank: np.ndarray
    sink_slots: np.ndarray

    @classmethod
    def from_parent_indices(
        cls, parent_indices: Sequence[Sequence[int]]
    ) -> "LevelSchedule":
        """Build the schedule from per-task parent lists (topological order)."""
        n = len(parent_indices)
        max_parents = max((len(p) for p in parent_indices), default=0)
        parent_matrix = np.full((n, max_parents), -1, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        for i, parents in enumerate(parent_indices):
            for j, p in enumerate(parents):
                if not 0 <= p < i:
                    raise SolverError(
                        f"parent index {p} of task {i} violates topological order"
                    )
                parent_matrix[i, j] = p
            if len(parents):
                depth[i] = 1 + max(depth[p] for p in parents)

        order = np.argsort(depth, kind="stable").astype(np.int64)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)

        num_levels = int(depth.max()) + 1 if n else 0
        bounds: list[tuple[int, int]] = []
        level_parents: list[np.ndarray] = []
        level_columns: list[tuple[np.ndarray, ...] | None] = []
        lo = 0
        for lv in range(num_levels):
            tasks = order[lo : lo + int((depth == lv).sum())]
            hi = lo + tasks.size
            width = max((len(parent_indices[i]) for i in tasks), default=0)
            gather = np.full((tasks.size, width), n, dtype=np.int64)
            for row, i in enumerate(tasks):
                for j, p in enumerate(parent_indices[i]):
                    gather[row, j] = rank[p]
            bounds.append((lo, hi))
            level_parents.append(gather)
            if 0 < width <= _COLUMN_FANIN_MAX:
                level_columns.append(
                    tuple(np.ascontiguousarray(gather[:, j]) for j in range(width))
                )
            else:
                level_columns.append(None)
            lo = hi

        is_parent = np.zeros(n, dtype=bool)
        for parents in parent_indices:
            for p in parents:
                is_parent[p] = True
        sink_slots = np.ascontiguousarray(rank[~is_parent])

        for arr in (parent_matrix, order, rank, depth, sink_slots, *level_parents):
            arr.setflags(write=False)
        return cls(
            num_tasks=n,
            parent_matrix=parent_matrix,
            order=order,
            level_bounds=tuple(bounds),
            level_parents=tuple(level_parents),
            level_columns=tuple(level_columns),
            depth=depth,
            rank=rank,
            sink_slots=sink_slots,
        )

    @classmethod
    def from_arrays(
        cls,
        *,
        parent_matrix: np.ndarray,
        order: np.ndarray,
        depth: np.ndarray,
        rank: np.ndarray,
        sink_slots: np.ndarray,
        level_bounds: Sequence[Sequence[int]],
        level_parents: Sequence[np.ndarray],
    ) -> "LevelSchedule":
        """Rebuild a schedule from its stored arrays (shared-memory attach).

        The big arrays are used as given (zero-copy when they alias a
        shared segment); only the small per-level ``level_columns``
        are re-derived -- they are contiguous column copies of
        ``level_parents``, so the rebuild is exact by construction.
        """
        level_columns: list[tuple[np.ndarray, ...] | None] = []
        for gather in level_parents:
            width = gather.shape[1]
            if 0 < width <= _COLUMN_FANIN_MAX:
                level_columns.append(
                    tuple(np.ascontiguousarray(gather[:, j]) for j in range(width))
                )
            else:
                level_columns.append(None)
        return cls(
            num_tasks=int(parent_matrix.shape[0]),
            parent_matrix=parent_matrix,
            order=order,
            level_bounds=tuple((int(lo), int(hi)) for lo, hi in level_bounds),
            level_parents=tuple(level_parents),
            level_columns=tuple(level_columns),
            depth=depth,
            rank=rank,
            sink_slots=sink_slots,
        )

    @property
    def num_levels(self) -> int:
        """D, the DAG depth (Python-loop trip count of the propagation)."""
        return len(self.level_bounds)

    @property
    def max_width(self) -> int:
        """Widest level -- the amount of per-iteration parallelism."""
        return max((hi - lo for lo, hi in self.level_bounds), default=0)

    def first_dirty_level(self, dirty_tasks: Sequence[int]) -> int:
        """The earliest level any of ``dirty_tasks`` (original indices) sits on.

        Levels strictly below it are untouched by a reassignment of the
        dirty tasks: a task's finish time depends only on its own
        execution time and its ancestors', all of which live on lower
        levels.  The incremental evaluator reuses the parent state's
        finish rows for every slot before this level's lower bound.
        """
        if len(dirty_tasks) == 0:
            raise SolverError("dirty task set must not be empty")
        return int(self.depth[np.asarray(dirty_tasks, dtype=np.int64)].min())

    def dirty_slots(self, dirty_tasks: Sequence[int]) -> np.ndarray:
        """Permuted slots of ``dirty_tasks`` (original indices)."""
        return self.rank[np.asarray(dirty_tasks, dtype=np.int64)]

    # ------------------------------------------------------------------

    def propagate_permuted(
        self,
        lanes_permuted: np.ndarray,
        finish: np.ndarray | None = None,
        scratch: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Finish times for a task-major ``(N, M)`` permuted lane matrix.

        ``lanes_permuted[r, l]`` is the execution time, in lane ``l``,
        of the task in permuted slot ``r`` (i.e. task ``order[r]``).
        Returns the ``(N+1, M)`` finish matrix in permuted coordinates
        (row N is the zero sentinel row).

        ``finish`` and ``scratch`` (two ``(max_width, M)`` float arrays)
        may be passed in to reuse allocations across calls -- the hot
        path through :class:`~repro.solver.backends.VectorizedBackend`
        does, which matters because fresh multi-hundred-KB allocations
        cost page faults every evaluation.
        """
        n = self.num_tasks
        num_lanes = lanes_permuted.shape[1]
        if lanes_permuted.shape[0] != n:
            raise SolverError(
                f"lanes have {lanes_permuted.shape[0]} tasks, schedule has {n}"
            )
        if finish is None:
            finish = np.empty((n + 1, num_lanes), dtype=lanes_permuted.dtype)
        finish[n] = 0.0  # the sentinel row every padded parent slot reads
        if scratch is None:
            w = self.max_width
            scratch = (
                np.empty((w, num_lanes), dtype=lanes_permuted.dtype),
                np.empty((w, num_lanes), dtype=lanes_permuted.dtype),
            )
        buf_a, buf_b = scratch
        for (lo, hi), gather, columns in zip(
            self.level_bounds, self.level_parents, self.level_columns
        ):
            if gather.shape[1] == 0:
                finish[lo:hi] = lanes_permuted[lo:hi]
            elif columns is not None:
                ready = buf_a[: hi - lo]
                np.take(finish, columns[0], axis=0, out=ready, mode="clip")
                for col in columns[1:]:
                    other = buf_b[: hi - lo]
                    np.take(finish, col, axis=0, out=other, mode="clip")
                    np.maximum(ready, other, out=ready)
                np.add(ready, lanes_permuted[lo:hi], out=finish[lo:hi])
            else:
                # Big fan-in, few tasks: one 3-D gather + max reduction.
                finish[lo:hi] = finish[gather].max(axis=1) + lanes_permuted[lo:hi]
        return finish

    def propagate(self, lanes: np.ndarray) -> np.ndarray:
        """Finish times for an ``(M, N)`` lane-major, original-order matrix.

        ``lanes[l, i]`` is the execution time of task ``i`` in lane
        ``l`` (one lane per state x Monte Carlo realization).  Returns
        the ``(M, N)`` finish-time matrix in the same layout; the
        makespan is its row max.  Reference entry point (tests, ad-hoc
        analysis); the backend hot path uses :meth:`propagate_permuted`
        with pooled buffers.
        """
        lanes = np.asarray(lanes)
        permuted = np.ascontiguousarray(lanes.T).take(self.order, axis=0)
        finish = self.propagate_permuted(permuted)
        n = self.num_tasks
        out = np.empty((n, lanes.shape[0]), dtype=finish.dtype)
        out[self.order] = finish[:n]
        return np.ascontiguousarray(out.T)

    def makespan(self, lanes_permuted: np.ndarray, **kwargs) -> np.ndarray:
        """Per-lane makespans ``(M,)`` for a permuted task-major matrix."""
        finish = self.propagate_permuted(lanes_permuted, **kwargs)
        return finish[: self.num_tasks].max(axis=0)
