"""Makespan memoization across repeated solves of one sample tensor.

Deadline sweeps (Fig. 8's percentile sweep, Fig. 11's tight/medium/
loose settings) re-solve the *same* compiled tensor many times -- only
the deadline/percentile of the feasibility test changes, not a single
makespan sample.  :class:`MakespanCache` exploits that: it memoizes the
``(S,)`` per-state makespan-sample rows keyed by
``(id(tensor), state.key)``, so any state the search revisits -- across
:meth:`CompiledProblem.with_deadline` derivations, warm-start ladders,
or whole re-solves -- costs one dictionary lookup instead of a DAG
propagation.

Keying by ``id(tensor)`` is safe because every cache entry holds a
reference to the tensor it was computed from: the id cannot be recycled
while the entry is alive.  The cache is a bounded LRU (rows evicted
oldest-first) so long-running services cannot grow without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.common.errors import SolverError

__all__ = ["MakespanCache"]


class MakespanCache:
    """Bounded LRU memo of per-state makespan sample rows.

    Parameters
    ----------
    max_entries:
        Cap on cached ``(S,)`` rows.  At the default 32768 rows and 150
        Monte Carlo samples this is ~40 MB -- sized for sweep workloads,
        far above any single search's state count.
    """

    def __init__(self, max_entries: int = 32_768):
        if max_entries < 1:
            raise SolverError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        # (tensor id, state key) -> (row, tensor ref).  The tensor ref
        # pins the id; the row is a read-only (S,) float array.
        self._rows: OrderedDict[tuple[int, bytes], tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._rows)

    def counters(self) -> dict[str, int]:
        """Current hit/miss/size counters (monotone except ``entries``)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._rows)}

    def clear(self) -> None:
        self._rows.clear()

    # ------------------------------------------------------------------

    def fetch(
        self,
        problem,
        states: Sequence,
        compute: Callable[[object, list], np.ndarray],
    ) -> np.ndarray:
        """``(B, S)`` makespan samples for ``states``, memoized.

        ``compute(problem, missing_states)`` is invoked once for the
        states not in the cache (a single backend batch); its rows are
        stored and the full batch is reassembled in input order.
        """
        token = id(problem.tensor)
        rows: list[np.ndarray | None] = [None] * len(states)
        missing: list = []
        missing_at: list[int] = []
        for i, state in enumerate(states):
            key = (token, state.key)
            entry = self._rows.get(key)
            if entry is None:
                missing.append(state)
                missing_at.append(i)
            else:
                self._rows.move_to_end(key)
                rows[i] = entry[0]
        self.hits += len(states) - len(missing)
        self.misses += len(missing)

        if missing:
            fresh = np.asarray(compute(problem, missing))
            for j, i in enumerate(missing_at):
                row = np.ascontiguousarray(fresh[j])
                row.setflags(write=False)
                rows[i] = row
                self._store(token, states[i].key, row, problem.tensor)
        return np.stack(rows)  # type: ignore[arg-type]

    def _store(
        self, token: int, key: bytes, row: np.ndarray, tensor: np.ndarray
    ) -> None:
        self._rows[(token, key)] = (row, tensor)
        self._rows.move_to_end((token, key))
        while len(self._rows) > self.max_entries:
            self._rows.popitem(last=False)
