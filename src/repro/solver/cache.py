"""Evaluation memoization: makespan rows and finish-time frontiers.

Deadline sweeps (Fig. 8's percentile sweep, Fig. 11's tight/medium/
loose settings) re-solve the *same* compiled tensor many times -- only
the deadline/percentile of the feasibility test changes, not a single
makespan sample.  :class:`MakespanCache` exploits that: it memoizes the
``(S,)`` per-state makespan-sample rows keyed by
``(problem.sample_token, state.key)``, so any state the search
revisits -- across :meth:`CompiledProblem.with_deadline` derivations,
warm-start ladders, or whole re-solves -- costs one dictionary lookup
instead of a DAG propagation.

``sample_token`` is a process-wide monotone generation counter stamped
onto every :class:`~repro.solver.backends.CompiledProblem` whose sample
tensor is fresh; derivations that *share* the tensor
(:meth:`with_deadline`) inherit the token, derivations that rewrite it
(:meth:`with_faults`, :meth:`with_sample_prefix`) get a new one.  Unlike
the earlier ``id(tensor)`` keys, tokens can never collide between two
live problems (ids recycle when the allocator reuses row space) and
need no object-pinning side channel to stay correct.

:class:`EvalContext` is the incremental evaluator's companion store: a
bounded LRU of per-state *finish-time frontiers* -- the permuted
``(N, S)`` finish matrix a full propagation produces -- keyed the same
way, plus a small memo of sample-prefix screening problems.  A child
state that differs from a cached parent in a known dirty set re-uses
the parent's frontier rows below the first dirty level and recomputes
only the affected suffix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.common.errors import SolverError

__all__ = ["MakespanCache", "EvalContext", "ScratchPool"]


class ScratchPool:
    """Grow-only pool of named scratch buffers.

    One backing array per ``(name, dtype)``: a request for any shape
    returns a view of it, growing the backing only when the product of
    the shape exceeds what is already held.  The alternating batch and
    sample shapes of screening, delta groups and analytic propagation
    therefore reuse one allocation per role instead of churning the
    allocator -- reallocating multi-hundred-KB arrays every evaluation
    costs page faults that dominate the kernels at search-sized
    batches.  Buffer contents are undefined on return, and callers must
    never hold two live buffers under the same name: the pool makes its
    owner non-reentrant (one evaluation at a time), matching a CUDA
    stream.  Backends in one search share a single pool, so the tiered
    evaluators do not each pin their own copies of the large buffers.
    """

    def __init__(self, max_buffers: int = 32):
        if max_buffers < 1:
            raise SolverError("max_buffers must be >= 1")
        self.max_buffers = int(max_buffers)
        self._bufs: dict[tuple[str, str], np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._bufs)

    def nbytes(self) -> int:
        """Approximate memory pinned by the pooled backings."""
        return sum(b.nbytes for b in self._bufs.values())

    def take(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A pooled scratch view of ``shape`` (contents undefined)."""
        dt = np.dtype(dtype)
        key = (name, dt.str)
        size = max(1, int(np.prod(shape)))
        backing = self._bufs.get(key)
        if backing is None or backing.size < size:
            if backing is None and len(self._bufs) >= self.max_buffers:
                self._bufs.clear()
            backing = np.empty(size, dtype=dt)
            self._bufs[key] = backing
        return backing[:size].reshape(shape)

    def clear(self) -> None:
        """Drop every pooled backing array."""
        self._bufs.clear()


class MakespanCache:
    """Bounded LRU memo of per-state makespan sample rows.

    Parameters
    ----------
    max_entries:
        Cap on cached ``(S,)`` rows.  At the default 32768 rows and 150
        Monte Carlo samples this is ~40 MB -- sized for sweep workloads,
        far above any single search's state count.
    """

    def __init__(self, max_entries: int = 32_768):
        if max_entries < 1:
            raise SolverError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        # (sample token, state key) -> read-only (S,) float row.
        self._rows: OrderedDict[tuple[int, bytes], np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._rows)

    def counters(self) -> dict[str, int]:
        """Current hit/miss/size counters (monotone except ``entries``)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._rows)}

    def nbytes(self) -> int:
        """Approximate memory held by the cached rows."""
        return sum(row.nbytes for row in self._rows.values())

    def clear(self) -> None:
        self._rows.clear()

    # ------------------------------------------------------------------

    def fetch(
        self,
        problem,
        states: Sequence,
        compute: Callable[[object, list], np.ndarray],
    ) -> np.ndarray:
        """``(B, S)`` makespan samples for ``states``, memoized.

        ``compute(problem, missing_states)`` is invoked once for the
        states not in the cache (a single backend batch); its rows are
        stored and the full batch is reassembled in input order.
        """
        token = problem.sample_token
        rows: list[np.ndarray | None] = [None] * len(states)
        missing: list = []
        missing_at: list[int] = []
        for i, state in enumerate(states):
            key = (token, state.key)
            row = self._rows.get(key)
            if row is None:
                missing.append(state)
                missing_at.append(i)
            else:
                self._rows.move_to_end(key)
                rows[i] = row
        self.hits += len(states) - len(missing)
        self.misses += len(missing)

        if missing:
            fresh = np.asarray(compute(problem, missing))
            for j, i in enumerate(missing_at):
                row = np.ascontiguousarray(fresh[j])
                row.setflags(write=False)
                rows[i] = row
                self._store(token, states[i].key, row)
        return np.stack(rows)  # type: ignore[arg-type]

    def _store(self, token: int, key: bytes, row: np.ndarray) -> None:
        self._rows[(token, key)] = row
        self._rows.move_to_end((token, key))
        while len(self._rows) > self.max_entries:
            self._rows.popitem(last=False)


class EvalContext:
    """Bounded LRU of per-state finish-time frontiers (incremental eval).

    One entry is the permuted ``(N, S)`` finish matrix of a fully
    propagated state -- ~1 MB for Montage-8 at 200 samples -- keyed by
    ``(sample_token, state key)`` exactly like :class:`MakespanCache`.
    The search stores frontiers only for the states it is about to
    expand (the beam tip), so the default capacity comfortably covers a
    solve while bounding long-running services.

    The context also memoizes the sample-prefix *screening problems*
    (one tiny derived :class:`CompiledProblem` per base token), so the
    two-stage fidelity screen does not re-slice the tensor every
    iteration.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise SolverError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._frontiers: OrderedDict[tuple[int, bytes], np.ndarray] = OrderedDict()
        # base sample_token -> (prefix length, derived problem)
        self._screen_problems: dict[int, tuple[int, object]] = {}

    def __len__(self) -> int:
        return len(self._frontiers)

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._frontiers)}

    def nbytes(self) -> int:
        """Approximate memory held by the cached frontiers."""
        return sum(f.nbytes for f in self._frontiers.values())

    def clear(self) -> None:
        self._frontiers.clear()
        self._screen_problems.clear()

    # ------------------------------------------------------------------

    def get(self, token: int, key: bytes) -> np.ndarray | None:
        """The cached ``(N, S)`` frontier, or ``None`` (counts hit/miss)."""
        frontier = self._frontiers.get((token, key))
        if frontier is None:
            self.misses += 1
            return None
        self._frontiers.move_to_end((token, key))
        self.hits += 1
        return frontier

    def peek(self, token: int, key: bytes) -> bool:
        """Whether a frontier is cached (no counter side effects)."""
        return (token, key) in self._frontiers

    def put(self, token: int, key: bytes, frontier: np.ndarray) -> None:
        frontier.setflags(write=False)
        self._frontiers[(token, key)] = frontier
        self._frontiers.move_to_end((token, key))
        while len(self._frontiers) > self.max_entries:
            self._frontiers.popitem(last=False)

    # ------------------------------------------------------------------

    def screen_problem(self, problem, prefix: int):
        """The memoized sample-prefix derivation of ``problem``.

        Rebuilt (and re-memoized) when the requested prefix changes;
        the derived problem carries its own fresh ``sample_token`` so
        screening rows never mix with full-fidelity cache entries.
        """
        entry = self._screen_problems.get(problem.sample_token)
        if entry is not None and entry[0] == prefix:
            return entry[1]
        derived = problem.with_sample_prefix(prefix)
        self._screen_problems[problem.sample_token] = (prefix, derived)
        return derived
