"""Provisioning-plan search (the paper's Section 5).

* :mod:`~repro.solver.state` -- the array-backed plan state the search
  walks (instance-type index per task).
* :mod:`~repro.solver.backends` -- state evaluation.  The *compiled
  problem* is the array form of the probabilistic IR (sampled task-time
  tensor + price vector + DAG structure); the **vectorized backend**
  evaluates it with NumPy array programs laid out exactly like the
  paper's CUDA kernels (one realization per "thread", one state per
  "block"), while the **scalar backend** is the single-thread CPU
  reference the paper compares against.  Both are cross-checked against
  the WLog interpreter.
* :mod:`~repro.solver.levels` -- the level-parallel DAG layout: padded
  parent-index matrices and topological levels, so finish-time
  propagation costs D (depth) fused array steps instead of N (tasks).
* :mod:`~repro.solver.cache` -- makespan memoization keyed by
  ``(tensor id, state key)``, reused across ``with_deadline`` sweeps.
* :mod:`~repro.solver.search` -- the generic transformation-driven
  search (paper Algorithm 2, batched frontier expansion) and A* search
  with user-supplied g/h scores.
"""

from repro.solver.state import PlanState, StateEval
from repro.solver.backends import (
    CompiledProblem,
    EvaluationBackend,
    VectorizedBackend,
    ScalarBackend,
    get_backend,
    BACKEND_NAMES,
)
from repro.solver.cache import MakespanCache, ScratchPool
from repro.solver.levels import LevelSchedule
from repro.solver.search import GenericSearch, AStarSearch, SearchResult
from repro.solver.analytic import analytic_makespan, analytic_deadline_probability
from repro.solver.analytic_backend import AnalyticBackend

__all__ = [
    "PlanState",
    "StateEval",
    "CompiledProblem",
    "EvaluationBackend",
    "VectorizedBackend",
    "ScalarBackend",
    "AnalyticBackend",
    "get_backend",
    "BACKEND_NAMES",
    "MakespanCache",
    "ScratchPool",
    "LevelSchedule",
    "GenericSearch",
    "AStarSearch",
    "SearchResult",
    "analytic_makespan",
    "analytic_deadline_probability",
]
