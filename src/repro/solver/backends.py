"""State-evaluation backends: the compiled probabilistic IR.

The paper evaluates each searched state with Monte Carlo inference over
the probabilistic IR, accelerated on a GPU: *one thread per Monte Carlo
iteration, one thread block per state* (Section 5.2-5.3).  cupy/numba
are unavailable in this environment, so the GPU role is played by a
**vectorized NumPy backend** with the identical parallel decomposition:

* the sampled task-time tensor ``(K types, S realizations, N tasks)``
  plus a task-major copy ``(K, N, S)`` are precomputed once per problem
  (the GPU's device-resident data); the task-major layout makes each
  (type, task) row a contiguous S-sample run, so lane gathering is a
  row ``take`` driven by an ``(N, B)`` index matrix (coalesced reads);
* evaluating a batch of B states propagates finish times through the
  DAG in **level-parallel** order: :class:`~repro.solver.levels.LevelSchedule`
  precomputes the topological levels, a padded parent-index matrix
  (``-1`` sentinel) and a level-contiguous task permutation at compile
  time; the backend's fused kernel then, per level, gathers the lane
  block, advances finish times with gather + ``max`` reductions over
  all ``B*S`` lanes, and folds the block max into the running makespan
  while the block is cache-hot -- D (depth) Python iterations instead
  of N (tasks), exactly the wavefront a CUDA kernel would launch per
  level;
* the deadline probability is a mean over the S axis (a block-level
  reduction in the CUDA version).

Backends optionally carry a :class:`~repro.solver.cache.MakespanCache`
that memoizes per-state makespan rows keyed by ``(sample_token, state
key)``, so deadline sweeps over :meth:`CompiledProblem.with_deadline`
derivations (same tensor, different feasibility test) reuse samples
instead of recomputing them, and a
:class:`~repro.solver.cache.EvalContext` of per-state finish-time
frontiers that powers **incremental (delta) evaluation**: a search
child that differs from its parent in a known dirty task set re-uses
the parent's cached frontier below the first dirty level and
recomputes only the affected suffix rows -- bit-identical to a full
propagation, at a fraction of the work (see
:meth:`VectorizedBackend.ensure_frontier`).

The **scalar backend** computes the same quantities with pure-Python
loops -- the single-thread CPU baseline of the paper's speedup numbers.
Both backends are bit-identical on the same problem (asserted in the
test suite) and statistically consistent with the WLog interpreter's
Algorithm-1 evaluation.  The pre-level-parallel per-task loop is kept
as ``VectorizedBackend(level_parallel=False)`` so the speedup of the
fast path stays measurable (see ``repro.bench.perf``).
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SolverError
from repro.common.units import SECONDS_PER_HOUR
from repro.cloud.instance_types import Catalog
from repro.faults.model import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.solver.cache import EvalContext, MakespanCache, ScratchPool
from repro.solver.levels import _COLUMN_FANIN_MAX, LevelSchedule
from repro.solver.state import PlanState, StateEval
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = [
    "CompiledProblem",
    "EvaluationBackend",
    "VectorizedBackend",
    "ScalarBackend",
    "get_backend",
    "validated_assignments",
    "BACKEND_NAMES",
]


#: Process-wide monotone generation counter for sample tensors.  Every
#: CompiledProblem with a *fresh* tensor gets the next token; tensor-
#: sharing derivations (``with_deadline``) inherit it.  Caches key on
#: the token instead of ``id(tensor)``, so two live problems can never
#: collide on recycled object ids and tensor identity is declared
#: explicitly rather than inferred from object aliasing.
_SAMPLE_TOKENS = itertools.count()


@dataclass(frozen=True)
class CompiledProblem:
    """The array form of a scheduling problem's probabilistic IR.

    Produced by :meth:`compile` from the same ingredients the WLog
    translation uses (workflow structure + runtime model histograms);
    the equivalence is covered by tests against the interpreter path.
    """

    workflow: Workflow
    catalog: Catalog
    mean_times: np.ndarray     # (K, N) mean task time per type
    tensor: np.ndarray         # (K, S, N) sampled task times
    prices: np.ndarray         # (K,) $/hour in the optimization region
    parent_indices: tuple[tuple[int, ...], ...]  # per task, topological order
    deadline: float            # seconds
    required_probability: float  # P(makespan <= deadline) must reach this
    levels: LevelSchedule | None = None  # level-parallel layout (built if absent)
    #: (K, N, S) task-major copy of ``tensor``: row ``[k, i]`` holds task
    #: i's samples contiguously, so the backend's lane gather is K*N
    #: contiguous row copies instead of element-wise flat indexing.
    tensor_taskmajor: np.ndarray | None = None
    #: Fault expansion (set by :meth:`with_faults`): the declared fault
    #: model + recovery policy whose analytic expectation inflated the
    #: tensor, and the minimum plan success probability (0.0 = no
    #: reliability constraint).
    faults: FaultModel | None = None
    recovery: RecoveryPolicy | None = None
    reliability_required: float = 0.0
    #: Sample-tensor generation token (see ``_SAMPLE_TOKENS``).  ``None``
    #: means "this tensor is fresh": ``__post_init__`` stamps the next
    #: monotone value.  Derivations that share the tensor pass their own
    #: token through; derivations that rewrite it leave it ``None``.
    sample_token: int | None = None

    def __post_init__(self):
        if self.levels is None:
            object.__setattr__(
                self, "levels", LevelSchedule.from_parent_indices(self.parent_indices)
            )
        if self.tensor_taskmajor is None:
            tm = np.ascontiguousarray(self.tensor.transpose(0, 2, 1))
            tm.setflags(write=False)
            object.__setattr__(self, "tensor_taskmajor", tm)
        if self.sample_token is None:
            object.__setattr__(self, "sample_token", next(_SAMPLE_TOKENS))

    @classmethod
    def compile(
        cls,
        workflow: Workflow,
        catalog: Catalog,
        deadline: float,
        percentile: float = 96.0,
        num_samples: int = 200,
        seed: int = 0,
        runtime_model: RuntimeModel | None = None,
        region: str | None = None,
    ) -> "CompiledProblem":
        if deadline <= 0:
            raise SolverError(f"deadline must be > 0, got {deadline}")
        if not 0 < percentile <= 100:
            raise SolverError(f"percentile must be in (0, 100], got {percentile}")
        model = runtime_model or RuntimeModel(catalog)
        tensor = model.sample_tensor(workflow, num_samples, seed=seed)
        mean_times = model.mean_matrix(workflow)
        prices = np.asarray(
            [catalog.price(name, region) for name in catalog.type_names], dtype=float
        )
        parents = tuple(
            tuple(workflow.index_of(p) for p in workflow.parents(tid))
            for tid in workflow.task_ids
        )
        return cls(
            workflow=workflow,
            catalog=catalog,
            mean_times=mean_times,
            tensor=tensor,
            prices=prices,
            parent_indices=parents,
            deadline=float(deadline),
            required_probability=percentile / 100.0,
            levels=LevelSchedule.from_parent_indices(parents),
        )

    @property
    def num_tasks(self) -> int:
        return self.tensor.shape[2]

    @property
    def num_types(self) -> int:
        return self.tensor.shape[0]

    @property
    def num_samples(self) -> int:
        return self.tensor.shape[1]

    def expected_cost(self, assignment: np.ndarray) -> float:
        """Paper Eq. 1-2: sum of mean task time x unit price (frac. hours)."""
        return float(self.expected_cost_batch(np.asarray(assignment)[None, :])[0])

    def expected_cost_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Eq. 1 cost for a ``(B, N)`` assignment matrix, one pass."""
        a = np.asarray(assignments, dtype=np.int64)
        idx = np.arange(self.num_tasks)
        per_task = self.mean_times[a, idx] * self.prices[a]
        return per_task.sum(axis=-1) / SECONDS_PER_HOUR

    def state_from_assignment(self, assignment) -> PlanState:
        """Build a :class:`PlanState` from a task->type-name mapping."""
        wf = self.workflow
        arr = np.empty(self.num_tasks, dtype=np.int16)
        for tid in wf.task_ids:
            arr[wf.index_of(tid)] = self.catalog.index_of(assignment[tid])
        return PlanState(arr)

    def with_deadline(self, deadline: float, percentile: float | None = None) -> "CompiledProblem":
        """Same problem under a different deadline requirement.

        Shares the sample tensor and level schedule, so makespan caches
        keyed on the tensor keep hitting across the derived problems.
        """
        return CompiledProblem(
            workflow=self.workflow,
            catalog=self.catalog,
            mean_times=self.mean_times,
            tensor=self.tensor,
            prices=self.prices,
            parent_indices=self.parent_indices,
            deadline=float(deadline),
            required_probability=(
                self.required_probability if percentile is None else percentile / 100.0
            ),
            levels=self.levels,
            tensor_taskmajor=self.tensor_taskmajor,
            faults=self.faults,
            recovery=self.recovery,
            reliability_required=self.reliability_required,
            sample_token=self.sample_token,
        )

    def with_sample_prefix(self, prefix: int) -> "CompiledProblem":
        """The same problem restricted to the first ``prefix`` samples.

        The screening stage of the two-stage fidelity search evaluates
        beam candidates against this derivation first: the prefix uses
        the *same* draws for every state (common random numbers, and a
        strict prefix of the full tensor), so screened comparisons are
        paired with the full-fidelity ones.  The derived problem gets a
        fresh ``sample_token`` -- screening rows must never mix with
        full-fidelity cache entries.
        """
        if not 0 < prefix <= self.num_samples:
            raise SolverError(
                f"sample prefix must be in [1, {self.num_samples}], got {prefix}"
            )
        if prefix == self.num_samples:
            return self
        tensor = np.ascontiguousarray(self.tensor[:, :prefix, :])
        tensor.setflags(write=False)
        return CompiledProblem(
            workflow=self.workflow,
            catalog=self.catalog,
            mean_times=self.mean_times,
            tensor=tensor,
            prices=self.prices,
            parent_indices=self.parent_indices,
            deadline=self.deadline,
            required_probability=self.required_probability,
            levels=self.levels,
            faults=self.faults,
            recovery=self.recovery,
            reliability_required=self.reliability_required,
        )

    def with_faults(
        self,
        faults: FaultModel,
        recovery: RecoveryPolicy | None = None,
        reliability_percentile: float | None = None,
    ) -> "CompiledProblem":
        """Fault-aware derivation: score plans *under* the fault model.

        Every sampled task time (and the Eq.-1 mean times, so expected
        cost bills the retries too) is inflated by the analytic
        expectation of :meth:`FaultModel.inflate` -- expected-retry
        geometric series over the retry budget, expected straggler
        slowdown, steady-state checkpoint overhead, first-order
        crash-rework.  ``reliability_percentile`` (e.g. ``99.0``)
        additionally requires the plan's analytic success probability
        to reach that level (the WLog ``reliability(P, R)``
        constraint); the retry budget ``R`` lives on ``recovery``.

        The inflated tensor is a *new* array, so makespan caches keep
        fault-aware and fault-oblivious rows separate by construction.
        """
        recovery = recovery if recovery is not None else RecoveryPolicy()
        if reliability_percentile is not None and not 0 < reliability_percentile <= 100:
            raise SolverError(
                f"reliability percentile must be in (0, 100], got {reliability_percentile}"
            )
        tensor = faults.inflate(self.tensor, recovery)
        tensor.setflags(write=False)
        return CompiledProblem(
            workflow=self.workflow,
            catalog=self.catalog,
            mean_times=faults.inflate(self.mean_times, recovery),
            tensor=tensor,
            prices=self.prices,
            parent_indices=self.parent_indices,
            deadline=self.deadline,
            required_probability=self.required_probability,
            levels=self.levels,
            faults=faults,
            recovery=recovery,
            reliability_required=(
                0.0 if reliability_percentile is None else reliability_percentile / 100.0
            ),
        )

    @property
    def plan_success_probability(self) -> float:
        """Analytic P(every task succeeds within its retry budget)."""
        if self.faults is None:
            return 1.0
        recovery = self.recovery if self.recovery is not None else RecoveryPolicy()
        return self.faults.plan_success_probability(self.num_tasks, recovery)


class EvaluationBackend(abc.ABC):
    """Evaluates batches of states against a compiled problem.

    ``cache`` (optional) memoizes per-state makespan rows across calls
    and across ``with_deadline``-derived problems; hit/miss counters
    live on the cache object.  ``eval_context`` (optional) holds the
    per-state finish-time frontiers and screening-problem memo the
    incremental evaluator needs; backends that cannot exploit it simply
    carry it.
    """

    name: str = "abstract"

    def __init__(
        self,
        cache: MakespanCache | None = None,
        eval_context: EvalContext | None = None,
    ):
        self.cache = cache
        self.eval_context = eval_context

    @abc.abstractmethod
    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        """``(B, S)`` per-realization makespans for B states."""

    def cached_makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        """Like :meth:`makespan_samples`, consulting the cache if present."""
        states = list(states)
        if self.cache is None:
            return self.makespan_samples(problem, states)
        return self.cache.fetch(problem, states, self.makespan_samples)

    def evaluate_batch(self, problem: CompiledProblem, states) -> list[StateEval]:
        """Full evaluation: Eq. 1 cost + P(makespan <= D) per state.

        Cost, probability and mean makespan are all computed as single
        array reductions over the batch (no per-state Python arithmetic).
        """
        states = list(states)
        if not states:
            return []
        makespans = self.cached_makespan_samples(problem, states)
        assign = np.stack([st.assignment for st in states])
        costs = problem.expected_cost_batch(assign)
        probs = np.mean(makespans <= problem.deadline, axis=1)
        means = makespans.mean(axis=1)
        threshold = problem.required_probability - 1e-12
        # The reliability constraint is analytic and assignment-free
        # (per-task success ** N), so it gates the whole problem at once.
        reliable = (
            problem.plan_success_probability >= problem.reliability_required - 1e-12
        )
        return [
            StateEval(
                cost=float(costs[b]),
                probability=float(probs[b]),
                feasible=bool(probs[b] >= threshold) and reliable,
                mean_makespan=float(means[b]),
            )
            for b in range(len(states))
        ]

    def evaluate(self, problem: CompiledProblem, state: PlanState) -> StateEval:
        return self.evaluate_batch(problem, [state])[0]

    def counters_snapshot(self) -> dict[str, int]:
        """Flat monotone work counters, for cross-process aggregation.

        Beam-shard workers diff this snapshot around each job and ship
        the delta back, so a sharded solve can report cache and
        delta-propagation totals comparable to a serial one's
        (``SearchResult`` / ``Deco.cache_stats``).  Only monotone
        counters belong here -- sizes like ``entries`` do not aggregate
        across processes.
        """
        snap: dict[str, int] = {}
        if self.cache is not None:
            c = self.cache.counters()
            snap["makespan_hits"] = c["hits"]
            snap["makespan_misses"] = c["misses"]
        if self.eval_context is not None:
            c = self.eval_context.counters()
            snap["frontier_hits"] = c["hits"]
            snap["frontier_misses"] = c["misses"]
        for key, value in (getattr(self, "delta_counters", None) or {}).items():
            snap[key] = value
        return snap

    def screen_problem(self, problem: CompiledProblem, prefix: int) -> CompiledProblem:
        """The (memoized, when possible) sample-prefix screening problem."""
        if self.eval_context is not None:
            return self.eval_context.screen_problem(problem, prefix)
        return problem.with_sample_prefix(prefix)

    def screen_probabilities(
        self, problem: CompiledProblem, states, prefix: int
    ) -> np.ndarray:
        """``(B,)`` deadline probabilities from the first ``prefix`` samples.

        The cheap first stage of two-stage fidelity screening: same
        draws for every state (a strict prefix of the full tensor), no
        makespan-cache involvement -- screened states are evaluated at
        most once at this fidelity.
        """
        sp = self.screen_problem(problem, prefix)
        makespans = self.makespan_samples(sp, list(states))
        return np.mean(makespans <= sp.deadline, axis=1)


def validated_assignments(problem: CompiledProblem, states) -> np.ndarray:
    """Stack states into a validated ``(B, N)`` int64 assignment matrix.

    Shared by every array backend (vectorized MC and analytic): raises
    :class:`SolverError` when a state's length or type indices do not
    fit the compiled problem, so the kernels can skip bounds checks.
    """
    assign = np.stack([st.assignment for st in states]).astype(np.int64)  # (B, N)
    if assign.shape[1] != problem.num_tasks:
        raise SolverError(
            f"state has {assign.shape[1]} tasks, problem has {problem.num_tasks}"
        )
    if assign.min(initial=0) < 0:
        raise SolverError("state references a negative type index")
    if assign.max(initial=0) >= problem.num_types:
        raise SolverError("state references a type index outside the catalog")
    return assign


def _propagate_taskloop(lanes: np.ndarray, parent_indices) -> np.ndarray:
    """Pre-level-parallel reference: one Python iteration per task.

    Kept as the "before" of the level-parallel speedup measurement
    (``repro.bench.perf.solver_speedup``); numerically identical.
    """
    finish = np.empty_like(lanes)
    for i, parents in enumerate(parent_indices):
        if parents:
            ready = finish[:, parents[0]]
            for p in parents[1:]:
                ready = np.maximum(ready, finish[:, p])
            finish[:, i] = ready + lanes[:, i]
        else:
            finish[:, i] = lanes[:, i]
    return finish


class VectorizedBackend(EvaluationBackend):
    """The "GPU" backend: batched array evaluation (see module docstring).

    The fast path works in *permuted task-major* layout: one flat-index
    ``take`` gathers the ``(N, B*S)`` lane matrix with tasks already in
    level-contiguous order, then :meth:`LevelSchedule.propagate_permuted`
    advances one level per step.  Large intermediates (index matrix,
    lane matrix, finish matrix, level scratch) come from a small
    per-backend buffer pool -- reallocating multi-hundred-KB arrays
    every evaluation costs page faults that dominate the kernel at
    search-sized batches.  The pool makes the backend non-reentrant
    (one evaluation at a time per instance), matching a CUDA stream.

    ``level_parallel=False`` selects the pre-optimization per-task
    propagation loop -- same numbers, N instead of D Python iterations --
    used by the benchmarks as the speedup baseline of the fast path.

    With an ``eval_context``, :meth:`makespan_samples` takes the
    **delta-propagation** path for every state whose parent frontier is
    cached: copy the parent's finish rows, recompute only the dirty
    tasks' rows and their (transitive) descendants level by level, and
    reduce the makespan over the sink rows alone.  Every recomputed row
    applies the identical gather + ``max`` + ``add`` arithmetic to the
    identical float64 operands, so the result is bit-identical to the
    full fused kernel (asserted in the test suite).  ``delta_counters``
    tracks how much work the short-circuit saved.
    """

    name = "gpu"

    _POOL_MAX = 32  # distinct (name, dtype) buffers kept alive

    def __init__(
        self,
        cache: MakespanCache | None = None,
        level_parallel: bool = True,
        eval_context: EvalContext | None = None,
        pool: ScratchPool | None = None,
    ):
        super().__init__(cache=cache, eval_context=eval_context)
        self.level_parallel = bool(level_parallel)
        #: Shared grow-only scratch pool (see
        #: :class:`~repro.solver.cache.ScratchPool`); the analytic
        #: screening tier reuses the same pool during a search.
        self.pool = pool if pool is not None else ScratchPool(self._POOL_MAX)
        #: Monotone work counters of the incremental path: states routed
        #: through delta vs full propagation, and how many level / row
        #: recomputations the delta route skipped.
        self.delta_counters = {
            "states_incremental": 0,
            "states_full": 0,
            "levels_skipped": 0,
            "levels_total": 0,
            "rows_recomputed": 0,
            "rows_total": 0,
        }

    def _buf(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A pooled scratch view (contents undefined; see ScratchPool)."""
        return self.pool.take(name, shape, dtype)

    def _validated_assignments(self, problem: CompiledProblem, states) -> np.ndarray:
        return validated_assignments(problem, states)

    def makespan_samples(
        self, problem: CompiledProblem, states, incremental: bool = True
    ) -> np.ndarray:
        states = list(states)
        b = len(states)
        n = problem.num_tasks
        s = problem.num_samples
        if not self.level_parallel:
            # Pre-level-parallel reference path, kept measurable.
            assign = self._validated_assignments(problem, states)
            times = problem.tensor[assign, :, np.arange(n)[None, :]]  # (B, N, S)
            lanes = times.transpose(0, 2, 1).reshape(b * s, n)  # (B*S, N)
            finish = _propagate_taskloop(lanes, problem.parent_indices)
            return finish.max(axis=1).reshape(b, s)
        if n == 0:
            return np.zeros((b, s))

        ctx = self.eval_context
        if not incremental or ctx is None:
            return self._makespan_full(problem, states)

        # Incremental partition: states whose parent frontier is cached
        # take the delta path -- grouped by parent, so siblings share
        # one batched sparse kernel -- and the rest share one fused
        # full-batch kernel.
        out = np.empty((b, s))
        full_states: list[PlanState] = []
        full_at: list[int] = []
        groups: dict[bytes, tuple[np.ndarray, list[int]]] = {}
        for i, st in enumerate(states):
            frontier = None
            if st.parent_key is not None and st.dirty:
                frontier = ctx.get(problem.sample_token, st.parent_key)
            if frontier is None:
                full_states.append(st)
                full_at.append(i)
            else:
                groups.setdefault(st.parent_key, (frontier, []))[1].append(i)
        for frontier, idxs in groups.values():
            out[np.asarray(idxs)] = self._makespan_delta_group(
                problem, [states[i] for i in idxs], frontier
            )
        if full_states:
            out[np.asarray(full_at)] = self._makespan_full(problem, full_states)
            sched = problem.levels
            self.delta_counters["states_full"] += len(full_states)
            self.delta_counters["levels_total"] += len(full_states) * sched.num_levels
            self.delta_counters["rows_total"] += len(full_states) * n
        return out

    def _makespan_full(self, problem: CompiledProblem, states) -> np.ndarray:
        """The fused full-batch level kernel (every level, every row)."""
        b = len(states)
        n = problem.num_tasks
        s = problem.num_samples
        assign = self._validated_assignments(problem, states)
        sched = problem.levels

        # Fused level kernel over the task-major tensor copy: per level,
        # gather the lane block as contiguous row takes, propagate finish
        # times, and fold the block max into the running makespan -- each
        # block is consumed while still cache-hot instead of being
        # re-read cold in later passes.  lanes[r, b*S + s'] =
        # tensor[assign[b, order[r]], s', order[r]], tasks level-permuted.
        # (LevelSchedule.propagate_permuted is the unfused reference; the
        # test suite asserts both agree bit-for-bit with ScalarBackend.)
        m = b * s
        rows = problem.tensor_taskmajor.reshape(problem.num_types * n, s)
        perm_assign = assign.T.take(sched.order, axis=0)  # (N, B)
        idx = perm_assign * n + sched.order[:, None]  # (N, B) row ids
        w = sched.max_width
        finish = self._buf("finish", (n + 1, m))
        finish[n] = 0.0  # the sentinel row every padded parent slot reads
        lanes = self._buf("lanes", (w, m))
        buf_a = self._buf("scratch_a", (w, m))
        buf_b = self._buf("scratch_b", (w, m))
        out = np.empty((b, s))  # fresh: callers may hold on to the result
        makespan = out.reshape(m)
        for lv, ((lo, hi), gather, columns) in enumerate(
            zip(sched.level_bounds, sched.level_parents, sched.level_columns)
        ):
            k = hi - lo
            ln = lanes[:k]
            # Indices come from validated assignments; skip bounds checks.
            np.take(
                rows, idx[lo:hi].reshape(k * b), axis=0,
                out=ln.reshape(k * b, s), mode="clip",
            )
            dst = finish[lo:hi]
            if gather.shape[1] == 0:
                dst[...] = ln
            elif columns is not None:
                ready = buf_a[:k]
                np.take(finish, columns[0], axis=0, out=ready, mode="clip")
                for col in columns[1:]:
                    other = buf_b[:k]
                    np.take(finish, col, axis=0, out=other, mode="clip")
                    np.maximum(ready, other, out=ready)
                np.add(ready, ln, out=dst)
            else:
                # Big fan-in, few tasks: one 3-D gather + max reduction.
                np.add(finish[gather].max(axis=1), ln, out=dst)
            if lv == 0:
                dst.max(axis=0, out=makespan)
            else:
                np.maximum(makespan, dst.max(axis=0), out=makespan)
        return out

    # Incremental (delta) evaluation ------------------------------------

    def _makespan_delta_group(
        self,
        problem: CompiledProblem,
        states: list[PlanState],
        parent_frontier: np.ndarray,
    ) -> np.ndarray:
        """``(B', S)`` makespans for siblings of one cached parent frontier.

        The batched delta kernel: all B' states share ``parent_frontier``
        (their common parent's permuted ``(N, S)`` finish matrix) and
        each differs in its own dirty task set.  Work is organized over
        *(slot, child)* pairs -- exactly the finish rows whose value can
        differ from the parent's -- so each level is a handful of fused
        flat-index gathers over all affected pairs at once, instead of a
        Python loop per child.  Gather sources read the shared parent
        frontier directly, with a sparse fix-up for the (few) sources a
        child has itself recomputed, so unchanged rows are never copied
        anywhere; the final reduction runs over the sink rows alone.
        Every recomputed pair applies the identical gather + ``max`` +
        ``add`` arithmetic to the identical float64 operands as the full
        fused kernel, so results are bit-identical (asserted by the
        tests).
        """
        n = problem.num_tasks
        s = problem.num_samples
        bp = len(states)
        sched = problem.levels
        assign = self._validated_assignments(problem, states)  # (B', N)

        # Pass 1 (boolean only): per-child affected masks, propagated
        # level by level across the whole sibling batch at once.  After
        # the loop ``mask[slot, child]`` marks every recomputed pair.
        mask = np.zeros((n + 1, bp), dtype=bool)
        first = sched.num_levels
        for j, st in enumerate(states):
            d = np.asarray(st.dirty, dtype=np.int64)
            if d.size == 0 or d.min() < 0 or d.max() >= n:
                raise SolverError(
                    f"dirty task set {st.dirty!r} out of range for {n} tasks"
                )
            mask[sched.rank[d], j] = True
            first = min(first, int(sched.depth[d].min()))
        plan: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        child_level_runs = 0  # (level, child) pairs with recomputed rows
        for lv in range(first, sched.num_levels):
            lo, hi = sched.level_bounds[lv]
            gather = sched.level_parents[lv]
            sub = mask[lo:hi]
            aff = sub | mask[gather].any(axis=1) if gather.shape[1] else sub
            rows, childs = np.nonzero(aff)
            if rows.size == 0:
                continue
            mask[lo + rows, childs] = True
            child_level_runs += int(np.unique(childs).size)
            plan.append((lo, gather, rows, childs))

        # The parent frontier with the zero sentinel row appended (one
        # contiguous copy per sibling group, amortized over B' states);
        # ``buf`` holds ONLY the recomputed pairs -- every other entry
        # is stale scratch that is never read.
        parent_ext = self._buf("delta_parent", (n + 1, s))
        np.copyto(parent_ext[:n], parent_frontier)
        parent_ext[n] = 0.0
        buf = self._buf("delta_group", ((n + 1) * bp, s))
        buf3 = buf.reshape(n + 1, bp, s)

        # Pass 2: re-propagate the affected pairs.  Flat row index into
        # ``buf`` is ``slot * B' + child``; lanes, gathers and scatters
        # all run over a level's whole pair list in one call.  Sources
        # come from the shared parent rows, sparsely overridden where
        # the reading child recomputed that source at an earlier level
        # (pass 2 runs in level order, so those pairs are already
        # written by the time they are read).
        rows_matrix = problem.tensor_taskmajor.reshape(problem.num_types * n, s)
        recomputed = 0
        for lo, gather, rows, childs in plan:
            recomputed += int(rows.size)
            slots = lo + rows
            tasks = sched.order[slots]
            lanes = rows_matrix.take(assign[childs, tasks] * n + tasks, axis=0)  # (p, S)
            width = gather.shape[1]
            if width == 0:
                vals = lanes
            elif width <= _COLUMN_FANIN_MAX:
                src = gather[rows]  # (p, P) parent slots
                ready: np.ndarray | None = None
                for c in range(width):
                    col_slots = src[:, c]
                    rec = mask[col_slots, childs]
                    # Bulk-read from whichever store holds the majority
                    # of this column's sources, sparse-fix the rest --
                    # dense suffix regions read mostly recomputed pairs,
                    # sparse prefixes mostly shared parent rows.
                    if np.count_nonzero(rec) * 2 > rec.size:
                        col = buf.take(col_slots * bp + childs, axis=0)  # (p, S)
                        sel = np.nonzero(~rec)[0]
                        if sel.size:
                            col[sel] = parent_ext.take(col_slots[sel], axis=0)
                    else:
                        col = parent_ext.take(col_slots, axis=0)  # (p, S)
                        sel = np.nonzero(rec)[0]
                        if sel.size:
                            col[sel] = buf.take(
                                col_slots[sel] * bp + childs[sel], axis=0
                            )
                    if ready is None:
                        ready = col
                    else:
                        np.maximum(ready, col, out=ready)
                np.add(ready, lanes, out=lanes)
                vals = lanes
            else:
                # Big fan-in, few rows: one 3-D gather + max reduction.
                src = gather[rows]  # (p, P)
                rec = mask[src, childs[:, None]]
                if np.count_nonzero(rec) * 2 > rec.size:
                    gathered = buf.take(
                        (src * bp + childs[:, None]).reshape(-1), axis=0
                    ).reshape(rows.size, width, s)
                    i1, i2 = np.nonzero(~rec)
                    if i1.size:
                        gathered[i1, i2] = parent_ext.take(src[i1, i2], axis=0)
                else:
                    gathered = parent_ext.take(src.reshape(-1), axis=0).reshape(
                        rows.size, width, s
                    )
                    i1, i2 = np.nonzero(rec)
                    if i1.size:
                        gathered[i1, i2] = buf.take(
                            src[i1, i2] * bp + childs[i1], axis=0
                        )
                np.add(gathered.max(axis=1), lanes, out=lanes)
                vals = lanes
            buf[slots * bp + childs] = vals

        self.delta_counters["states_incremental"] += bp
        self.delta_counters["levels_total"] += bp * sched.num_levels
        self.delta_counters["levels_skipped"] += bp * sched.num_levels - child_level_runs
        self.delta_counters["rows_total"] += bp * n
        self.delta_counters["rows_recomputed"] += recomputed

        # Sink-row reduction: recomputed pairs read ``buf``, untouched
        # pairs the shared parent row -- max over partitions = the max.
        sinks = sched.sink_slots
        out = np.where(
            mask[sinks[0]][:, None], buf3[sinks[0]], parent_ext[sinks[0]][None, :]
        )
        for t in sinks[1:]:
            np.maximum(
                out,
                np.where(mask[t][:, None], buf3[t], parent_ext[t][None, :]),
                out=out,
            )
        return out  # fresh (B', S)

    def _makespan_delta(
        self,
        problem: CompiledProblem,
        state: PlanState,
        parent_frontier: np.ndarray,
        return_frontier: bool = False,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Makespan row of ``state`` by delta propagation from its parent.

        ``parent_frontier`` is the parent's permuted ``(N, S)`` finish
        matrix.  Levels below the first dirty level are copied verbatim;
        from there on, only rows whose task is dirty or has a recomputed
        ancestor are re-propagated (same gather + ``max`` + ``add``
        arithmetic as the full kernel, hence bit-identical).  The final
        reduction runs over the sink rows alone -- with non-negative
        task times every inner task's finish is dominated by some sink's.

        Returns ``(makespan_row, frontier)``; ``frontier`` is a fresh
        ``(N, S)`` copy of the child's finish matrix when
        ``return_frontier`` is set, else ``None``.
        """
        n = problem.num_tasks
        s = problem.num_samples
        sched = problem.levels
        assign = self._validated_assignments(problem, [state])[0]
        dirty = np.asarray(state.dirty, dtype=np.int64)
        if dirty.size == 0 or dirty.min() < 0 or dirty.max() >= n:
            raise SolverError(f"dirty task set {state.dirty!r} out of range for {n} tasks")

        # Pass 1 (boolean only, no sample data): discover the affected
        # slots per level -- dirty tasks plus anything with a recomputed
        # ancestor.  After the loop ``mask`` is the full recompute set.
        mask = self._buf("delta_mask", (n + 1,), dtype=bool)
        mask[:] = False
        mask[sched.rank[dirty]] = True
        first = int(sched.depth[dirty].min())
        plan: list[tuple[int, np.ndarray, np.ndarray]] = []
        for lv in range(first, sched.num_levels):
            lo, hi = sched.level_bounds[lv]
            gather = sched.level_parents[lv]
            if gather.shape[1]:
                aff = mask[lo:hi] | mask[gather].any(axis=1)
            else:
                aff = mask[lo:hi]
            rows = np.nonzero(aff)[0]
            if rows.size == 0:
                continue
            mask[lo + rows] = True
            plan.append((lo, gather, rows))

        # Stage the finish buffer.  Only the parent rows the suffix will
        # actually *read* -- unrecomputed gather sources and sinks -- are
        # copied in; every other unchanged row is never touched, so the
        # full (N, S) memcpy of the naive approach disappears.  (The
        # frontier-returning path still needs every row: a later delta
        # from this child may read any of them.)
        buf = self._buf("delta_finish", (n + 1, s))
        buf[n] = 0.0  # the sentinel row every padded parent slot reads
        if return_frontier:
            np.copyto(buf[:n], parent_frontier)
        else:
            reads = [sched.sink_slots]
            for _, gather, rows in plan:
                if gather.shape[1]:
                    reads.append(gather[rows].ravel())
            read_slots = np.unique(np.concatenate(reads))
            # Recomputed slots are written before any later level (or the
            # sink reduction) reads them; the sentinel row is set above.
            needed = read_slots[(read_slots < n) & ~mask[read_slots]]
            buf[needed] = parent_frontier[needed]

        # Pass 2: re-propagate the affected rows with the identical
        # gather + max + add arithmetic the full kernel uses (column
        # takes for narrow fan-in, 3-D gather for wide), hence
        # bit-identical finish times.
        rows_matrix = problem.tensor_taskmajor.reshape(problem.num_types * n, s)
        w = sched.max_width
        ready_buf = self._buf("delta_ready", (w, s))
        other_buf = self._buf("delta_other", (w, s))
        recomputed = 0
        for lo, gather, rows in plan:
            r = int(rows.size)
            recomputed += r
            slots = lo + rows
            tasks = sched.order[slots]
            lanes = rows_matrix.take(assign[tasks] * n + tasks, axis=0)  # (r, S)
            width = gather.shape[1]
            if width == 0:
                buf[slots] = lanes
            elif width <= _COLUMN_FANIN_MAX:
                g = gather[rows]
                ready = ready_buf[:r]
                np.take(buf, np.ascontiguousarray(g[:, 0]), axis=0, out=ready)
                for c in range(1, width):
                    other = other_buf[:r]
                    np.take(buf, np.ascontiguousarray(g[:, c]), axis=0, out=other)
                    np.maximum(ready, other, out=ready)
                np.add(ready, lanes, out=lanes)
                buf[slots] = lanes
            else:
                # Big fan-in, few rows: one 3-D gather + max reduction.
                np.add(buf[gather[rows]].max(axis=1), lanes, out=lanes)
                buf[slots] = lanes

        self.delta_counters["states_incremental"] += 1
        self.delta_counters["levels_total"] += sched.num_levels
        self.delta_counters["levels_skipped"] += sched.num_levels - len(plan)
        self.delta_counters["rows_total"] += n
        self.delta_counters["rows_recomputed"] += recomputed

        makespan = buf[sched.sink_slots].max(axis=0)  # fresh (S,) row
        frontier = buf[:n].copy() if return_frontier else None
        return makespan, frontier

    def ensure_frontier(self, problem: CompiledProblem, state: PlanState) -> None:
        """Cache ``state``'s finish-time frontier ahead of its expansion.

        The search calls this for each beam state it is about to expand,
        so the children generated from it can all take the delta path.
        Chains stay cheap: a state whose *own* parent frontier is still
        cached is itself delta-propagated rather than recomputed.
        """
        ctx = self.eval_context
        n = problem.num_tasks
        if ctx is None or not self.level_parallel or n == 0:
            return
        token = problem.sample_token
        if ctx.peek(token, state.key):
            return
        if (
            state.parent_key is not None
            and state.dirty
            and ctx.peek(token, state.parent_key)
        ):
            parent = ctx.get(token, state.parent_key)
            _, frontier = self._makespan_delta(
                problem, state, parent, return_frontier=True
            )
            ctx.put(token, state.key, frontier)
            return
        sched = problem.levels
        assign = self._validated_assignments(problem, [state])[0]
        perm_tasks = sched.order
        rows_matrix = problem.tensor_taskmajor.reshape(problem.num_types * n, problem.num_samples)
        lanes = rows_matrix.take(assign[perm_tasks] * n + perm_tasks, axis=0)
        finish = sched.propagate_permuted(lanes)
        ctx.put(token, state.key, finish[:n].copy())

    def delta_stats(self) -> dict[str, int]:
        """A copy of the monotone incremental-work counters."""
        return dict(self.delta_counters)

    def release_buffers(self) -> None:
        """Drop the pooled scratch arrays (``Deco.clear_caches`` hook)."""
        self.pool.clear()

    def screen_probabilities(
        self, problem: CompiledProblem, states, prefix: int
    ) -> np.ndarray:
        """Prefix-fidelity probabilities via the fused full kernel.

        Screening problems carry fresh sample tokens, so their states
        would never find frontiers anyway; routing them explicitly
        around the incremental partition keeps the delta counters
        attributable to full-fidelity work.
        """
        sp = self.screen_problem(problem, prefix)
        makespans = self.makespan_samples(sp, list(states), incremental=False)
        return np.mean(makespans <= sp.deadline, axis=1)


class ScalarBackend(EvaluationBackend):
    """The single-thread CPU reference: same math, pure-Python loops.

    Deliberately un-vectorized -- this is the baseline of the paper's
    GPU-vs-CPU speedup measurements, and the numbers it produces are
    identical to :class:`VectorizedBackend` on the same problem.
    """

    name = "cpu"

    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        states = list(states)
        n = problem.num_tasks
        s = problem.num_samples
        tensor = problem.tensor
        out = np.empty((len(states), s), dtype=float)
        for b, state in enumerate(states):
            assign = state.assignment
            if len(assign) != n:
                raise SolverError(f"state has {len(assign)} tasks, problem has {n}")
            for sample in range(s):
                finish = [0.0] * n
                best = 0.0
                for i, parents in enumerate(problem.parent_indices):
                    ready = 0.0
                    for p in parents:
                        if finish[p] > ready:
                            ready = finish[p]
                    f = ready + tensor[assign[i], sample, i]
                    finish[i] = f
                    if f > best:
                        best = f
                out[b, sample] = best
        return out


_BACKENDS = {"gpu": VectorizedBackend, "cpu": ScalarBackend}
BACKEND_NAMES = ("gpu", "cpu", "analytic")


def get_backend(
    name: str,
    cache: MakespanCache | None = None,
    eval_context: EvalContext | None = None,
) -> EvaluationBackend:
    """Backend factory: ``"gpu"`` (vectorized), ``"cpu"`` (scalar) or
    ``"analytic"`` (moment propagation, no sampling)."""
    if name == "analytic":
        # Imported lazily: analytic_backend itself imports this module.
        from repro.solver.analytic_backend import AnalyticBackend

        return AnalyticBackend(cache=cache, eval_context=eval_context)
    try:
        return _BACKENDS[name](cache=cache, eval_context=eval_context)
    except KeyError:
        raise SolverError(
            f"unknown backend {name!r}; choose from {sorted(BACKEND_NAMES)}"
        ) from None
