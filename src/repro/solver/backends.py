"""State-evaluation backends: the compiled probabilistic IR.

The paper evaluates each searched state with Monte Carlo inference over
the probabilistic IR, accelerated on a GPU: *one thread per Monte Carlo
iteration, one thread block per state* (Section 5.2-5.3).  cupy/numba
are unavailable in this environment, so the GPU role is played by a
**vectorized NumPy backend** with the identical parallel decomposition:

* the sampled task-time tensor ``(K types, S realizations, N tasks)``
  plus a task-major copy ``(K, N, S)`` are precomputed once per problem
  (the GPU's device-resident data); the task-major layout makes each
  (type, task) row a contiguous S-sample run, so lane gathering is a
  row ``take`` driven by an ``(N, B)`` index matrix (coalesced reads);
* evaluating a batch of B states propagates finish times through the
  DAG in **level-parallel** order: :class:`~repro.solver.levels.LevelSchedule`
  precomputes the topological levels, a padded parent-index matrix
  (``-1`` sentinel) and a level-contiguous task permutation at compile
  time; the backend's fused kernel then, per level, gathers the lane
  block, advances finish times with gather + ``max`` reductions over
  all ``B*S`` lanes, and folds the block max into the running makespan
  while the block is cache-hot -- D (depth) Python iterations instead
  of N (tasks), exactly the wavefront a CUDA kernel would launch per
  level;
* the deadline probability is a mean over the S axis (a block-level
  reduction in the CUDA version).

Backends optionally carry a :class:`~repro.solver.cache.MakespanCache`
that memoizes per-state makespan rows keyed by ``(tensor id, state
key)``, so deadline sweeps over :meth:`CompiledProblem.with_deadline`
derivations (same tensor, different feasibility test) reuse samples
instead of recomputing them.

The **scalar backend** computes the same quantities with pure-Python
loops -- the single-thread CPU baseline of the paper's speedup numbers.
Both backends are bit-identical on the same problem (asserted in the
test suite) and statistically consistent with the WLog interpreter's
Algorithm-1 evaluation.  The pre-level-parallel per-task loop is kept
as ``VectorizedBackend(level_parallel=False)`` so the speedup of the
fast path stays measurable (see ``repro.bench.perf``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SolverError
from repro.common.units import SECONDS_PER_HOUR
from repro.cloud.instance_types import Catalog
from repro.faults.model import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.solver.cache import MakespanCache
from repro.solver.levels import LevelSchedule
from repro.solver.state import PlanState, StateEval
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = [
    "CompiledProblem",
    "EvaluationBackend",
    "VectorizedBackend",
    "ScalarBackend",
    "get_backend",
]


@dataclass(frozen=True)
class CompiledProblem:
    """The array form of a scheduling problem's probabilistic IR.

    Produced by :meth:`compile` from the same ingredients the WLog
    translation uses (workflow structure + runtime model histograms);
    the equivalence is covered by tests against the interpreter path.
    """

    workflow: Workflow
    catalog: Catalog
    mean_times: np.ndarray     # (K, N) mean task time per type
    tensor: np.ndarray         # (K, S, N) sampled task times
    prices: np.ndarray         # (K,) $/hour in the optimization region
    parent_indices: tuple[tuple[int, ...], ...]  # per task, topological order
    deadline: float            # seconds
    required_probability: float  # P(makespan <= deadline) must reach this
    levels: LevelSchedule | None = None  # level-parallel layout (built if absent)
    #: (K, N, S) task-major copy of ``tensor``: row ``[k, i]`` holds task
    #: i's samples contiguously, so the backend's lane gather is K*N
    #: contiguous row copies instead of element-wise flat indexing.
    tensor_taskmajor: np.ndarray | None = None
    #: Fault expansion (set by :meth:`with_faults`): the declared fault
    #: model + recovery policy whose analytic expectation inflated the
    #: tensor, and the minimum plan success probability (0.0 = no
    #: reliability constraint).
    faults: FaultModel | None = None
    recovery: RecoveryPolicy | None = None
    reliability_required: float = 0.0

    def __post_init__(self):
        if self.levels is None:
            object.__setattr__(
                self, "levels", LevelSchedule.from_parent_indices(self.parent_indices)
            )
        if self.tensor_taskmajor is None:
            tm = np.ascontiguousarray(self.tensor.transpose(0, 2, 1))
            tm.setflags(write=False)
            object.__setattr__(self, "tensor_taskmajor", tm)

    @classmethod
    def compile(
        cls,
        workflow: Workflow,
        catalog: Catalog,
        deadline: float,
        percentile: float = 96.0,
        num_samples: int = 200,
        seed: int = 0,
        runtime_model: RuntimeModel | None = None,
        region: str | None = None,
    ) -> "CompiledProblem":
        if deadline <= 0:
            raise SolverError(f"deadline must be > 0, got {deadline}")
        if not 0 < percentile <= 100:
            raise SolverError(f"percentile must be in (0, 100], got {percentile}")
        model = runtime_model or RuntimeModel(catalog)
        tensor = model.sample_tensor(workflow, num_samples, seed=seed)
        mean_times = model.mean_matrix(workflow)
        prices = np.asarray(
            [catalog.price(name, region) for name in catalog.type_names], dtype=float
        )
        parents = tuple(
            tuple(workflow.index_of(p) for p in workflow.parents(tid))
            for tid in workflow.task_ids
        )
        return cls(
            workflow=workflow,
            catalog=catalog,
            mean_times=mean_times,
            tensor=tensor,
            prices=prices,
            parent_indices=parents,
            deadline=float(deadline),
            required_probability=percentile / 100.0,
            levels=LevelSchedule.from_parent_indices(parents),
        )

    @property
    def num_tasks(self) -> int:
        return self.tensor.shape[2]

    @property
    def num_types(self) -> int:
        return self.tensor.shape[0]

    @property
    def num_samples(self) -> int:
        return self.tensor.shape[1]

    def expected_cost(self, assignment: np.ndarray) -> float:
        """Paper Eq. 1-2: sum of mean task time x unit price (frac. hours)."""
        return float(self.expected_cost_batch(np.asarray(assignment)[None, :])[0])

    def expected_cost_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Eq. 1 cost for a ``(B, N)`` assignment matrix, one pass."""
        a = np.asarray(assignments, dtype=np.int64)
        idx = np.arange(self.num_tasks)
        per_task = self.mean_times[a, idx] * self.prices[a]
        return per_task.sum(axis=-1) / SECONDS_PER_HOUR

    def state_from_assignment(self, assignment) -> PlanState:
        """Build a :class:`PlanState` from a task->type-name mapping."""
        wf = self.workflow
        arr = np.empty(self.num_tasks, dtype=np.int16)
        for tid in wf.task_ids:
            arr[wf.index_of(tid)] = self.catalog.index_of(assignment[tid])
        return PlanState(arr)

    def with_deadline(self, deadline: float, percentile: float | None = None) -> "CompiledProblem":
        """Same problem under a different deadline requirement.

        Shares the sample tensor and level schedule, so makespan caches
        keyed on the tensor keep hitting across the derived problems.
        """
        return CompiledProblem(
            workflow=self.workflow,
            catalog=self.catalog,
            mean_times=self.mean_times,
            tensor=self.tensor,
            prices=self.prices,
            parent_indices=self.parent_indices,
            deadline=float(deadline),
            required_probability=(
                self.required_probability if percentile is None else percentile / 100.0
            ),
            levels=self.levels,
            tensor_taskmajor=self.tensor_taskmajor,
            faults=self.faults,
            recovery=self.recovery,
            reliability_required=self.reliability_required,
        )

    def with_faults(
        self,
        faults: FaultModel,
        recovery: RecoveryPolicy | None = None,
        reliability_percentile: float | None = None,
    ) -> "CompiledProblem":
        """Fault-aware derivation: score plans *under* the fault model.

        Every sampled task time (and the Eq.-1 mean times, so expected
        cost bills the retries too) is inflated by the analytic
        expectation of :meth:`FaultModel.inflate` -- expected-retry
        geometric series over the retry budget, expected straggler
        slowdown, steady-state checkpoint overhead, first-order
        crash-rework.  ``reliability_percentile`` (e.g. ``99.0``)
        additionally requires the plan's analytic success probability
        to reach that level (the WLog ``reliability(P, R)``
        constraint); the retry budget ``R`` lives on ``recovery``.

        The inflated tensor is a *new* array, so makespan caches keep
        fault-aware and fault-oblivious rows separate by construction.
        """
        recovery = recovery if recovery is not None else RecoveryPolicy()
        if reliability_percentile is not None and not 0 < reliability_percentile <= 100:
            raise SolverError(
                f"reliability percentile must be in (0, 100], got {reliability_percentile}"
            )
        tensor = faults.inflate(self.tensor, recovery)
        tensor.setflags(write=False)
        return CompiledProblem(
            workflow=self.workflow,
            catalog=self.catalog,
            mean_times=faults.inflate(self.mean_times, recovery),
            tensor=tensor,
            prices=self.prices,
            parent_indices=self.parent_indices,
            deadline=self.deadline,
            required_probability=self.required_probability,
            levels=self.levels,
            faults=faults,
            recovery=recovery,
            reliability_required=(
                0.0 if reliability_percentile is None else reliability_percentile / 100.0
            ),
        )

    @property
    def plan_success_probability(self) -> float:
        """Analytic P(every task succeeds within its retry budget)."""
        if self.faults is None:
            return 1.0
        recovery = self.recovery if self.recovery is not None else RecoveryPolicy()
        return self.faults.plan_success_probability(self.num_tasks, recovery)


class EvaluationBackend(abc.ABC):
    """Evaluates batches of states against a compiled problem.

    ``cache`` (optional) memoizes per-state makespan rows across calls
    and across ``with_deadline``-derived problems; hit/miss counters
    live on the cache object.
    """

    name: str = "abstract"

    def __init__(self, cache: MakespanCache | None = None):
        self.cache = cache

    @abc.abstractmethod
    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        """``(B, S)`` per-realization makespans for B states."""

    def cached_makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        """Like :meth:`makespan_samples`, consulting the cache if present."""
        states = list(states)
        if self.cache is None:
            return self.makespan_samples(problem, states)
        return self.cache.fetch(problem, states, self.makespan_samples)

    def evaluate_batch(self, problem: CompiledProblem, states) -> list[StateEval]:
        """Full evaluation: Eq. 1 cost + P(makespan <= D) per state.

        Cost, probability and mean makespan are all computed as single
        array reductions over the batch (no per-state Python arithmetic).
        """
        states = list(states)
        if not states:
            return []
        makespans = self.cached_makespan_samples(problem, states)
        assign = np.stack([st.assignment for st in states])
        costs = problem.expected_cost_batch(assign)
        probs = np.mean(makespans <= problem.deadline, axis=1)
        means = makespans.mean(axis=1)
        threshold = problem.required_probability - 1e-12
        # The reliability constraint is analytic and assignment-free
        # (per-task success ** N), so it gates the whole problem at once.
        reliable = (
            problem.plan_success_probability >= problem.reliability_required - 1e-12
        )
        return [
            StateEval(
                cost=float(costs[b]),
                probability=float(probs[b]),
                feasible=bool(probs[b] >= threshold) and reliable,
                mean_makespan=float(means[b]),
            )
            for b in range(len(states))
        ]

    def evaluate(self, problem: CompiledProblem, state: PlanState) -> StateEval:
        return self.evaluate_batch(problem, [state])[0]


def _propagate_taskloop(lanes: np.ndarray, parent_indices) -> np.ndarray:
    """Pre-level-parallel reference: one Python iteration per task.

    Kept as the "before" of the level-parallel speedup measurement
    (``repro.bench.perf.solver_speedup``); numerically identical.
    """
    finish = np.empty_like(lanes)
    for i, parents in enumerate(parent_indices):
        if parents:
            ready = finish[:, parents[0]]
            for p in parents[1:]:
                ready = np.maximum(ready, finish[:, p])
            finish[:, i] = ready + lanes[:, i]
        else:
            finish[:, i] = lanes[:, i]
    return finish


class VectorizedBackend(EvaluationBackend):
    """The "GPU" backend: batched array evaluation (see module docstring).

    The fast path works in *permuted task-major* layout: one flat-index
    ``take`` gathers the ``(N, B*S)`` lane matrix with tasks already in
    level-contiguous order, then :meth:`LevelSchedule.propagate_permuted`
    advances one level per step.  Large intermediates (index matrix,
    lane matrix, finish matrix, level scratch) come from a small
    per-backend buffer pool -- reallocating multi-hundred-KB arrays
    every evaluation costs page faults that dominate the kernel at
    search-sized batches.  The pool makes the backend non-reentrant
    (one evaluation at a time per instance), matching a CUDA stream.

    ``level_parallel=False`` selects the pre-optimization per-task
    propagation loop -- same numbers, N instead of D Python iterations --
    used by the benchmarks as the speedup baseline of the fast path.
    """

    name = "gpu"

    _POOL_MAX = 32  # distinct (name, shape) buffers kept alive

    def __init__(self, cache: MakespanCache | None = None, level_parallel: bool = True):
        super().__init__(cache=cache)
        self.level_parallel = bool(level_parallel)
        self._pool: dict[tuple, object] = {}

    def _buf(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A pooled scratch array (contents undefined)."""
        key = (name, shape, np.dtype(dtype).str)
        buf = self._pool.get(key)
        if buf is None:
            if len(self._pool) >= self._POOL_MAX:
                self._pool.clear()
            buf = np.empty(shape, dtype=dtype)
            self._pool[key] = buf
        return buf

    def _validated_assignments(self, problem: CompiledProblem, states) -> np.ndarray:
        assign = np.stack([st.assignment for st in states]).astype(np.int64)  # (B, N)
        if assign.shape[1] != problem.num_tasks:
            raise SolverError(
                f"state has {assign.shape[1]} tasks, problem has {problem.num_tasks}"
            )
        if assign.min(initial=0) < 0:
            raise SolverError("state references a negative type index")
        if assign.max(initial=0) >= problem.num_types:
            raise SolverError("state references a type index outside the catalog")
        return assign

    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        states = list(states)
        b = len(states)
        n = problem.num_tasks
        s = problem.num_samples
        assign = self._validated_assignments(problem, states)
        if not self.level_parallel:
            # Pre-level-parallel reference path, kept measurable.
            times = problem.tensor[assign, :, np.arange(n)[None, :]]  # (B, N, S)
            lanes = times.transpose(0, 2, 1).reshape(b * s, n)  # (B*S, N)
            finish = _propagate_taskloop(lanes, problem.parent_indices)
            return finish.max(axis=1).reshape(b, s)

        sched = problem.levels
        if n == 0:
            return np.zeros((b, s))

        # Fused level kernel over the task-major tensor copy: per level,
        # gather the lane block as contiguous row takes, propagate finish
        # times, and fold the block max into the running makespan -- each
        # block is consumed while still cache-hot instead of being
        # re-read cold in later passes.  lanes[r, b*S + s'] =
        # tensor[assign[b, order[r]], s', order[r]], tasks level-permuted.
        # (LevelSchedule.propagate_permuted is the unfused reference; the
        # test suite asserts both agree bit-for-bit with ScalarBackend.)
        m = b * s
        rows = problem.tensor_taskmajor.reshape(problem.num_types * n, s)
        perm_assign = assign.T.take(sched.order, axis=0)  # (N, B)
        idx = perm_assign * n + sched.order[:, None]  # (N, B) row ids
        w = sched.max_width
        finish = self._buf("finish", (n + 1, m))
        finish[n] = 0.0  # the sentinel row every padded parent slot reads
        lanes = self._buf("lanes", (w, m))
        buf_a = self._buf("scratch_a", (w, m))
        buf_b = self._buf("scratch_b", (w, m))
        out = np.empty((b, s))  # fresh: callers may hold on to the result
        makespan = out.reshape(m)
        for lv, ((lo, hi), gather, columns) in enumerate(
            zip(sched.level_bounds, sched.level_parents, sched.level_columns)
        ):
            k = hi - lo
            ln = lanes[:k]
            # Indices come from validated assignments; skip bounds checks.
            np.take(
                rows, idx[lo:hi].reshape(k * b), axis=0,
                out=ln.reshape(k * b, s), mode="clip",
            )
            dst = finish[lo:hi]
            if gather.shape[1] == 0:
                dst[...] = ln
            elif columns is not None:
                ready = buf_a[:k]
                np.take(finish, columns[0], axis=0, out=ready, mode="clip")
                for col in columns[1:]:
                    other = buf_b[:k]
                    np.take(finish, col, axis=0, out=other, mode="clip")
                    np.maximum(ready, other, out=ready)
                np.add(ready, ln, out=dst)
            else:
                # Big fan-in, few tasks: one 3-D gather + max reduction.
                np.add(finish[gather].max(axis=1), ln, out=dst)
            if lv == 0:
                dst.max(axis=0, out=makespan)
            else:
                np.maximum(makespan, dst.max(axis=0), out=makespan)
        return out


class ScalarBackend(EvaluationBackend):
    """The single-thread CPU reference: same math, pure-Python loops.

    Deliberately un-vectorized -- this is the baseline of the paper's
    GPU-vs-CPU speedup measurements, and the numbers it produces are
    identical to :class:`VectorizedBackend` on the same problem.
    """

    name = "cpu"

    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        states = list(states)
        n = problem.num_tasks
        s = problem.num_samples
        tensor = problem.tensor
        out = np.empty((len(states), s), dtype=float)
        for b, state in enumerate(states):
            assign = state.assignment
            if len(assign) != n:
                raise SolverError(f"state has {len(assign)} tasks, problem has {n}")
            for sample in range(s):
                finish = [0.0] * n
                best = 0.0
                for i, parents in enumerate(problem.parent_indices):
                    ready = 0.0
                    for p in parents:
                        if finish[p] > ready:
                            ready = finish[p]
                    f = ready + tensor[assign[i], sample, i]
                    finish[i] = f
                    if f > best:
                        best = f
                out[b, sample] = best
        return out


_BACKENDS = {"gpu": VectorizedBackend, "cpu": ScalarBackend}


def get_backend(name: str, cache: MakespanCache | None = None) -> EvaluationBackend:
    """Backend factory: ``"gpu"`` (vectorized) or ``"cpu"`` (scalar)."""
    try:
        return _BACKENDS[name](cache=cache)
    except KeyError:
        raise SolverError(f"unknown backend {name!r}; choose from {sorted(_BACKENDS)}") from None
