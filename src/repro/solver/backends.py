"""State-evaluation backends: the compiled probabilistic IR.

The paper evaluates each searched state with Monte Carlo inference over
the probabilistic IR, accelerated on a GPU: *one thread per Monte Carlo
iteration, one thread block per state* (Section 5.2-5.3).  cupy/numba
are unavailable in this environment, so the GPU role is played by a
**vectorized NumPy backend** with the identical parallel decomposition:

* the sampled task-time tensor ``(K types, S realizations, N tasks)``
  is precomputed once per problem (the GPU's device-resident data);
* evaluating a batch of B states gathers a ``(B, S, N)`` time array
  (coalesced reads) and propagates finish times through the DAG in
  topological order -- N fused vector operations over ``B*S`` lanes,
  exactly the arithmetic each CUDA thread would perform;
* the deadline probability is a mean over the S axis (a block-level
  reduction in the CUDA version).

The **scalar backend** computes the same quantities with pure-Python
loops -- the single-thread CPU baseline of the paper's speedup numbers.
Both backends are bit-identical on the same problem (asserted in the
test suite) and statistically consistent with the WLog interpreter's
Algorithm-1 evaluation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SolverError
from repro.common.units import SECONDS_PER_HOUR
from repro.cloud.instance_types import Catalog
from repro.solver.state import PlanState, StateEval
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = [
    "CompiledProblem",
    "EvaluationBackend",
    "VectorizedBackend",
    "ScalarBackend",
    "get_backend",
]


@dataclass(frozen=True)
class CompiledProblem:
    """The array form of a scheduling problem's probabilistic IR.

    Produced by :meth:`compile` from the same ingredients the WLog
    translation uses (workflow structure + runtime model histograms);
    the equivalence is covered by tests against the interpreter path.
    """

    workflow: Workflow
    catalog: Catalog
    mean_times: np.ndarray     # (K, N) mean task time per type
    tensor: np.ndarray         # (K, S, N) sampled task times
    prices: np.ndarray         # (K,) $/hour in the optimization region
    parent_indices: tuple[tuple[int, ...], ...]  # per task, topological order
    deadline: float            # seconds
    required_probability: float  # P(makespan <= deadline) must reach this

    @classmethod
    def compile(
        cls,
        workflow: Workflow,
        catalog: Catalog,
        deadline: float,
        percentile: float = 96.0,
        num_samples: int = 200,
        seed: int = 0,
        runtime_model: RuntimeModel | None = None,
        region: str | None = None,
    ) -> "CompiledProblem":
        if deadline <= 0:
            raise SolverError(f"deadline must be > 0, got {deadline}")
        if not 0 < percentile <= 100:
            raise SolverError(f"percentile must be in (0, 100], got {percentile}")
        model = runtime_model or RuntimeModel(catalog)
        tensor = model.sample_tensor(workflow, num_samples, seed=seed)
        mean_times = model.mean_matrix(workflow)
        prices = np.asarray(
            [catalog.price(name, region) for name in catalog.type_names], dtype=float
        )
        parents = tuple(
            tuple(workflow.index_of(p) for p in workflow.parents(tid))
            for tid in workflow.task_ids
        )
        return cls(
            workflow=workflow,
            catalog=catalog,
            mean_times=mean_times,
            tensor=tensor,
            prices=prices,
            parent_indices=parents,
            deadline=float(deadline),
            required_probability=percentile / 100.0,
        )

    @property
    def num_tasks(self) -> int:
        return self.tensor.shape[2]

    @property
    def num_types(self) -> int:
        return self.tensor.shape[0]

    @property
    def num_samples(self) -> int:
        return self.tensor.shape[1]

    def expected_cost(self, assignment: np.ndarray) -> float:
        """Paper Eq. 1-2: sum of mean task time x unit price (frac. hours)."""
        idx = np.arange(self.num_tasks)
        per_task = self.mean_times[assignment, idx] * self.prices[assignment]
        return float(per_task.sum() / SECONDS_PER_HOUR)

    def state_from_assignment(self, assignment) -> PlanState:
        """Build a :class:`PlanState` from a task->type-name mapping."""
        wf = self.workflow
        arr = np.empty(self.num_tasks, dtype=np.int16)
        for tid in wf.task_ids:
            arr[wf.index_of(tid)] = self.catalog.index_of(assignment[tid])
        return PlanState(arr)

    def with_deadline(self, deadline: float, percentile: float | None = None) -> "CompiledProblem":
        """Same problem under a different deadline requirement."""
        return CompiledProblem(
            workflow=self.workflow,
            catalog=self.catalog,
            mean_times=self.mean_times,
            tensor=self.tensor,
            prices=self.prices,
            parent_indices=self.parent_indices,
            deadline=float(deadline),
            required_probability=(
                self.required_probability if percentile is None else percentile / 100.0
            ),
        )


class EvaluationBackend(abc.ABC):
    """Evaluates batches of states against a compiled problem."""

    name: str = "abstract"

    @abc.abstractmethod
    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        """``(B, S)`` per-realization makespans for B states."""

    def evaluate_batch(self, problem: CompiledProblem, states) -> list[StateEval]:
        """Full evaluation: Eq. 1 cost + P(makespan <= D) per state."""
        states = list(states)
        if not states:
            return []
        makespans = self.makespan_samples(problem, states)
        out: list[StateEval] = []
        for b, state in enumerate(states):
            mk = makespans[b]
            prob = float(np.mean(mk <= problem.deadline))
            out.append(
                StateEval(
                    cost=problem.expected_cost(state.assignment),
                    probability=prob,
                    feasible=prob >= problem.required_probability - 1e-12,
                    mean_makespan=float(mk.mean()),
                )
            )
        return out

    def evaluate(self, problem: CompiledProblem, state: PlanState) -> StateEval:
        return self.evaluate_batch(problem, [state])[0]


class VectorizedBackend(EvaluationBackend):
    """The "GPU" backend: batched array evaluation (see module docstring)."""

    name = "gpu"

    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        states = list(states)
        b = len(states)
        n = problem.num_tasks
        s = problem.num_samples
        assign = np.stack([st.assignment for st in states]).astype(np.int64)  # (B, N)
        if assign.shape[1] != n:
            raise SolverError(f"state has {assign.shape[1]} tasks, problem has {n}")
        if assign.max(initial=0) >= problem.num_types:
            raise SolverError("state references a type index outside the catalog")
        # Gather: times[b, i, s'] = tensor[assign[b, i], s', i]  -> (B, N, S)
        times = problem.tensor[assign, :, np.arange(n)[None, :]]
        # Propagate finish times through the DAG over all B*S lanes at once.
        lanes = times.transpose(0, 2, 1).reshape(b * s, n)  # (B*S, N)
        finish = np.empty_like(lanes)
        for i, parents in enumerate(problem.parent_indices):
            if parents:
                ready = finish[:, parents[0]]
                for p in parents[1:]:
                    ready = np.maximum(ready, finish[:, p])
                finish[:, i] = ready + lanes[:, i]
            else:
                finish[:, i] = lanes[:, i]
        return finish.max(axis=1).reshape(b, s)


class ScalarBackend(EvaluationBackend):
    """The single-thread CPU reference: same math, pure-Python loops.

    Deliberately un-vectorized -- this is the baseline of the paper's
    GPU-vs-CPU speedup measurements, and the numbers it produces are
    identical to :class:`VectorizedBackend` on the same problem.
    """

    name = "cpu"

    def makespan_samples(self, problem: CompiledProblem, states) -> np.ndarray:
        states = list(states)
        n = problem.num_tasks
        s = problem.num_samples
        tensor = problem.tensor
        out = np.empty((len(states), s), dtype=float)
        for b, state in enumerate(states):
            assign = state.assignment
            if len(assign) != n:
                raise SolverError(f"state has {len(assign)} tasks, problem has {n}")
            for sample in range(s):
                finish = [0.0] * n
                best = 0.0
                for i, parents in enumerate(problem.parent_indices):
                    ready = 0.0
                    for p in parents:
                        if finish[p] > ready:
                            ready = finish[p]
                    f = ready + tensor[assign[i], sample, i]
                    finish[i] = f
                    if f > best:
                        best = f
                out[b, sample] = best
        return out


_BACKENDS = {"gpu": VectorizedBackend, "cpu": ScalarBackend}


def get_backend(name: str) -> EvaluationBackend:
    """Backend factory: ``"gpu"`` (vectorized) or ``"cpu"`` (scalar)."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise SolverError(f"unknown backend {name!r}; choose from {sorted(_BACKENDS)}") from None
