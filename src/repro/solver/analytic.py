"""Analytic makespan propagation: histogram algebra instead of Monte Carlo.

The probabilistic IR admits a second evaluation strategy besides
Algorithm 1's Monte Carlo: propagate the task-time *histograms*
directly through the DAG using the distribution algebra of
:mod:`repro.distributions.histogram` --

* a task's finish-time distribution is ``max`` over its parents'
  finish-time distributions, convolved (``+``) with its own time
  distribution;
* the makespan distribution is the ``max`` over sink finish times.

This corresponds to ProbLog's exact inference on series-parallel
structures and is deterministic (no sampling noise), at the price of an
**independence approximation**: two paths sharing an ancestor are
treated as independent at their join, so joins of correlated paths bias
the tail slightly upward (a conservative direction for deadline
checks).  On trees the propagation is exact.  The test suite
cross-checks it against the Monte Carlo backends.
"""

from __future__ import annotations

from typing import Mapping

from repro.common.errors import SolverError
from repro.distributions.histogram import Histogram
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["analytic_makespan", "analytic_deadline_probability"]


def _topological_order(workflow: Workflow) -> tuple[str, ...]:
    """An explicitly validated topological order of ``workflow``.

    :class:`Workflow` toposorts at construction, but the propagation
    below must not *assume* the declared ``task_ids`` order is
    consistent with the parent lists it walks -- duck-typed workflow
    objects and post-construction mutation both reach this module in
    practice.  Re-deriving the order from ``parents()`` (Kahn's
    algorithm) turns any inconsistency into a :class:`SolverError`
    naming the offending tasks instead of a bare ``KeyError`` deep in
    the finish-time loop.
    """
    ids = tuple(workflow.task_ids)
    known = set(ids)
    indegree: dict[str, int] = {}
    children: dict[str, list[str]] = {tid: [] for tid in ids}
    for tid in ids:
        parents = workflow.parents(tid)
        unknown = [p for p in parents if p not in known]
        if unknown:
            raise SolverError(
                f"task {tid!r} references unknown parent(s) {unknown[:3]}"
            )
        indegree[tid] = len(parents)
        for p in parents:
            children[p].append(tid)
    frontier = [tid for tid in ids if indegree[tid] == 0]
    order: list[str] = []
    while frontier:
        tid = frontier.pop(0)
        order.append(tid)
        for child in children[tid]:
            indegree[child] -= 1
            if indegree[child] == 0:
                frontier.append(child)
    if len(order) != len(ids):
        cyclic = sorted(tid for tid, d in indegree.items() if d > 0)
        raise SolverError(
            f"workflow {workflow.name!r} is not acyclic: propagation order "
            f"does not exist for {cyclic[:5]}"
        )
    return tuple(order)


def analytic_makespan(
    workflow: Workflow,
    assignment: Mapping[str, str],
    model: RuntimeModel,
    max_bins: int = 48,
) -> Histogram:
    """The makespan distribution by histogram propagation.

    ``assignment`` maps task id -> instance type name.  ``max_bins``
    bounds the representation after every operation (mass-preserving
    re-binning), trading resolution for time exactly like a fixed-width
    device buffer would.
    """
    if max_bins < 4:
        raise SolverError(f"max_bins must be >= 4, got {max_bins}")
    order = _topological_order(workflow)
    missing = [t for t in order if t not in assignment]
    if missing:
        raise SolverError(f"assignment missing tasks {missing[:3]}")

    finish: dict[str, Histogram] = {}
    for tid in order:
        own = model.cached_histogram(workflow.task(tid), assignment[tid]).rebinned(max_bins)
        parents = workflow.parents(tid)
        if parents:
            ready = finish[parents[0]]
            for p in parents[1:]:
                ready = Histogram.maximum(ready, finish[p]).rebinned(max_bins)
            finish[tid] = (ready + own).rebinned(max_bins)
        else:
            finish[tid] = own

    leaves = workflow.leaves()
    if not leaves:
        return Histogram.point(0.0)
    makespan = finish[leaves[0]]
    for tid in leaves[1:]:
        makespan = Histogram.maximum(makespan, finish[tid]).rebinned(max_bins)
    return makespan


def analytic_deadline_probability(
    workflow: Workflow,
    assignment: Mapping[str, str],
    model: RuntimeModel,
    deadline: float,
    max_bins: int = 48,
) -> float:
    """P(makespan <= deadline) under the analytic propagation."""
    if deadline <= 0:
        raise SolverError(f"deadline must be > 0, got {deadline}")
    return analytic_makespan(workflow, assignment, model, max_bins=max_bins).cdf(deadline)
