"""Parent-side coordinator for the distributed beam solve.

:class:`ShardedEvaluator` is the thin bridge between
:meth:`GenericSearch.solve` and a :class:`~repro.parallel.ShardPool`:
it partitions each beam iteration's candidate batch into contiguous
chunks (:func:`~repro.parallel.chunk_evenly`), dispatches chunk ``j``
to shard ``j`` (stable affinity keeps the shard-resident evaluation
caches warm across iterations), and concatenates chunk results back in
input order.

The determinism contract (DESIGN.md §13): shards return only *pure
per-candidate numbers* -- analytic makespan moments, prefix-MC
probabilities, full-fidelity :class:`~repro.solver.state.StateEval`\\ s,
and monotone counter deltas.  Each of those is a function of (compiled
problem, state) alone -- never of batch composition, worker count, or
cache temperature -- so concatenating chunk results reproduces the
serial batch bit for bit, and every search *decision* (tier
classification, keep masks, incumbent updates, frontier merge) stays in
the parent process.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.executor import ShardPool, _ShardJob, chunk_evenly
from repro.parallel.workers import beam_eval_job, beam_screen_job
from repro.solver.state import PlanState, StateEval

__all__ = ["ShardedEvaluator"]


class ShardedEvaluator:
    """One solve's view of the shard pool.

    Parameters
    ----------
    pool:
        The engine's persistent :class:`ShardPool`; the current solve's
        compiled problem must already be installed on every shard (the
        ``beam_begin_solve`` prologue broadcast by
        :meth:`Deco._distributor`).
    solve_key:
        Monotone per-engine solve id; every job carries it so a stale
        worker (respawned, or recycled across solves) fails loudly
        instead of evaluating against the wrong problem.

    :attr:`counters` accumulates the worker-side monotone counter
    deltas (makespan/frontier cache hits, delta-propagation work, tier-0
    analytic work) that each job reports -- the parent's own caches see
    none of that traffic, so without this the sharded solve would
    silently under-report its work relative to the serial one.
    """

    def __init__(self, pool: ShardPool, solve_key: int):
        self.pool = pool
        self.solve_key = int(solve_key)
        self.counters: dict[str, int] = {}

    @property
    def is_serial(self) -> bool:
        """Whether jobs currently run in-process (pool downgraded or 1 worker)."""
        return self.pool.is_serial

    @property
    def workers(self) -> int:
        return self.pool.workers

    # ------------------------------------------------------------------

    def _absorb(self, delta: dict[str, int]) -> None:
        for key, value in delta.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    def screen_round(
        self,
        states: list[PlanState],
        want_moments: bool,
        want_screen: bool,
        screen_samples: int,
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        """Tier-0 moments and/or tier-1 prefix probabilities, one barrier.

        Both tiers ride one sharded round trip: moments and prefix
        probabilities are per-candidate values, so the parent can run
        the global tier-0 classification (whose median standdown needs
        the *whole* batch) and then subset the already-computed
        probabilities to the tier-0 survivors -- identical numbers to
        the serial cascade's survivors-only screen, one round earlier.
        """
        chunks = chunk_evenly(states, self.pool.workers)
        jobs = [
            self.pool.submit(
                shard,
                beam_screen_job,
                (self.solve_key, chunk, want_moments, want_screen, screen_samples),
            )
            for shard, chunk in enumerate(chunks)
        ]
        means: list[np.ndarray] = []
        variances: list[np.ndarray] = []
        probs: list[np.ndarray] = []
        for a_mean, a_var, p, delta in self.pool.gather(jobs):
            self._absorb(delta)
            if a_mean is not None:
                means.append(a_mean)
                variances.append(a_var)
            if p is not None:
                probs.append(p)
        return (
            np.concatenate(means) if means else None,
            np.concatenate(variances) if variances else None,
            np.concatenate(probs) if probs else None,
        )

    def submit_eval(
        self,
        states: list[PlanState],
        parents: list[PlanState],
        incremental: bool,
    ) -> list[_ShardJob]:
        """Dispatch tier-2 full evaluation; pair with :meth:`gather_eval`.

        Each shard receives, alongside its chunk, the expanded parents
        its chunk's children descend from, so the shard-resident
        EvalContext can pin frontiers and serve the delta-propagation
        path.  The split submit/gather lets the search run speculative
        child expansion in the parent while shards evaluate.
        """
        chunks = chunk_evenly(states, self.pool.workers)
        jobs: list[_ShardJob] = []
        for shard, chunk in enumerate(chunks):
            need = {c.parent_key for c in chunk}
            pins = [p for p in parents if p.key in need]
            jobs.append(
                self.pool.submit(
                    shard, beam_eval_job, (self.solve_key, chunk, pins, incremental)
                )
            )
        return jobs

    def gather_eval(self, jobs: list[_ShardJob]) -> list[StateEval]:
        """Chunk evaluations concatenated back into submission order."""
        evals: list[StateEval] = []
        for chunk_evals, delta in self.pool.gather(jobs):
            self._absorb(delta)
            evals.extend(chunk_evals)
        return evals

    def eval_round(
        self,
        states: list[PlanState],
        parents: list[PlanState] = (),
        incremental: bool = False,
    ) -> list[StateEval]:
        """Barrier convenience: submit + gather in one call."""
        return self.gather_eval(self.submit_eval(states, list(parents), incremental))
