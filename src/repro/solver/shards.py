"""Parent-side coordinator for the distributed beam solve.

:class:`ShardedEvaluator` is the thin bridge between
:meth:`GenericSearch.solve` and a :class:`~repro.parallel.ShardPool`:
it partitions each beam iteration's candidate batch into contiguous
chunks, dispatches chunk ``j`` to shard ``j`` (stable affinity keeps the
shard-resident evaluation caches warm across iterations), and
concatenates chunk results back in input order.

Two layers of adaptivity sit on top of the even split (DESIGN.md §15):

* **Cost-model weighted partitioning** -- every worker job reports its
  wall-clock and candidate count; :class:`ShardCostModel` keeps a
  per-(workflow, tier, shard) EWMA of per-candidate cost, and
  :func:`~repro.parallel.partition_weighted` sizes the next round's
  chunks proportionally to each shard's measured speed.  The partition
  is deterministic given the recorded weights (which ride bench/journal
  provenance via :meth:`ShardCostModel.snapshot`).
* **Bounded work stealing** -- large tier-2 chunks are split into a
  primary and a tail; a shard that finishes early takes its own tail
  first, then the largest remaining tail of a straggler.  Each tail is
  dispatched at most once.

Neither layer can perturb the plan.  The determinism contract
(DESIGN.md §13): shards return only *pure per-candidate numbers* --
analytic makespan moments, prefix-MC probabilities, full-fidelity
:class:`~repro.solver.state.StateEval`\\ s, and monotone counter deltas.
Each of those is a function of (compiled problem, state) alone -- never
of batch composition, worker count, or cache temperature -- so any
partition of the batch, evaluated anywhere, concatenates back to the
serial batch bit for bit; partitioning and stealing only re-route
*where* a chunk is computed, and every search *decision* (tier
classification, keep masks, incumbent updates, frontier merge) stays in
the parent process.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.parallel.executor import (
    ShardPool,
    _ShardJob,
    chunk_evenly,
    partition_weighted,
)
from repro.parallel.workers import beam_eval_job, beam_screen_job
from repro.solver.state import PlanState, StateEval

__all__ = ["ShardCostModel", "ShardedEvaluator"]

#: Chunks below this size are never split for stealing: the tail would
#: be too small to outweigh one extra dispatch round-trip.
_STEAL_MIN_CHUNK = 8


class ShardCostModel:
    """Per-(workflow, tier, shard) EWMA of measured per-candidate cost.

    Costs are microseconds per candidate, fed by the elapsed/candidate
    counters every shard job reports.  ``weights`` converts them into
    relative shard *speeds* (1/cost) for the weighted partitioner;
    until a (workflow, tier) pair has at least one observation the
    model abstains (``None``) and callers fall back to even chunking.
    ``snapshot``/``restore`` round-trip the recorded state so a
    partition can be reproduced exactly from bench/journal provenance.
    """

    def __init__(self, alpha: float = 0.3, max_workflows: int = 8):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.max_workflows = int(max_workflows)
        # wf_key -> tier -> per-shard EWMA cost (None = shard unseen).
        self._costs: OrderedDict[str, dict[str, list[float | None]]] = OrderedDict()
        self.observations = 0

    def observe(
        self, wf_key: str, tier: str, shard: int, candidates: int, elapsed_us: int
    ) -> None:
        if candidates <= 0 or elapsed_us <= 0 or shard < 0:
            return
        cost = float(elapsed_us) / float(candidates)
        tiers = self._costs.get(wf_key)
        if tiers is None:
            tiers = self._costs[wf_key] = {}
        self._costs.move_to_end(wf_key)
        while len(self._costs) > self.max_workflows:
            self._costs.popitem(last=False)
        row = tiers.setdefault(tier, [])
        while len(row) <= shard:
            row.append(None)
        prev = row[shard]
        row[shard] = cost if prev is None else (1.0 - self.alpha) * prev + self.alpha * cost
        self.observations += 1

    def weights(self, wf_key: str, tier: str, shards: int) -> list[float] | None:
        """Relative speed per shard slot, or ``None`` before any data.

        A shard without its own observation gets the mean cost of the
        observed ones, so one slow shard cannot starve unseen slots.
        """
        row = self._costs.get(wf_key, {}).get(tier)
        if not row:
            return None
        known = [c for c in row if c is not None and c > 0.0]
        if not known:
            return None
        mean_cost = sum(known) / len(known)
        costs = [
            row[j] if j < len(row) and row[j] else mean_cost for j in range(shards)
        ]
        return [1.0 / c for c in costs]

    def snapshot(self) -> dict:
        """JSON-able record of every EWMA (provenance for replays)."""
        return {
            wf: {tier: list(r) for tier, r in tiers.items()}
            for wf, tiers in self._costs.items()
        }

    def restore(self, snapshot: dict) -> None:
        self._costs.clear()
        for wf, tiers in snapshot.items():
            self._costs[wf] = {
                tier: [None if c is None else float(c) for c in row]
                for tier, row in tiers.items()
            }


class ShardedEvaluator:
    """One solve's view of the shard pool.

    Parameters
    ----------
    pool:
        The engine's persistent :class:`ShardPool`; the current solve's
        compiled problem must already be installed on every shard (the
        begin-solve prologue broadcast by :meth:`Deco._distributor`).
    solve_key:
        Per-solve context token stamped on every job -- a monotone int
        on the legacy path, the arena context key on the shared-memory
        path -- so a stale worker (respawned, or recycled across
        solves) fails loudly instead of evaluating against the wrong
        problem.
    cost_model / wf_key / adaptive:
        The engine's persistent :class:`ShardCostModel`, the workflow's
        content key within it, and whether weighted partitioning plus
        work stealing are active this solve.  Timing observations are
        recorded regardless (so turning adaptivity on later starts
        warm); only the *use* of weights and stealing is gated.

    :attr:`counters` accumulates the worker-side monotone counter
    deltas (makespan/frontier cache hits, delta-propagation work, tier-0
    analytic work, chunk wall-clock) that each job reports -- the
    parent's own caches see none of that traffic, so without this the
    sharded solve would silently under-report its work relative to the
    serial one.  :attr:`imbalance_sum`/:attr:`imbalance_rounds` track
    the max/mean per-shard elapsed ratio per multi-shard round (1.0 ==
    perfectly balanced).
    """

    def __init__(
        self,
        pool: ShardPool,
        solve_key,
        *,
        cost_model: ShardCostModel | None = None,
        wf_key: str = "",
        adaptive: bool = False,
    ):
        self.pool = pool
        self.solve_key = solve_key
        self.cost_model = cost_model
        self.wf_key = wf_key
        self.adaptive = bool(adaptive)
        self.counters: dict[str, int] = {}
        self.imbalance_sum = 0.0
        self.imbalance_rounds = 0
        self._steal: dict | None = None

    @property
    def is_serial(self) -> bool:
        """Whether jobs currently run in-process (pool downgraded or 1 worker)."""
        return self.pool.is_serial

    @property
    def workers(self) -> int:
        return self.pool.workers

    # ------------------------------------------------------------------

    def _absorb(self, delta: dict[str, int]) -> None:
        for key, value in delta.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    def _harvest(self, delta: dict[str, int], tier: str, shard: int,
                 elapsed_by_shard: dict[int, int]) -> None:
        """Absorb one job's counters + feed the cost model and imbalance."""
        self._absorb(delta)
        elapsed = int(delta.get(f"{tier}_elapsed_us", 0))
        candidates = int(delta.get(f"{tier}_candidates", 0))
        elapsed_by_shard[shard] = elapsed_by_shard.get(shard, 0) + elapsed
        if self.cost_model is not None:
            self.cost_model.observe(self.wf_key, tier, shard, candidates, elapsed)

    def _record_imbalance(self, elapsed_by_shard: dict[int, int]) -> None:
        values = [v for v in elapsed_by_shard.values() if v > 0]
        if len(values) < 2:
            return
        mean = sum(values) / len(values)
        if mean > 0:
            self.imbalance_sum += max(values) / mean
            self.imbalance_rounds += 1

    def _partition(self, states: list[PlanState], tier: str) -> list[list[PlanState]]:
        """Contiguous chunks for this round: weighted when the model can.

        Weighted partitions keep empty chunks (slot alignment); callers
        skip them at dispatch.  Even chunking stays the fallback -- and
        the escape hatch (``adaptive_sharding=False``).
        """
        if self.adaptive and self.cost_model is not None and not self.pool.is_serial:
            weights = self.cost_model.weights(self.wf_key, tier, self.pool.workers)
            if weights is not None:
                return partition_weighted(states, weights)
        return chunk_evenly(states, self.pool.workers)

    def screen_round(
        self,
        states: list[PlanState],
        want_moments: bool,
        want_screen: bool,
        screen_samples: int,
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        """Tier-0 moments and/or tier-1 prefix probabilities, one barrier.

        Both tiers ride one sharded round trip: moments and prefix
        probabilities are per-candidate values, so the parent can run
        the global tier-0 classification (whose median standdown needs
        the *whole* batch) and then subset the already-computed
        probabilities to the tier-0 survivors -- identical numbers to
        the serial cascade's survivors-only screen, one round earlier.
        """
        chunks = self._partition(states, "screen")
        dispatched: list[int] = []
        jobs = []
        for shard, chunk in enumerate(chunks):
            if not chunk:
                continue
            dispatched.append(shard)
            jobs.append(
                self.pool.submit(
                    shard,
                    beam_screen_job,
                    (self.solve_key, chunk, want_moments, want_screen, screen_samples),
                )
            )
        means: list[np.ndarray] = []
        variances: list[np.ndarray] = []
        probs: list[np.ndarray] = []
        elapsed_by_shard: dict[int, int] = {}
        for shard, (a_mean, a_var, p, delta) in zip(dispatched, self.pool.gather(jobs)):
            self._harvest(delta, "screen", shard, elapsed_by_shard)
            if a_mean is not None:
                means.append(a_mean)
                variances.append(a_var)
            if p is not None:
                probs.append(p)
        self._record_imbalance(elapsed_by_shard)
        return (
            np.concatenate(means) if means else None,
            np.concatenate(variances) if variances else None,
            np.concatenate(probs) if probs else None,
        )

    # Tier-2 dispatch ---------------------------------------------------

    def _submit_chunk(
        self,
        shard: int,
        chunk: list[PlanState],
        parents: list[PlanState],
        incremental: bool,
    ) -> _ShardJob:
        """One eval job: the chunk plus the expanded parents it descends
        from, so the shard-resident EvalContext can pin frontiers and
        serve the delta-propagation path."""
        need = {c.parent_key for c in chunk}
        pins = [p for p in parents if p.key in need]
        return self.pool.submit(
            shard, beam_eval_job, (self.solve_key, chunk, pins, incremental)
        )

    def submit_eval(
        self,
        states: list[PlanState],
        parents: list[PlanState],
        incremental: bool,
    ) -> list[_ShardJob]:
        """Dispatch tier-2 full evaluation; pair with :meth:`gather_eval`.

        The split submit/gather lets the search run speculative child
        expansion in the parent while shards evaluate.  With adaptive
        sharding on, large chunks are split into a primary plus a tail
        held back for work stealing at gather time.
        """
        chunks = self._partition(states, "eval")
        self._steal = None
        stealing = (
            self.adaptive
            and not self.pool.is_serial
            and sum(1 for c in chunks if c) > 1
        )
        if not stealing:
            return [
                self._submit_chunk(shard, chunk, parents, incremental)
                for shard, chunk in enumerate(chunks)
                if chunk
            ]
        seq = 0
        entries: list[dict] = []  # in-flight: {job, seq, shard}
        tails: list[dict] = []    # held back: {origin, chunk, seq}
        jobs: list[_ShardJob] = []
        for shard, chunk in enumerate(chunks):
            if not chunk:
                continue
            if len(chunk) >= _STEAL_MIN_CHUNK:
                cut = len(chunk) - len(chunk) // 3
                job = self._submit_chunk(shard, chunk[:cut], parents, incremental)
                entries.append({"job": job, "seq": seq, "shard": shard})
                jobs.append(job)
                tails.append({"origin": shard, "chunk": chunk[cut:], "seq": seq + 1})
                seq += 2
            else:
                job = self._submit_chunk(shard, chunk, parents, incremental)
                entries.append({"job": job, "seq": seq, "shard": shard})
                jobs.append(job)
                seq += 1
        self._steal = {
            "entries": entries,
            "tails": tails,
            "parents": parents,
            "incremental": incremental,
        }
        return jobs

    def _next_tail(self, tails: list[dict], shard: int) -> dict:
        """The tail a freed shard should run: its own first, else the
        largest straggler tail (deterministic tie-break by seq)."""
        own = [t for t in tails if t["origin"] == shard]
        if own:
            tail = own[0]
        else:
            tail = max(tails, key=lambda t: (len(t["chunk"]), -t["seq"]))
            self.counters["steals"] = self.counters.get("steals", 0) + 1
        tails.remove(tail)
        return tail

    def gather_eval(self, jobs: list[_ShardJob]) -> list[StateEval]:
        """Chunk evaluations concatenated back into submission order.

        On the stealing path, harvesting any finished primary frees its
        shard to pick up a held-back tail immediately -- the parent
        never waits on a straggler while another shard idles.  Results
        are reassembled by each piece's position in the original batch,
        so the output is bit-identical to the unsplit dispatch.
        """
        steal = self._steal
        self._steal = None
        elapsed_by_shard: dict[int, int] = {}
        if steal is None:
            evals: list[StateEval] = []
            for job, (chunk_evals, delta) in zip(jobs, self.pool.gather(jobs)):
                self._harvest(delta, "eval", job.shard, elapsed_by_shard)
                evals.extend(chunk_evals)
            self._record_imbalance(elapsed_by_shard)
            return evals

        from concurrent.futures import FIRST_COMPLETED, wait

        entries = list(steal["entries"])
        tails = list(steal["tails"])
        parents, incremental = steal["parents"], steal["incremental"]
        results: dict[int, list[StateEval]] = {}
        while entries:
            ready = [
                e for e in entries if e["job"].future is None or e["job"].future.done()
            ]
            if not ready:
                wait(
                    [e["job"].future for e in entries],
                    return_when=FIRST_COMPLETED,
                )
                continue
            for entry in ready:
                entries.remove(entry)
                ((chunk_evals, delta),) = self.pool.gather([entry["job"]])
                self._harvest(delta, "eval", entry["shard"], elapsed_by_shard)
                results[entry["seq"]] = chunk_evals
                if tails:
                    tail = self._next_tail(tails, entry["shard"])
                    job = self._submit_chunk(
                        entry["shard"], tail["chunk"], parents, incremental
                    )
                    entries.append(
                        {"job": job, "seq": tail["seq"], "shard": entry["shard"]}
                    )
        self._record_imbalance(elapsed_by_shard)
        evals = []
        for seq in sorted(results):
            evals.extend(results[seq])
        return evals

    def eval_round(
        self,
        states: list[PlanState],
        parents: list[PlanState] = (),
        incremental: bool = False,
    ) -> list[StateEval]:
        """Barrier convenience: submit + gather in one call."""
        return self.gather_eval(self.submit_eval(states, list(parents), incremental))
