"""WLog term representation.

Standard first-order terms: variables, atoms, numbers, and compound
structures.  Lists follow the Prolog convention -- ``[a, b]`` is
``'.'(a, '.'(b, []))`` with ``[]`` the empty-list atom -- so the
built-in list predicates need no special cases.

Terms are immutable and hashable; variable bindings live in a separate
:class:`~repro.wlog.unify.Bindings` store, never inside terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.common.errors import WLogRuntimeError

if TYPE_CHECKING:  # pragma: no cover
    from repro.wlog.diagnostics import Span

__all__ = [
    "Term",
    "Var",
    "Atom",
    "Num",
    "Struct",
    "Rule",
    "NIL",
    "make_list",
    "list_items",
    "is_list",
    "from_python",
    "to_python",
]


class Term:
    """Base class of all WLog terms."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A logic variable.

    ``ident`` distinguishes fresh renamings of the same source variable:
    the parser produces ``ident=0``; the engine's clause renaming bumps
    it per activation.  ``span`` (when the term came from the parser)
    locates the occurrence in the source text; it never participates in
    equality or hashing.
    """

    name: str
    ident: int = 0
    span: Optional["Span"] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return self.name if self.ident == 0 else f"{self.name}_{self.ident}"


@dataclass(frozen=True, slots=True)
class Atom(Term):
    """A constant symbol (Prolog atom), e.g. ``m1_small`` or ``[]``."""

    name: str
    span: Optional["Span"] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Num(Term):
    """A numeric constant (int or float)."""

    value: float

    def __repr__(self) -> str:
        v = self.value
        if isinstance(v, float) and v.is_integer() and abs(v) < 1e15:
            return str(int(v))
        return str(v)


class Struct(Term):
    """A compound term ``functor(arg1, ..., argN)``."""

    __slots__ = ("functor", "args", "_hash", "span")

    def __init__(self, functor: str, args: Iterable[Term], span: Optional["Span"] = None):
        self.functor = functor
        self.args = tuple(args)
        self.span = span  # source position; excluded from eq/hash
        if not self.args:
            raise WLogRuntimeError(f"zero-arity Struct {functor!r}; use Atom instead")
        self._hash = hash((functor, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> tuple[str, int]:
        """The predicate indicator ``(functor, arity)``."""
        return (self.functor, len(self.args))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Struct)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.functor == "." and len(self.args) == 2:
            items, tail = [], self
            while isinstance(tail, Struct) and tail.functor == "." and len(tail.args) == 2:
                items.append(tail.args[0])
                tail = tail.args[1]
            inner = ", ".join(map(repr, items))
            return f"[{inner}]" if tail == NIL else f"[{inner}|{tail!r}]"
        return f"{self.functor}({', '.join(map(repr, self.args))})"


#: The empty list.
NIL = Atom("[]")


@dataclass(frozen=True)
class Rule:
    """``head :- body.``; a fact is a rule with an empty body.

    ``span`` covers the whole clause in the source text when the rule
    came from the parser; it is ``None`` for rules built
    programmatically and never participates in equality or hashing.
    """

    head: Term
    body: tuple[Term, ...] = ()
    span: Optional["Span"] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if not isinstance(self.head, (Atom, Struct)):
            raise WLogRuntimeError(f"rule head must be an atom or struct, got {self.head!r}")
        object.__setattr__(self, "body", tuple(self.body))

    @property
    def is_fact(self) -> bool:
        return not self.body

    @property
    def indicator(self) -> tuple[str, int]:
        if isinstance(self.head, Atom):
            return (self.head.name, 0)
        return self.head.indicator

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


# List helpers --------------------------------------------------------------

def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a Prolog list term from Python items."""
    result = tail
    for item in reversed(list(items)):
        result = Struct(".", (item, result))
    return result


def list_items(term: Term) -> list[Term]:
    """Extract the items of a proper list term; raises on non-lists."""
    items: list[Term] = []
    while True:
        if term == NIL:
            return items
        if isinstance(term, Struct) and term.functor == "." and len(term.args) == 2:
            items.append(term.args[0])
            term = term.args[1]
        else:
            raise WLogRuntimeError(f"not a proper list: {term!r}")


def is_list(term: Term) -> bool:
    """Whether ``term`` is a proper list."""
    while isinstance(term, Struct) and term.functor == "." and len(term.args) == 2:
        term = term.args[1]
    return term == NIL


# Python bridging ------------------------------------------------------------

def from_python(value) -> Term:
    """Lift a Python value into a term.

    ints/floats -> :class:`Num`; strings -> :class:`Atom`; bools -> the
    atoms ``true``/``false``; lists/tuples -> list terms; terms pass
    through.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return Atom("true" if value else "false")
    if isinstance(value, (int, float)):
        return Num(float(value))
    if isinstance(value, str):
        return Atom(value)
    if isinstance(value, (list, tuple)):
        return make_list([from_python(v) for v in value])
    raise WLogRuntimeError(f"cannot lift Python value {value!r} into a WLog term")


def to_python(term: Term):
    """Lower a ground term to a Python value (inverse of :func:`from_python`)."""
    if isinstance(term, Num):
        v = term.value
        return int(v) if isinstance(v, float) and v.is_integer() else v
    if isinstance(term, Atom):
        if term.name == "true":
            return True
        if term.name == "false":
            return False
        return term.name
    if isinstance(term, Struct):
        if is_list(term):
            return [to_python(t) for t in list_items(term)]
        return (term.functor, *[to_python(a) for a in term.args])
    raise WLogRuntimeError(f"cannot lower non-ground term {term!r} to Python")


def iter_vars(term: Term) -> Iterator[Var]:
    """All variables occurring in ``term`` (with repeats)."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            yield t
        elif isinstance(t, Struct):
            stack.extend(t.args)
