"""Ready-made WLog programs for the paper's three use cases.

:func:`scheduling_program` is the paper's Example 1 verbatim (with the
unit fix ``/3600``: our ``price`` facts are $/hour while ``exetime`` is
in seconds).  :func:`ensemble_program` and :func:`followcost_program`
correspond to the technical-report appendix programs for use cases 2
and 3, expressed over the aggregated facts their drivers generate.
"""

from __future__ import annotations

from repro.common.errors import ValidationError

__all__ = [
    "scheduling_program",
    "ensemble_program",
    "followcost_program",
    "ENSEMBLE_DRIVER_FACTS",
    "FOLLOWCOST_DRIVER_FACTS",
    "bundled_programs",
]

#: Fact families the ensemble driver asserts before solving
#: :func:`ensemble_program` (see ``repro.engine.ensemble``).
ENSEMBLE_DRIVER_FACTS: frozenset[tuple[str, int]] = frozenset(
    {("workflow", 1), ("wscore", 2), ("wcost", 2), ("wfeasible", 1)}
)

#: Fact families the follow-the-cost driver asserts before solving
#: :func:`followcost_program`.  ``region/1`` appears here too because
#: this program has no cloud import; the driver supplies the regions.
FOLLOWCOST_DRIVER_FACTS: frozenset[tuple[str, int]] = frozenset(
    {
        ("workflow", 1),
        ("region", 1),
        ("worigin", 2),
        ("wruntime", 3),
        ("wexeccost", 3),
        ("wmigcost", 3),
    }
)


def _fmt_seconds(seconds: float) -> str:
    if seconds <= 0:
        raise ValidationError(f"duration must be > 0, got {seconds}")
    return repr(float(seconds))


def scheduling_program(
    cloud: str = "amazonec2",
    workflow: str = "montage",
    percentile: float = 95.0,
    deadline_seconds: float = 36_000.0,
    astar: bool = False,
    failure_rate: float | None = None,
    mtbf_seconds: float | None = None,
    reliability_percentile: float | None = None,
    max_retries: int = 3,
) -> str:
    """The workflow scheduling program of the paper's Example 1.

    Minimizes total monetary cost subject to the probabilistic deadline
    ``P(makespan <= deadline) >= percentile%``.

    Passing ``failure_rate`` (and optionally ``mtbf_seconds``) adds a
    ``fault_model(Rate, Mtbf)`` directive so the plan is priced under
    retries; adding ``reliability_percentile`` further requires
    ``P(all tasks succeed within max_retries retries) >= P%`` via a
    ``reliability(P, R)`` constraint.
    """
    if not 0 < percentile <= 100:
        raise ValidationError(f"percentile must be in (0, 100], got {percentile}")
    if reliability_percentile is not None and failure_rate is None:
        raise ValidationError(
            "reliability_percentile requires failure_rate (a fault_model directive)"
        )
    faults = ""
    if failure_rate is not None:
        if not 0 <= failure_rate < 1:
            raise ValidationError(f"failure_rate must be in [0, 1), got {failure_rate}")
        mtbf = float("inf") if mtbf_seconds is None else float(mtbf_seconds)
        if not mtbf > 0:
            raise ValidationError(f"mtbf_seconds must be > 0, got {mtbf_seconds}")
        # The lexer has no scientific notation; an effectively-infinite
        # MTBF is spelled as a plain (huge) decimal literal.
        mtbf_text = f"{min(mtbf, 1e18):.1f}"
        faults = f"fault_model({failure_rate!r}, {mtbf_text}).\n"
        if reliability_percentile is not None:
            if not 0 < reliability_percentile <= 100:
                raise ValidationError(
                    f"reliability_percentile must be in (0, 100], got {reliability_percentile}"
                )
            if max_retries < 0:
                raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
            faults += (
                f"cons P in successprob(P) satisfies "
                f"reliability({reliability_percentile:g}%, {int(max_retries)}).\n"
            )
    hints = ""
    if astar:
        hints = (
            "enabled(astar).\n"
            "cal_g_score(C) :- totalcost(C).\n"
            "est_h_score(C) :- totalcost(C).\n"
        )
    return f"""
import({cloud}).
import({workflow}).
goal minimize Ct in totalcost(Ct).
cons T in maxtime(Path, T) satisfies deadline({percentile:g}%, {_fmt_seconds(deadline_seconds)}).
var configs(Tid, Vid, Con) forall task(Tid) and vm(Vid).
{faults}{hints}
/* calculate the time on the edge from X to Y */
path(X, Y, Y, Tp) :- edge(X, Y), exetime(X, Vid, T), configs(X, Vid, Con),
    Con == 1, Tp is T.
/* calculate the time on the path from X to Y, with Z as the next hop for X */
path(X, Y, Z, Tp) :- edge(X, Z), Z \\== Y, path(Z, Y, _Z2, T1),
    exetime(X, Vid, T), configs(X, Vid, Con), Con == 1, Tp is T + T1.
/* calculate the time on the critical path from root to tail */
maxtime(Path, T) :- setof([Z, T1], path(root, tail, Z, T1), Set),
    max(Set, [Path, T]).
/* calculate the cost of Tid executing on Vid (price is $/hour, time is s) */
cost(Tid, Vid, C) :- price(Vid, Up), exetime(Tid, Vid, T),
    configs(Tid, Vid, Con), C is T * Up * Con / 3600.
/* calculate the total cost of all tasks */
totalcost(Ct) :- findall(C, cost(_Tid, _Vid, C), Bag), sum(Bag, Ct).
"""


def ensemble_program(budget: float, astar: bool = True) -> str:
    """Workflow-ensemble admission (use case 2, tech-report appendix).

    Operates over per-workflow aggregate facts produced by the ensemble
    driver: ``workflow(W)``, ``wscore(W, S)`` (the ``2**-priority``
    score), ``wcost(W, C)`` (optimized cost of running W) and
    ``wfeasible(W)`` (whether W's own probabilistic deadline can be
    met).  The decision variable ``run(W, Con)`` selects the admitted
    subset; the goal maximizes the total score of admitted workflows
    under the ensemble budget (paper Eq. 4-6).
    """
    if budget <= 0:
        raise ValidationError(f"budget must be > 0, got {budget}")
    hints = ""
    if astar:
        hints = (
            "enabled(astar).\n"
            "cal_g_score(S) :- totalscore(S).\n"
            "est_h_score(S) :- totalscore(S).\n"
        )
    return f"""
goal maximize Sc in totalscore(Sc).
cons C in ensemblecost(C) satisfies budget(100%, {budget!r}).
cons admissible.
var run(W, Con) forall workflow(W).
{hints}
admitted(W) :- run(W, Con), Con == 1.
admissible :- \\+ bad_admission.
bad_admission :- admitted(W), \\+ wfeasible(W).
totalscore(Sc) :- findall(S, (admitted(W), wscore(W, S)), Bag), sum(Bag, Sc).
ensemblecost(C) :- findall(X, (admitted(W), wcost(W, X)), Bag), sum(Bag, C).
"""


def followcost_program(deadline_seconds: float) -> str:
    """Follow-the-cost migration (use case 3, tech-report appendix).

    Deterministic optimization (the paper uses static deadlines here to
    assess runtime efficiency).  Facts from the driver, per unfinished
    workflow ``W``: ``workflow(W)``, ``worigin(W, R)`` (current data
    center), ``wruntime(W, R, T)`` (remaining critical-path time if run
    in region R, including the migration transfer), ``wexeccost(W, R,
    C)`` and ``wmigcost(W, R, C)`` (execution / migration monetary
    cost of placing W in R; Eq. 8-9).  The decision variable
    ``wregion(W, R, Con)`` places each workflow in one region.
    """
    return f"""
goal minimize Ct in totalcost(Ct).
cons ontime.
var wregion(W, R, Con) forall workflow(W) and region(R).

placed(W, R) :- wregion(W, R, Con), Con == 1.
wtotal(W, C) :- placed(W, R), wexeccost(W, R, Ce), wmigcost(W, R, Cm),
    C is Ce + Cm.
totalcost(Ct) :- findall(C, wtotal(_W, C), Bag), sum(Bag, Ct).
/* Eq. 10: every workflow's remaining time fits its deadline */
ontime :- \\+ late.
late :- placed(W, R), wruntime(W, R, T), T > {_fmt_seconds(deadline_seconds)}.
"""


def bundled_programs() -> dict[str, tuple[str, frozenset[tuple[str, int]]]]:
    """Every bundled template with the external facts its driver supplies.

    Maps program name to ``(source, extra_predicates)`` so the linter
    (``repro lint --bundled``) and CI can assert they all stay clean.
    """
    return {
        "scheduling": (scheduling_program(), frozenset()),
        "scheduling-astar": (scheduling_program(astar=True), frozenset()),
        "scheduling-faults": (
            scheduling_program(
                failure_rate=0.05,
                mtbf_seconds=36_000.0,
                reliability_percentile=99.0,
                max_retries=3,
            ),
            frozenset(),
        ),
        "ensemble": (ensemble_program(budget=100.0), ENSEMBLE_DRIVER_FACTS),
        "followcost": (followcost_program(36_000.0), FOLLOWCOST_DRIVER_FACTS),
    }
