"""The WLog interpreter: SLD resolution with cut over a clause database.

Implements the unification-driven proof search the paper describes in
Algorithm 1's lines 1-4: ``match`` (head unification) followed by
recursive descent into the matched rule's body.  Probabilistic
evaluation (lines 6-15) lives in :mod:`repro.wlog.probir`, which calls
back into this engine with sampled-fact databases.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from repro.common.errors import WLogRuntimeError
from repro.wlog.builtins import BUILTINS
from repro.wlog.terms import Atom, Num, Rule, Struct, Term, Var, from_python
from repro.wlog.unify import Bindings, resolve, unify

__all__ = ["Database", "Engine", "Solution"]


class Database:
    """Clauses indexed by predicate indicator ``(functor, arity)``.

    First-argument indexing: for predicates whose clauses are all facts
    with a constant first argument (the overwhelmingly common case for
    imported workflow/cloud facts like ``exetime/3``), lookups bucket by
    that constant instead of scanning every clause.
    """

    def __init__(self, rules: Iterable[Rule] = ()):
        self._preds: dict[tuple[str, int], list[Rule]] = {}
        self._index: dict[tuple[str, int], dict[object, list[Rule]] | None] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        ind = rule.indicator
        self._preds.setdefault(ind, []).append(rule)
        self._index.pop(ind, None)  # invalidate lazily-built index

    def add_fact(self, functor: str, *args) -> None:
        """Convenience: add ``functor(args...)`` with Python values lifted."""
        terms = tuple(from_python(a) for a in args)
        head: Term = Struct(functor, terms) if terms else Atom(functor)
        self.add(Rule(head))

    def extend(self, rules: Iterable[Rule]) -> None:
        for rule in rules:
            self.add(rule)

    def clauses(self, indicator: tuple[str, int], first_arg: Term | None = None) -> list[Rule]:
        clauses = self._preds.get(indicator, [])
        if first_arg is None or not clauses:
            return clauses
        key = _index_key(first_arg)
        if key is None:
            return clauses
        index = self._index.get(indicator, _MISSING)
        if index is _MISSING:
            index = self._build_index(indicator, clauses)
            self._index[indicator] = index
        if index is None:
            return clauses
        return index.get(key, [])

    @staticmethod
    def _build_index(indicator, clauses) -> dict[object, list[Rule]] | None:
        index: dict[object, list[Rule]] = {}
        for rule in clauses:
            if not rule.is_fact or not isinstance(rule.head, Struct):
                return None  # mixed predicate: fall back to scans
            key = _index_key(rule.head.args[0])
            if key is None:
                return None
            index.setdefault(key, []).append(rule)
        return index

    def defines(self, indicator: tuple[str, int]) -> bool:
        return indicator in self._preds

    def __len__(self) -> int:
        return sum(len(v) for v in self._preds.values())

    def clone(self) -> "Database":
        """A shallow copy that can be extended without affecting the original."""
        db = Database()
        for ind, clauses in self._preds.items():
            db._preds[ind] = list(clauses)
        return db

    def indicators(self) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(self._preds))


def _index_key(term: Term):
    if isinstance(term, Atom):
        return ("a", term.name)
    if isinstance(term, Num):
        return ("n", term.value)
    return None


_MISSING = object()


class Solution(dict):
    """An answer substitution: source variable name -> ground term."""


class Engine:
    """SLD resolution over a :class:`Database`.

    >>> db = Database()
    >>> db.add_fact("edge", "a", "b")
    >>> db.add_fact("edge", "b", "c")
    >>> engine = Engine(db)
    >>> [s["X"] for s in engine.query("edge(a, X)")]
    [b]
    """

    def __init__(self, db: Database, max_depth: int = 10_000):
        self.db = db
        self.max_depth = max_depth
        self.output: list[str] = []  # captured write/1 output
        self._rename_counter = itertools.count(1)

    # Public query API -----------------------------------------------------

    def query(self, text_or_goals, bindings: Bindings | None = None) -> Iterator[Solution]:
        """Run a query; yields one :class:`Solution` per proof.

        Accepts WLog query text or pre-parsed goal terms.
        """
        if isinstance(text_or_goals, str):
            from repro.wlog.parser import parse_query

            goals = parse_query(text_or_goals)
        elif isinstance(text_or_goals, Term):
            goals = [text_or_goals]
        else:
            goals = list(text_or_goals)
        bindings = bindings or Bindings()
        names: dict[str, Var] = {}
        for g in goals:
            for v in _source_vars(g):
                names.setdefault(v.name, v)
        for _ in self._conj(tuple(goals), 0, bindings, 0, [False]):
            yield Solution({name: resolve(v, bindings) for name, v in names.items()})

    def ask(self, text_or_goals) -> bool:
        """True iff the query has at least one proof."""
        for _ in self.query(text_or_goals):
            return True
        return False

    def first(self, text_or_goals) -> Solution | None:
        """The first answer, or None."""
        for sol in self.query(text_or_goals):
            return sol
        return None

    def all_values(self, text: str, var: str) -> list[Term]:
        """All bindings of ``var`` across the query's solutions."""
        return [sol[var] for sol in self.query(text)]

    # Resolution ------------------------------------------------------------

    def solve_goal(self, goal: Term, bindings: Bindings, depth: int) -> Iterator[bool]:
        """All proofs of a single goal (used by builtins for meta-calls)."""
        return self._conj((goal,), 0, bindings, depth, [False])

    def _conj(
        self,
        goals: tuple[Term, ...],
        i: int,
        bindings: Bindings,
        depth: int,
        cut: list[bool],
    ) -> Iterator[bool]:
        if i == len(goals):
            yield True
            return
        goal = bindings.walk(goals[i])
        if isinstance(goal, Atom) and goal.name == "!":
            yield from self._conj(goals, i + 1, bindings, depth, cut)
            cut[0] = True
            return
        for _ in self._call(goal, bindings, depth):
            yield from self._conj(goals, i + 1, bindings, depth, cut)
            if cut[0]:
                return

    def _call(self, goal: Term, bindings: Bindings, depth: int) -> Iterator[bool]:
        if depth > self.max_depth:
            raise WLogRuntimeError(f"proof depth exceeded {self.max_depth} (likely non-termination)")
        if isinstance(goal, Var):
            raise WLogRuntimeError("cannot call an unbound variable")
        if isinstance(goal, Num):
            raise WLogRuntimeError(f"cannot call a number: {goal!r}")

        indicator = (goal.name, 0) if isinstance(goal, Atom) else goal.indicator
        builtin = BUILTINS.get(indicator)
        if builtin is not None:
            args = goal.args if isinstance(goal, Struct) else ()
            mark = bindings.mark()
            produced = False
            for _ in builtin(self, args, bindings, depth):
                produced = True
                yield True
            if not produced:
                bindings.undo(mark)
            return

        if not self.db.defines(indicator):
            raise WLogRuntimeError(
                f"unknown predicate {indicator[0]}/{indicator[1]} "
                f"(neither defined nor built-in)"
            )

        first_arg = bindings.walk(goal.args[0]) if isinstance(goal, Struct) else None
        for clause in self.db.clauses(indicator, first_arg):
            renamed = self._rename(clause)
            mark = bindings.mark()
            if unify(goal, renamed.head, bindings):
                if renamed.is_fact:
                    yield True
                else:
                    clause_cut = [False]
                    yield from self._conj(renamed.body, 0, bindings, depth + 1, clause_cut)
                    if clause_cut[0]:
                        bindings.undo(mark)
                        return
            bindings.undo(mark)

    # Clause renaming ---------------------------------------------------------

    def _rename(self, clause: Rule) -> Rule:
        if clause.is_fact and not _has_vars(clause.head):
            return clause
        ident = next(self._rename_counter)
        mapping: dict[Var, Var] = {}

        def walk(term: Term) -> Term:
            if isinstance(term, Var):
                fresh = mapping.get(term)
                if fresh is None:
                    fresh = Var(term.name, ident)
                    mapping[term] = fresh
                return fresh
            if isinstance(term, Struct):
                return Struct(term.functor, tuple(walk(a) for a in term.args))
            return term

        return Rule(walk(clause.head), tuple(walk(g) for g in clause.body))


def _has_vars(term: Term) -> bool:
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            return True
        if isinstance(t, Struct):
            stack.extend(t.args)
    return False


def _source_vars(term: Term) -> Iterator[Var]:
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var) and not t.name.startswith("_"):
            yield t
        elif isinstance(t, Struct):
            stack.extend(t.args)
