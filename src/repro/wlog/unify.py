"""Unification with a backtrackable binding trail.

The engine binds variables destructively into one :class:`Bindings`
store and undoes bindings on backtracking via trail marks -- the
standard WAM-style discipline, which keeps unification allocation-free
on the success path.
"""

from __future__ import annotations

from repro.wlog.terms import Atom, Num, Struct, Term, Var

__all__ = ["Bindings", "unify", "resolve"]


class Bindings:
    """A mutable variable-binding store with an undo trail."""

    __slots__ = ("_map", "_trail")

    def __init__(self):
        self._map: dict[Var, Term] = {}
        self._trail: list[Var] = []

    def mark(self) -> int:
        """Current trail position; pass to :meth:`undo` to backtrack."""
        return len(self._trail)

    def undo(self, mark: int) -> None:
        """Unbind everything bound since ``mark``."""
        trail = self._trail
        while len(trail) > mark:
            del self._map[trail.pop()]

    def bind(self, var: Var, term: Term) -> None:
        self._map[var] = term
        self._trail.append(var)

    def walk(self, term: Term) -> Term:
        """Follow variable bindings to the representative term (shallow)."""
        while isinstance(term, Var):
            bound = self._map.get(term)
            if bound is None:
                return term
            term = bound
        return term

    def __len__(self) -> int:
        return len(self._map)


def unify(a: Term, b: Term, bindings: Bindings) -> bool:
    """Unify ``a`` and ``b``; on failure the trail is restored.

    No occurs check (standard Prolog behaviour); WLog programs in this
    domain never build cyclic terms.
    """
    mark = bindings.mark()
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        x = bindings.walk(x)
        y = bindings.walk(y)
        if x is y:
            continue
        if isinstance(x, Var):
            bindings.bind(x, y)
        elif isinstance(y, Var):
            bindings.bind(y, x)
        elif isinstance(x, Atom) and isinstance(y, Atom):
            if x.name != y.name:
                bindings.undo(mark)
                return False
        elif isinstance(x, Num) and isinstance(y, Num):
            if x.value != y.value:
                bindings.undo(mark)
                return False
        elif isinstance(x, Struct) and isinstance(y, Struct):
            if x.functor != y.functor or len(x.args) != len(y.args):
                bindings.undo(mark)
                return False
            stack.extend(zip(x.args, y.args))
        else:
            bindings.undo(mark)
            return False
    return True


def resolve(term: Term, bindings: Bindings) -> Term:
    """Deep-substitute bindings into ``term`` (for answers/snapshots)."""
    term = bindings.walk(term)
    if isinstance(term, Struct):
        args = tuple(resolve(a, bindings) for a in term.args)
        if args == term.args:
            return term
        return Struct(term.functor, args)
    return term
