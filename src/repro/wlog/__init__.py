"""WLog: the paper's declarative language for provisioning problems.

WLog extends Prolog (Section 4) with workflow/cloud constructs:

* ``goal`` / ``cons`` / ``var`` directives declaring the optimization
  goal, the constraints and the decision variables;
* ``import(daxfile)`` and ``import(cloud)`` fact imports;
* probabilistic constraint built-ins ``deadline(p%, d)`` and
  ``budget(p%, b)``;
* solver hints: ``enabled(astar)`` with ``cal_g_score``/``est_h_score``.

Layering (bottom-up):

* :mod:`~repro.wlog.terms` -- terms, rules, substitution-free AST;
* :mod:`~repro.wlog.lexer` / :mod:`~repro.wlog.parser` -- WLog surface
  syntax (Prolog core + directives + ``95%``/``10h`` literals);
* :mod:`~repro.wlog.unify` -- unification with a backtrackable trail;
* :mod:`~repro.wlog.builtins` -- ``is``, comparisons, ``findall``,
  ``setof``, ``sum``, ``max`` and friends (rendered blue in the paper);
* :mod:`~repro.wlog.engine` -- SLD resolution with cut;
* :mod:`~repro.wlog.program` -- the parsed WLog program object
  (directives + rules);
* :mod:`~repro.wlog.imports` -- the fact registry behind ``import``;
* :mod:`~repro.wlog.probir` -- the probabilistic IR and Monte Carlo
  query evaluation (the paper's Algorithm 1);
* :mod:`~repro.wlog.library` -- ready-made WLog programs for the three
  use cases (Example 1 and the technical-report appendix programs);
* :mod:`~repro.wlog.diagnostics` / :mod:`~repro.wlog.analysis` -- the
  static analyzer: structured diagnostics with source spans, surfaced
  through ``repro lint`` and the engine's fail-fast gate.
"""

from repro.common.errors import WLogAnalysisError
from repro.wlog.terms import Atom, Num, Struct, Var, Term, Rule, make_list, from_python, to_python
from repro.wlog.parser import parse_program, parse_term, parse_query
from repro.wlog.engine import Database, Engine
from repro.wlog.program import WLogProgram, Directive, GoalSpec, ConsSpec, VarSpec
from repro.wlog.imports import ImportRegistry
from repro.wlog.probir import ProbabilisticIR, ProbFact, translate
from repro.wlog.pretty import format_program, format_rule, format_term
from repro.wlog.diagnostics import Diagnostic, Span, render_diagnostics
from repro.wlog.analysis import analyze_program, check_program

__all__ = [
    "Atom",
    "Num",
    "Struct",
    "Var",
    "Term",
    "Rule",
    "make_list",
    "from_python",
    "to_python",
    "parse_program",
    "parse_term",
    "parse_query",
    "Database",
    "Engine",
    "WLogProgram",
    "Directive",
    "GoalSpec",
    "ConsSpec",
    "VarSpec",
    "ImportRegistry",
    "ProbabilisticIR",
    "ProbFact",
    "translate",
    "format_program",
    "format_rule",
    "format_term",
    "Diagnostic",
    "Span",
    "render_diagnostics",
    "analyze_program",
    "check_program",
    "WLogAnalysisError",
]
