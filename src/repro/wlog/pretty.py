"""WLog pretty-printer: terms, rules and programs back to source text.

The inverse of the parser: programs constructed programmatically (e.g.
fact bases built by the drivers, or IR realizations) can be dumped as
valid WLog source and re-parsed losslessly.  Used by the debugging
surfaces and asserted round-trip in the test suite.
"""

from __future__ import annotations

from repro.common.errors import WLogError
from repro.wlog.program import ConsSpec, GoalSpec, VarSpec, WLogProgram
from repro.wlog.terms import Atom, Num, Rule, Struct, Term, Var, is_list, list_items

__all__ = ["format_term", "format_rule", "format_program"]

#: Binary operators printed infix, with their surrounding spacing.
_INFIX = {"is", "==", "\\==", "=<", ">=", "=:=", "=\\=", "<", ">", "=", "+", "-", "*", "/"}

#: Atom names that need quoting to re-parse as a single atom.
def _atom_text(name: str) -> str:
    if name and (name[0].islower() and all(c.isalnum() or c == "_" for c in name)):
        return name
    if name in ("[]", "!"):
        return name
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def format_term(term: Term) -> str:
    """Render one term as parseable WLog text."""
    if isinstance(term, Var):
        return term.name if term.ident == 0 else f"{term.name}_{term.ident}"
    if isinstance(term, Num):
        value = term.value
        if float(value).is_integer() and abs(value) < 1e15:
            return str(int(value))
        return repr(float(value))
    if isinstance(term, Atom):
        return _atom_text(term.name)
    if isinstance(term, Struct):
        if term.functor == "." and term.arity == 2:
            if is_list(term):
                inner = ", ".join(format_term(t) for t in list_items(term))
                return f"[{inner}]"
            # Improper list: [H|T].
            head, tail = term.args
            return f"[{format_term(head)}|{format_term(tail)}]"
        if term.functor in _INFIX and term.arity == 2:
            left, right = term.args
            return f"({format_term(left)} {term.functor} {format_term(right)})"
        if term.functor == "," and term.arity == 2:
            return f"({format_term(term.args[0])}, {format_term(term.args[1])})"
        if term.functor == "\\+" and term.arity == 1:
            return f"\\+ {format_term(term.args[0])}"
        args = ", ".join(format_term(a) for a in term.args)
        return f"{_atom_text(term.functor)}({args})"
    raise WLogError(f"cannot format {term!r}")


def format_rule(rule: Rule) -> str:
    """Render one rule/fact as a clause ending in a period."""
    head = format_term(rule.head)
    if rule.is_fact:
        return f"{head}."
    body = ", ".join(format_term(g) for g in rule.body)
    return f"{head} :- {body}."


def _format_goal(spec: GoalSpec) -> str:
    return f"goal {spec.mode} {format_term(spec.objective)} in {format_term(spec.predicate)}."


def _format_cons(spec: ConsSpec) -> str:
    parts = []
    if spec.variable is not None:
        parts.append(f"{format_term(spec.variable)} in {format_term(spec.predicate)}")
    else:
        parts.append(format_term(spec.predicate))
    if spec.requirement is not None:
        parts.append(f"satisfies {format_term(spec.requirement)}")
    return "cons " + " ".join(parts) + "."


def _format_fault_num(value: float) -> str:
    # The lexer has no scientific notation, so huge values (e.g. an
    # effectively-infinite MTBF) must be spelled as plain decimals.
    if value == float("inf"):
        value = 1e18
    text = format_term(Num(value))
    if "e" in text or "E" in text:
        text = f"{value:.1f}"
    return text


def _format_var(spec: VarSpec) -> str:
    text = f"var {format_term(spec.declaration)}"
    if spec.domains:
        text += " forall " + " and ".join(format_term(d) for d in spec.domains)
    return text + "."


def format_program(program: WLogProgram) -> str:
    """Render a whole program: directives first, then the rules.

    The output re-parses to an equivalent program (same directives, same
    rules up to formatting).
    """
    lines: list[str] = []
    for name in program.imports:
        lines.append(f"import({_atom_text(name)}).")
    if program.goal is not None:
        lines.append(_format_goal(program.goal))
    for cons in program.constraints:
        lines.append(_format_cons(cons))
    if program.var_spec is not None:
        lines.append(_format_var(program.var_spec))
    if program.fault_spec is not None:
        spec = program.fault_spec
        lines.append(
            f"fault_model({_format_fault_num(spec.rate)}, "
            f"{_format_fault_num(spec.mtbf)})."
        )
    for feature in program.enabled:
        lines.append(f"enabled({_atom_text(feature)}).")
    if lines and program.rules:
        lines.append("")
    for rule in program.rules:
        lines.append(format_rule(rule))
    return "\n".join(lines) + "\n"
