"""WLog/Prolog built-in predicates.

The built-ins the paper's listings use (``is``, ``sum``, ``max``,
``setof``, ``findall``, comparison operators) plus the standard list
toolbox.  Each built-in is a function ``fn(engine, args, bindings,
depth)`` returning an iterator that yields once per solution; bindings
made inside must be undone by the caller's trail discipline (the engine
brackets every builtin call with a trail mark).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterator

from repro.common.errors import WLogRuntimeError
from repro.wlog.terms import (
    Atom,
    Num,
    Struct,
    Term,
    Var,
    is_list,
    list_items,
    make_list,
)
from repro.wlog.unify import Bindings, resolve, unify

if TYPE_CHECKING:  # pragma: no cover
    from repro.wlog.engine import Engine

__all__ = ["BUILTINS", "builtin_arities", "evaluate_arith", "term_key"]

BuiltinFn = Callable[["Engine", tuple[Term, ...], Bindings, int], Iterator[bool]]

BUILTINS: dict[tuple[str, int], BuiltinFn] = {}


def builtin_arities(name: str) -> tuple[int, ...]:
    """The arities the built-in ``name`` is registered at (may be empty).

    Used by the static analyzer to distinguish an undefined predicate
    from a wrong-arity call to a known built-in.
    """
    return tuple(sorted(a for (n, a) in BUILTINS if n == name))


def _builtin(name: str, arity: int):
    def register(fn: BuiltinFn) -> BuiltinFn:
        BUILTINS[(name, arity)] = fn
        return fn

    return register


# Arithmetic -----------------------------------------------------------------

_ARITH_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "mod": lambda a, b: math.fmod(a, b),
    "min": min,
    "max": max,
    "pow": lambda a, b: a**b,
}
_ARITH_UNOPS = {
    "abs": abs,
    "sqrt": math.sqrt,
    "log": math.log,
    "exp": math.exp,
    "floor": math.floor,
    "ceil": math.ceil,
    "-": lambda a: -a,
}


def evaluate_arith(term: Term, bindings: Bindings) -> float:
    """Evaluate an arithmetic expression term to a Python float."""
    term = bindings.walk(term)
    if isinstance(term, Num):
        return float(term.value)
    if isinstance(term, Var):
        raise WLogRuntimeError(f"arithmetic on unbound variable {term!r}")
    if isinstance(term, Struct):
        if len(term.args) == 2 and term.functor in _ARITH_BINOPS:
            a = evaluate_arith(term.args[0], bindings)
            b = evaluate_arith(term.args[1], bindings)
            if term.functor == "/" and b == 0:
                raise WLogRuntimeError("division by zero")
            return float(_ARITH_BINOPS[term.functor](a, b))
        if len(term.args) == 1 and term.functor in _ARITH_UNOPS:
            return float(_ARITH_UNOPS[term.functor](evaluate_arith(term.args[0], bindings)))
    raise WLogRuntimeError(f"not an arithmetic expression: {term!r}")


@_builtin("is", 2)
def _is(engine, args, bindings, depth):
    value = Num(evaluate_arith(args[1], bindings))
    if unify(args[0], value, bindings):
        yield True


def _compare(op: str):
    checks = {
        "=:=": lambda a, b: a == b,
        "=\\=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        ">": lambda a, b: a > b,
        "=<": lambda a, b: a <= b,
        ">=": lambda a, b: a >= b,
    }
    check = checks[op]

    def fn(engine, args, bindings, depth):
        if check(evaluate_arith(args[0], bindings), evaluate_arith(args[1], bindings)):
            yield True

    return fn


for _op in ("=:=", "=\\=", "<", ">", "=<", ">="):
    BUILTINS[(_op, 2)] = _compare(_op)


# Unification / identity ------------------------------------------------------


@_builtin("=", 2)
def _unify(engine, args, bindings, depth):
    if unify(args[0], args[1], bindings):
        yield True


@_builtin("==", 2)
def _struct_eq(engine, args, bindings, depth):
    a = resolve(args[0], bindings)
    b = resolve(args[1], bindings)
    # Numeric == compares by value, per the paper's `Con==1` usage.
    if isinstance(a, Num) and isinstance(b, Num):
        if a.value == b.value:
            yield True
    elif a == b:
        yield True


@_builtin("\\==", 2)
def _struct_neq(engine, args, bindings, depth):
    a = resolve(args[0], bindings)
    b = resolve(args[1], bindings)
    if isinstance(a, Num) and isinstance(b, Num):
        if a.value != b.value:
            yield True
    elif a != b:
        yield True


# Control ----------------------------------------------------------------------


@_builtin("true", 0)
def _true(engine, args, bindings, depth):
    yield True


@_builtin("fail", 0)
def _fail(engine, args, bindings, depth):
    return
    yield True  # pragma: no cover


@_builtin("\\+", 1)
def _naf(engine, args, bindings, depth):
    """Negation as failure."""
    mark = bindings.mark()
    for _ in engine.solve_goal(args[0], bindings, depth + 1):
        bindings.undo(mark)
        return
    bindings.undo(mark)
    yield True


BUILTINS[("not", 1)] = BUILTINS[("\\+", 1)]


@_builtin(",", 2)
def _conj2(engine, args, bindings, depth):
    """Explicit conjunction term (from parenthesized goals)."""
    for _ in engine.solve_goal(args[0], bindings, depth + 1):
        yield from engine.solve_goal(args[1], bindings, depth + 1)


@_builtin("call", 1)
def _call(engine, args, bindings, depth):
    goal = bindings.walk(args[0])
    if isinstance(goal, Var):
        raise WLogRuntimeError("call/1 on unbound variable")
    yield from engine.solve_goal(goal, bindings, depth + 1)


# Aggregation -------------------------------------------------------------------


@_builtin("findall", 3)
def _findall(engine, args, bindings, depth):
    template, goal, result = args
    collected: list[Term] = []
    mark = bindings.mark()
    for _ in engine.solve_goal(goal, bindings, depth + 1):
        collected.append(resolve(template, bindings))
    bindings.undo(mark)
    if unify(result, make_list(collected), bindings):
        yield True


def term_key(term: Term):
    """A total order on ground terms (standard order of terms, adapted)."""
    if isinstance(term, Var):
        return (0, term.name, term.ident)
    if isinstance(term, Num):
        return (1, term.value)
    if isinstance(term, Atom):
        return (2, term.name)
    assert isinstance(term, Struct)
    return (3, len(term.args), term.functor, tuple(term_key(a) for a in term.args))


@_builtin("setof", 3)
def _setof(engine, args, bindings, depth):
    """Simplified setof/3: sorted unique solutions; fails when empty."""
    template, goal, result = args
    collected: list[Term] = []
    mark = bindings.mark()
    for _ in engine.solve_goal(goal, bindings, depth + 1):
        snapshot = resolve(template, bindings)
        if snapshot not in collected:
            collected.append(snapshot)
    bindings.undo(mark)
    if not collected:
        return
    collected.sort(key=term_key)
    if unify(result, make_list(collected), bindings):
        yield True


@_builtin("bagof", 3)
def _bagof(engine, args, bindings, depth):
    """Simplified bagof/3: like findall but fails when empty."""
    template, goal, result = args
    collected: list[Term] = []
    mark = bindings.mark()
    for _ in engine.solve_goal(goal, bindings, depth + 1):
        collected.append(resolve(template, bindings))
    bindings.undo(mark)
    if not collected:
        return
    if unify(result, make_list(collected), bindings):
        yield True


def _aggregate_numeric(op):
    def fn(engine, args, bindings, depth):
        items = list_items(resolve(args[0], bindings))
        if not items:
            if op is sum:
                if unify(args[1], Num(0.0), bindings):
                    yield True
            return
        values = [evaluate_arith(i, bindings) for i in items]
        if unify(args[1], Num(float(op(values))), bindings):
            yield True

    return fn


BUILTINS[("sum", 2)] = _aggregate_numeric(sum)


def _extremum(pick):
    """max/2 and min/2 over a list.

    Numeric elements compare by value.  List elements (the paper's
    ``max(Set, [Path, T])`` over ``[Z, T1]`` pairs) compare by their
    *last* element, which is the measured quantity by convention.
    """

    def fn(engine, args, bindings, depth):
        items = list_items(resolve(args[0], bindings))
        if not items:
            return

        def key(item: Term):
            if isinstance(item, Num):
                return float(item.value)
            if is_list(item):
                sub = list_items(item)
                if sub and isinstance(sub[-1], Num):
                    return float(sub[-1].value)
            raise WLogRuntimeError(f"cannot order element {item!r} in max/min")

        best = pick(items, key=key)
        if unify(args[1], best, bindings):
            yield True

    return fn


BUILTINS[("max", 2)] = _extremum(max)
BUILTINS[("min", 2)] = _extremum(min)


# Lists ---------------------------------------------------------------------------


@_builtin("length", 2)
def _length(engine, args, bindings, depth):
    lst = resolve(args[0], bindings)
    if is_list(lst):
        if unify(args[1], Num(float(len(list_items(lst)))), bindings):
            yield True
        return
    # Generative mode: length(L, 3) builds a fresh 3-variable list.
    n = bindings.walk(args[1])
    if isinstance(n, Num) and float(n.value).is_integer() and n.value >= 0:
        fresh = make_list([Var(f"_L{i}", ident=id(args)) for i in range(int(n.value))])
        if unify(args[0], fresh, bindings):
            yield True
        return
    raise WLogRuntimeError("length/2 needs a list or a non-negative integer")


@_builtin("member", 2)
def _member(engine, args, bindings, depth):
    lst = bindings.walk(args[1])
    for item in list_items(resolve(lst, bindings)):
        mark = bindings.mark()
        if unify(args[0], item, bindings):
            yield True
        bindings.undo(mark)


@_builtin("append", 3)
def _append(engine, args, bindings, depth):
    a = bindings.walk(args[0])
    b = bindings.walk(args[1])
    c = bindings.walk(args[2])
    a_res = resolve(a, bindings)
    if is_list(a_res):
        items = list_items(a_res)
        if unify(args[2], make_list(items, tail=b), bindings):
            yield True
        return
    c_res = resolve(c, bindings)
    if is_list(c_res):
        items = list_items(c_res)
        for split in range(len(items) + 1):
            mark = bindings.mark()
            if unify(a, make_list(items[:split]), bindings) and unify(
                b, make_list(items[split:]), bindings
            ):
                yield True
            bindings.undo(mark)
        return
    raise WLogRuntimeError("append/3 needs at least one proper list")


@_builtin("nth0", 3)
def _nth0(engine, args, bindings, depth):
    idx = bindings.walk(args[0])
    items = list_items(resolve(args[1], bindings))
    if isinstance(idx, Num):
        i = int(idx.value)
        if 0 <= i < len(items) and unify(args[2], items[i], bindings):
            yield True
        return
    for i, item in enumerate(items):
        mark = bindings.mark()
        if unify(args[0], Num(float(i)), bindings) and unify(args[2], item, bindings):
            yield True
        bindings.undo(mark)


@_builtin("reverse", 2)
def _reverse(engine, args, bindings, depth):
    items = list_items(resolve(args[0], bindings))
    if unify(args[1], make_list(list(reversed(items))), bindings):
        yield True


@_builtin("last", 2)
def _last(engine, args, bindings, depth):
    items = list_items(resolve(args[0], bindings))
    if items and unify(args[1], items[-1], bindings):
        yield True


@_builtin("nth1", 3)
def _nth1(engine, args, bindings, depth):
    """1-based indexing (the ISO convention, alongside nth0/3)."""
    idx = bindings.walk(args[0])
    items = list_items(resolve(args[1], bindings))
    if isinstance(idx, Num):
        i = int(idx.value) - 1
        if 0 <= i < len(items) and unify(args[2], items[i], bindings):
            yield True
        return
    for i, item in enumerate(items, start=1):
        mark = bindings.mark()
        if unify(args[0], Num(float(i)), bindings) and unify(args[2], item, bindings):
            yield True
        bindings.undo(mark)


@_builtin("forall", 2)
def _forall(engine, args, bindings, depth):
    """forall(Cond, Action): no solution of Cond fails Action."""
    cond, action = args
    mark = bindings.mark()
    ok = True
    for _ in engine.solve_goal(cond, bindings, depth + 1):
        inner = bindings.mark()
        satisfied = False
        for _ in engine.solve_goal(action, bindings, depth + 1):
            satisfied = True
            break
        bindings.undo(inner)
        if not satisfied:
            ok = False
            break
    bindings.undo(mark)
    if ok:
        yield True


@_builtin("msort", 2)
def _msort(engine, args, bindings, depth):
    items = list_items(resolve(args[0], bindings))
    items.sort(key=term_key)
    if unify(args[1], make_list(items), bindings):
        yield True


@_builtin("between", 3)
def _between(engine, args, bindings, depth):
    lo = evaluate_arith(args[0], bindings)
    hi = evaluate_arith(args[1], bindings)
    x = bindings.walk(args[2])
    if isinstance(x, Num):
        if lo <= x.value <= hi:
            yield True
        return
    i = int(math.ceil(lo))
    while i <= hi:
        mark = bindings.mark()
        if unify(args[2], Num(float(i)), bindings):
            yield True
        bindings.undo(mark)
        i += 1


# Output (captured, for debugging WLog programs) -----------------------------------


@_builtin("write", 1)
def _write(engine, args, bindings, depth):
    engine.output.append(repr(resolve(args[0], bindings)))
    yield True


@_builtin("nl", 0)
def _nl(engine, args, bindings, depth):
    engine.output.append("\n")
    yield True
