"""Structured diagnostics for WLog static analysis.

A :class:`Diagnostic` is one finding of the analyzer in
:mod:`repro.wlog.analysis`: a severity (``error`` or ``warning``), a
stable check id (``E201``), the check's kebab-case name
(``undefined-predicate``), a human message, and an optional
:class:`Span` locating the finding in the source text.

Rendering is shared with the parser's error path:
:func:`render_diagnostic` uses the same caret-excerpt helper
(:func:`repro.common.errors.format_source_context`) that
:class:`~repro.common.errors.WLogSyntaxError` uses, so lint findings
and syntax errors point at programs identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import format_source_context

__all__ = [
    "Span",
    "Diagnostic",
    "CHECKS",
    "CHECK_EXAMPLES",
    "ERROR",
    "WARNING",
    "render_diagnostic",
    "render_diagnostics",
    "checks_markdown",
]

ERROR = "error"
WARNING = "warning"

#: The check catalog: id -> (name, default severity, one-line description).
CHECKS: dict[str, tuple[str, str, str]] = {
    "E101": ("syntax-error", ERROR, "the source text could not be tokenized or parsed"),
    "E201": ("undefined-predicate", ERROR, "a called predicate is neither defined, built-in, imported nor declared"),
    "E202": ("arity-mismatch", ERROR, "a predicate is called with an arity no definition or built-in accepts"),
    "E203": ("bad-requirement", ERROR, "a cons requirement is not a well-formed deadline/2, budget/2 or reliability/2"),
    "E204": ("malformed-directive", ERROR, "an import/enabled form does not take a plain atom argument"),
    "E205": ("unbound-arithmetic", ERROR, "a variable is unbound at its first use inside is/2 or a comparison"),
    "E206": ("unsafe-negation", ERROR, "a variable occurs free under \\+ (negation as failure cannot bind it)"),
    "E207": ("non-stratified", ERROR, "negation cycle: a predicate depends on its own negation"),
    "E208": ("duplicate-directive", ERROR, "the program declares more than one goal or var directive"),
    "E209": ("detached-objective", ERROR, "the goal/cons variable does not occur in its measured predicate"),
    "E210": ("unknown-import", ERROR, "an import names a source not present in the registry"),
    "E211": ("bad-fault-model", ERROR, "a fault_model directive is malformed, or reliability lacks a fault_model"),
    "W301": ("singleton-variable", WARNING, "a named variable occurs exactly once in its clause"),
    "W302": ("unknown-hint", WARNING, "enabled(...) names a solver hint the engine does not know"),
    "W303": ("duplicate-rule", WARNING, "a rule repeats an earlier rule up to variable renaming"),
    "W304": ("unreachable-rule", WARNING, "a rule's predicate is not reachable from any directive"),
    "W305": ("builtin-shadow", WARNING, "a rule defines a built-in predicate and will never be selected"),
    "W306": ("suspicious-percentile", WARNING, "a requirement level <= 1 looks like a fraction, not a percent"),
    "W307": ("misspelled-directive", WARNING, "a fact looks like a misspelled import/enabled directive"),
    # E4xx/W4xx come from the semantic passes in :mod:`repro.analysis`
    # (abstract interpretation over the compiled constraint IR), not from
    # the syntactic analyzer above.
    "E401": ("deadline-unreachable", ERROR, "the best-case makespan already exceeds the deadline bound"),
    "E402": ("budget-unreachable", ERROR, "the cheapest possible plan already exceeds the budget bound"),
    "E403": ("reliability-unreachable", ERROR, "the declared fault model cannot reach the required success probability"),
    "W401": ("vacuous-deadline", WARNING, "the worst-case makespan meets the deadline: the constraint never binds"),
    "W402": ("vacuous-budget", WARNING, "the costliest possible plan fits the budget: the constraint never binds"),
    "W403": ("constant-condition", WARNING, "a ground body condition is statically decidable (fold it away)"),
    "W404": ("dead-rule", WARNING, "a rule body contains a statically false condition: the rule can never fire"),
    "W405": ("pragma-shadowed-fact", WARNING, "an in-source fact duplicates a family declared via a lint-assume pragma"),
}

#: One minimal WLog excerpt per check, for ``repro lint --explain`` and
#: the generated ``docs/checks.md`` catalog.  Illustrative, not executed:
#: the E4xx/W4xx examples assume the imports resolve against a registry.
CHECK_EXAMPLES: dict[str, str] = {
    "E101": "goal minimize Ct in totalcost(Ct",
    "E201": "totalcost(C) :- sumcosts(C).",
    "E202": "cost(T, C) :- exetime(T, C).",
    "E203": "cons T in maxtime(P, T) satisfies deadline(200%, 36000.0).",
    "E204": "import(Cloud).",
    "E205": "late(T) :- T > Limit.",
    "E206": "ok :- \\+ bad(X).",
    "E207": "p(X) :- \\+ q(X).\nq(X) :- p(X).",
    "E208": "goal minimize C in totalcost(C).\ngoal minimize T in maxtime(P, T).",
    "E209": "goal minimize Ct in totalcost(C).",
    "E210": "import(amazone2c).",
    "E211": "cons P in successprob(P) satisfies reliability(99%, 3).",
    "W301": "cost(Tid, C) :- price(Vid, C).",
    "W302": "enabled(astart).",
    "W303": "p(X) :- q(X).\np(Y) :- q(Y).",
    "W304": "helper(X) :- task(X).",
    "W305": "sum(L, S) :- mysum(L, S).",
    "W306": "cons T in maxtime(P, T) satisfies deadline(0.95%, 36000.0).",
    "W307": "imprt(amazonec2).",
    "E401": "cons T in maxtime(P, T) satisfies deadline(96%, 5.0).",
    "E402": "cons C in totalcost(C) satisfies budget(100%, 0.0001).",
    "E403": "fault_model(0.9, 60.0).\ncons P in successprob(P) satisfies reliability(99%, 0).",
    "W401": "cons T in maxtime(P, T) satisfies deadline(96%, 900000000.0).",
    "W402": "cons C in totalcost(C) satisfies budget(100%, 50000.0).",
    "W403": "fast :- 1 < 2, speedy.",
    "W404": "never :- 2 < 1, task(T).",
    "W405": "/* lint: assume wscore/2 */\nwscore(w1, 0.5).",
}


def checks_markdown() -> str:
    """The check catalog as a markdown document (``docs/checks.md``).

    Generated from :data:`CHECKS` and :data:`CHECK_EXAMPLES` so the
    documentation can never drift from the registry: a test fails when a
    check is added without an example, and ``repro lint --explain``
    prints exactly this text.
    """
    lines = [
        "# WLog check catalog",
        "",
        "Generated from `repro.wlog.diagnostics.CHECKS` by",
        "`repro lint --explain`; do not edit by hand.",
        "",
        "E1xx/E2xx/W3xx come from the syntactic analyzer",
        "(`repro lint`); E4xx/W4xx come from the semantic passes over the",
        "compiled constraint IR (`repro analyze`).",
        "",
    ]
    for code, (name, severity, description) in CHECKS.items():
        lines.append(f"## {code} `{name}` ({severity})")
        lines.append("")
        lines.append(f"{description[0].upper()}{description[1:]}.")
        example = CHECK_EXAMPLES.get(code)
        if example is not None:
            lines.append("")
            lines.append("```prolog")
            lines.extend(example.splitlines())
            lines.append("```")
        lines.append("")
    return "\n".join(lines)


@dataclass(frozen=True)
class Span:
    """A half-open source region; positions are 1-based, end exclusive."""

    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    check: str  # stable id, e.g. "E201"
    severity: str  # "error" | "warning"
    message: str
    span: Span | None = None

    @property
    def name(self) -> str:
        """The check's kebab-case name, e.g. ``undefined-predicate``."""
        return CHECKS[self.check][0] if self.check in CHECKS else self.check

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def sort_key(self) -> tuple:
        span = self.span or Span(0, 0)
        return (span.line, span.column, self.check, self.message)

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``repro lint --format=json``)."""
        out: dict = {
            "check": self.check,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            out["line"] = self.span.line
            out["column"] = self.span.column
            if self.span.end_column:
                out["end_line"] = self.span.end_line
                out["end_column"] = self.span.end_column
        return out

    def __str__(self) -> str:
        where = f"{self.span}: " if self.span else ""
        return f"{where}{self.severity}[{self.check} {self.name}] {self.message}"


def make(check: str, message: str, span: Span | None = None, severity: str | None = None) -> Diagnostic:
    """Build a diagnostic for a cataloged check (severity defaulted)."""
    if severity is None:
        severity = CHECKS[check][1]
    return Diagnostic(check=check, severity=severity, message=message, span=span)


def render_diagnostic(diag: Diagnostic, source: str | None = None, filename: str = "<program>") -> str:
    """One finding as text, with a caret-underlined source excerpt."""
    if diag.span is not None:
        head = f"{filename}:{diag.span.line}:{diag.span.column}: " \
               f"{diag.severity}[{diag.check} {diag.name}] {diag.message}"
        if source:
            excerpt = format_source_context(
                source, diag.span.line, diag.span.column,
                diag.span.end_column if diag.span.end_line == diag.span.line else 0,
            )
            if excerpt:
                return f"{head}\n{excerpt}"
        return head
    return f"{filename}: {diag.severity}[{diag.check} {diag.name}] {diag.message}"


def render_diagnostics(
    diagnostics: list[Diagnostic] | tuple[Diagnostic, ...],
    source: str | None = None,
    filename: str = "<program>",
) -> str:
    """All findings as text, one block per finding."""
    return "\n".join(render_diagnostic(d, source, filename) for d in diagnostics)
