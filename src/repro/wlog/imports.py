"""The fact registry behind WLog's ``import(...)`` directives.

``import(montage)`` pulls workflow facts generated from a DAX/workflow
object; ``import(amazonec2)`` pulls cloud facts from the metadata store
(Section 4.2 "Workflow- and cloud-specific facts").  The registry holds
named workflow and cloud entries; materializing a program's import list
produces:

* deterministic facts: ``task/1``, ``edge/2`` (with the virtual
  ``root``/``tail`` tasks of Example 1), ``vm/1``, ``price/2``,
  ``cpu_speed/2``, ``vcpus/2``, ``mem/2``, ``region/1``,
  ``regionprice/3``, ``bandwidth/3``, ``netprice/3``;
* probabilistic facts: ``exetime(Tid, Vid, T_j)`` with probability
  ``p_j`` per histogram bin (consumed by the probabilistic IR), along
  with their deterministic means for p=1.0 mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import WLogRuntimeError
from repro.cloud.instance_types import Catalog
from repro.cloud.network import NetworkModel
from repro.distributions.histogram import Histogram
from repro.wlog.terms import Atom, Num, Rule, Struct, Var
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = [
    "ImportRegistry",
    "vm_atom",
    "MaterializedImports",
    "ProbFactSpec",
    "WORKFLOW_FACT_INDICATORS",
    "CLOUD_FACT_INDICATORS",
    "JOINT_FACT_INDICATORS",
]

ROOT = Atom("root")
TAIL = Atom("tail")

#: Fact families a workflow import (``import(montage)``) materializes.
WORKFLOW_FACT_INDICATORS: frozenset[tuple[str, int]] = frozenset({("task", 1), ("edge", 2)})

#: Fact families a cloud import (``import(amazonec2)``) materializes.
CLOUD_FACT_INDICATORS: frozenset[tuple[str, int]] = frozenset(
    {
        ("vm", 1),
        ("price", 2),
        ("cpu_speed", 2),
        ("vcpus", 2),
        ("mem", 2),
        ("region", 1),
        ("regionprice", 3),
        ("bandwidth", 3),
        ("netprice", 3),
    }
)

#: Fact families that need both a workflow and a cloud import
#: (probabilistic exetime facts plus the pre-configured virtual root).
JOINT_FACT_INDICATORS: frozenset[tuple[str, int]] = frozenset({("exetime", 3), ("configs", 3)})


def vm_atom(type_name: str) -> Atom:
    """Instance type name as a WLog atom (``m1.small`` -> ``m1_small``)."""
    return Atom(type_name.replace(".", "_").replace("-", "_"))


def region_atom(region_name: str) -> Atom:
    return Atom(region_name.replace(".", "_").replace("-", "_"))


@dataclass(frozen=True)
class ProbFactSpec:
    """One probabilistic fact family: ``p_j : functor(*key, value_j)``."""

    functor: str
    key: tuple
    histogram: Histogram

    def mean_rule(self) -> Rule:
        """The deterministic (p = 1.0) collapse used for static goals."""
        return Rule(Struct(self.functor, (*self.key, Num(self.histogram.mean()))))


@dataclass
class MaterializedImports:
    """Everything an import list expands to."""

    rules: list[Rule]
    prob_facts: list[ProbFactSpec]
    workflows: dict[str, Workflow]
    catalog: Catalog | None


class ImportRegistry:
    """Named workflow/cloud sources for ``import(...)``."""

    def __init__(self, runtime_model: RuntimeModel | None = None):
        self._workflows: dict[str, Workflow] = {}
        self._clouds: dict[str, tuple[Catalog, str | None]] = {}
        self._runtime_model = runtime_model

    # Registration --------------------------------------------------------

    def register_workflow(self, name: str, workflow: Workflow) -> None:
        """Make ``import(name)`` expand to this workflow's facts."""
        self._workflows[name] = workflow

    def register_cloud(self, name: str, catalog: Catalog, region: str | None = None) -> None:
        """Make ``import(name)`` expand to this catalog's facts."""
        self._clouds[name] = (catalog, region)

    # Introspection (used by the static analyzer) --------------------------

    def kind_of(self, name: str) -> str | None:
        """``"workflow"`` / ``"cloud"`` for a registered name, else None."""
        if name in self._workflows:
            return "workflow"
        if name in self._clouds:
            return "cloud"
        return None

    def known_names(self) -> tuple[str, ...]:
        """Every registered import name (workflows and clouds)."""
        return tuple(sorted((*self._workflows, *self._clouds)))

    def workflow(self, name: str) -> Workflow | None:
        """The registered workflow behind ``import(name)``, if any.

        The semantic passes in :mod:`repro.analysis` resolve imports
        straight off the registry -- bound inference must not pay the
        histogram materialization that :meth:`materialize` performs.
        """
        return self._workflows.get(name)

    def cloud(self, name: str) -> tuple[Catalog, str | None] | None:
        """The registered ``(catalog, region)`` behind ``import(name)``."""
        return self._clouds.get(name)

    def fact_indicators(self, imports: tuple[str, ...]) -> set[tuple[str, int]]:
        """The fact families ``imports`` would materialize.

        Unregistered names contribute nothing (the analyzer reports them
        separately as unknown imports).
        """
        out: set[tuple[str, int]] = set()
        kinds = {self.kind_of(name) for name in imports}
        if "workflow" in kinds:
            out |= WORKFLOW_FACT_INDICATORS
        if "cloud" in kinds:
            out |= CLOUD_FACT_INDICATORS
        if "workflow" in kinds and "cloud" in kinds:
            out |= JOINT_FACT_INDICATORS
        return out

    def runtime_model_for(self, catalog: Catalog) -> RuntimeModel:
        if self._runtime_model is not None:
            return self._runtime_model
        return RuntimeModel(catalog)

    # Materialization ------------------------------------------------------

    def materialize(self, imports: tuple[str, ...]) -> MaterializedImports:
        """Expand an import list into facts + probabilistic fact specs.

        ``exetime`` facts need both a workflow and a cloud; they are
        generated for every (imported workflow x imported cloud type)
        pair, mirroring how the paper joins DAX profiles with cloud
        metadata during IR translation.
        """
        rules: list[Rule] = []
        prob_facts: list[ProbFactSpec] = []
        workflows: dict[str, Workflow] = {}
        catalog: Catalog | None = None
        region: str | None = None

        for name in imports:
            if name in self._workflows:
                wf = self._workflows[name]
                workflows[name] = wf
                rules.extend(self._workflow_rules(wf))
            elif name in self._clouds:
                if catalog is not None:
                    raise WLogRuntimeError("only one cloud import per program is supported")
                catalog, region = self._clouds[name]
                rules.extend(self._cloud_rules(catalog, region))
            else:
                raise WLogRuntimeError(
                    f"import({name}) refers to an unregistered source; "
                    f"known workflows: {sorted(self._workflows)}, "
                    f"clouds: {sorted(self._clouds)}"
                )

        if workflows and catalog is not None:
            model = self.runtime_model_for(catalog)
            for wf in workflows.values():
                prob_facts.extend(self._exetime_facts(wf, catalog, model))
                # The virtual root costs nothing on any type and is
                # pre-configured, so Example 1's path rules start cleanly.
                for type_name in catalog.type_names:
                    rules.append(
                        Rule(Struct("exetime", (ROOT, vm_atom(type_name), Num(0.0))))
                    )
                rules.append(
                    Rule(
                        Struct("configs", (ROOT, Var("Vid"), Num(1.0))),
                        (Struct("vm", (Var("Vid"),)),),
                    )
                )

        return MaterializedImports(
            rules=rules, prob_facts=prob_facts, workflows=workflows, catalog=catalog
        )

    # Fact generation --------------------------------------------------------

    @staticmethod
    def _workflow_rules(wf: Workflow) -> list[Rule]:
        rules: list[Rule] = []
        for tid in wf.task_ids:
            rules.append(Rule(Struct("task", (Atom(tid),))))
        for parent, child in wf.edges():
            rules.append(Rule(Struct("edge", (Atom(parent), Atom(child)))))
        for tid in wf.roots():
            rules.append(Rule(Struct("edge", (ROOT, Atom(tid)))))
        for tid in wf.leaves():
            rules.append(Rule(Struct("edge", (Atom(tid), TAIL))))
        return rules

    @staticmethod
    def _cloud_rules(catalog: Catalog, region: str | None) -> list[Rule]:
        rules: list[Rule] = []
        region_obj = catalog.region(region)
        for itype in catalog:
            vid = vm_atom(itype.name)
            rules.append(Rule(Struct("vm", (vid,))))
            rules.append(Rule(Struct("price", (vid, Num(region_obj.price(itype.name))))))
            rules.append(Rule(Struct("cpu_speed", (vid, Num(itype.cpu_speed)))))
            rules.append(Rule(Struct("vcpus", (vid, Num(float(itype.vcpus))))))
            rules.append(Rule(Struct("mem", (vid, Num(itype.mem_gb)))))
        net = NetworkModel(catalog)
        for rname in catalog.region_names:
            rules.append(Rule(Struct("region", (region_atom(rname),))))
            for itype in catalog:
                rules.append(
                    Rule(
                        Struct(
                            "regionprice",
                            (region_atom(rname), vm_atom(itype.name), Num(catalog.price(itype.name, rname))),
                        )
                    )
                )
        for ra in catalog.region_names:
            for rb in catalog.region_names:
                if ra == rb:
                    continue
                rules.append(
                    Rule(
                        Struct(
                            "bandwidth",
                            (
                                region_atom(ra),
                                region_atom(rb),
                                Num(net.mean_cross_region_bandwidth(ra, rb)),
                            ),
                        )
                    )
                )
                rules.append(
                    Rule(
                        Struct(
                            "netprice",
                            (
                                region_atom(ra),
                                region_atom(rb),
                                Num(catalog.region(ra).transfer_out_per_gb),
                            ),
                        )
                    )
                )
        return rules

    @staticmethod
    def _exetime_facts(
        wf: Workflow, catalog: Catalog, model: RuntimeModel
    ) -> list[ProbFactSpec]:
        facts: list[ProbFactSpec] = []
        for tid in wf.task_ids:
            task = wf.task(tid)
            for type_name in catalog.type_names:
                facts.append(
                    ProbFactSpec(
                        functor="exetime",
                        key=(Atom(tid), vm_atom(type_name)),
                        histogram=model.cached_histogram(task, type_name),
                    )
                )
        return facts
