"""WLog tokenizer.

Prolog-style lexical structure plus WLog's literal extensions:

* **percent literals**: ``95%`` (probabilistic requirement levels);
* **duration literals**: ``10h``, ``30m``, ``45s`` -- normalized to
  seconds at lex time;
* comments are ``/* ... */`` only (the ``%`` character is reserved for
  percent literals, as in all of the paper's listings).

Token kinds: ``ATOM``, ``VAR``, ``NUM``, ``PERCENT``, ``STRING``,
``PUNCT`` (including multi-character operators), ``END`` (the clause
terminator ``.``), ``EOF``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NoReturn

from repro.common.errors import WLogSyntaxError

__all__ = ["Token", "tokenize"]

#: Multi-character operators, longest first so prefixes don't shadow them.
_OPERATORS = (
    ":-",
    "\\==",
    "==",
    "=<",
    ">=",
    "=:=",
    "=\\=",
    "->",
    "\\+",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    ",",
    "(",
    ")",
    "[",
    "]",
    "|",
    "!",
)

_UNIT_SECONDS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


def tokenize(text: str) -> list[Token]:
    """Tokenize WLog source text; raises :class:`WLogSyntaxError` on junk."""
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(text)

    def error(msg: str) -> NoReturn:
        raise WLogSyntaxError(msg, line, col, source=text)

    while i < n:
        ch = text[i]

        # Whitespace ----------------------------------------------------
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue

        # Comments ------------------------------------------------------
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                error("unterminated /* comment")
            for c in text[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue

        start_line, start_col = line, col

        # Numbers (with optional % or duration-unit suffix) --------------
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A '.' followed by a non-digit is the clause terminator.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            value = float(text[i:j])
            kind = "NUM"
            if j < n and text[j] == "%":
                kind = "PERCENT"
                j += 1
            elif (
                j < n
                and text[j] in _UNIT_SECONDS
                and (j + 1 >= n or not (text[j + 1].isalnum() or text[j + 1] == "_"))
            ):
                value *= _UNIT_SECONDS[text[j]]
                j += 1
            col += j - i
            tokens.append(Token(kind, value, start_line, start_col))
            i = j
            continue

        # Quoted atoms / strings ------------------------------------------
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    error("unterminated quoted atom")
                if text[j] == "\\" and j + 1 < n:
                    buf.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(text[j + 1], text[j + 1]))
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                error("unterminated quoted atom")
            col += j + 1 - i
            tokens.append(Token("ATOM", "".join(buf), start_line, start_col))
            i = j + 1
            continue

        # Identifiers: variables and atoms ---------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "VAR" if (word[0].isupper() or word[0] == "_") else "ATOM"
            col += j - i
            tokens.append(Token(kind, word, start_line, start_col))
            i = j
            continue

        # Clause terminator -------------------------------------------------
        if ch == ".":
            tokens.append(Token("END", ".", start_line, start_col))
            i += 1
            col += 1
            continue

        # Operators / punctuation -------------------------------------------
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("PUNCT", op, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            error(f"unexpected character {ch!r}")

    tokens.append(Token("EOF", None, line, col))
    return tokens
