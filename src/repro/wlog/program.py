"""The parsed WLog program object.

A :class:`WLogProgram` holds the classified pieces of a WLog source
file: the optimization ``goal``, the ``cons`` constraints, the ``var``
decision-variable declaration, the ``import`` directives, solver hints
(``enabled(astar)`` plus the ``cal_g_score``/``est_h_score`` rules) and
the ordinary Prolog rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.common.errors import WLogError
from repro.wlog.terms import Atom, Rule, Struct, Term, Var

if TYPE_CHECKING:  # pragma: no cover
    from repro.wlog.diagnostics import Span

__all__ = ["Directive", "GoalSpec", "ConsSpec", "VarSpec", "FaultSpec", "WLogProgram"]


@dataclass(frozen=True)
class GoalSpec:
    """``goal minimize Ct in totalcost(Ct).``"""

    mode: str  # "minimize" | "maximize"
    objective: Var
    predicate: Term

    def __post_init__(self):
        if self.mode not in ("minimize", "maximize"):
            raise WLogError(f"goal mode must be minimize/maximize, got {self.mode!r}")


@dataclass(frozen=True)
class ConsSpec:
    """``cons T in maxtime(Path,T) satisfies deadline(95%, 10h).``

    ``variable`` is the measured quantity (None for boolean
    constraints); ``requirement`` is the constraint built-in term
    (``deadline(p, d)``, ``budget(p, b)``) or None when ``predicate``
    itself must simply hold.
    """

    variable: Var | None
    predicate: Term
    requirement: Term | None

    def requirement_kind(self) -> str | None:
        """'deadline' / 'budget' / functor of a custom requirement."""
        if self.requirement is None:
            return None
        if isinstance(self.requirement, Struct):
            return self.requirement.functor
        if isinstance(self.requirement, Atom):
            return self.requirement.name
        raise WLogError(f"malformed constraint requirement: {self.requirement!r}")


@dataclass(frozen=True)
class VarSpec:
    """``var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).``"""

    declaration: Term
    domains: tuple[Term, ...] = ()

    def __post_init__(self):
        if not isinstance(self.declaration, Struct):
            raise WLogError(f"var declaration must be compound, got {self.declaration!r}")
        object.__setattr__(self, "domains", tuple(self.domains))


@dataclass(frozen=True)
class FaultSpec:
    """``fault_model(0.05, 36000).`` -- declared failure environment.

    ``rate`` is the per-attempt transient task failure probability,
    ``mtbf`` the mean time between instance crash-stop failures in
    seconds (``inf`` = crashes disabled).  Together with a
    ``reliability(P, R)`` constraint this is the declarative surface of
    :class:`repro.faults.FaultModel` -- the engine scores plans under
    the declared faults instead of assuming a perfect cloud.
    """

    rate: float
    mtbf: float

    def to_fault_model(self):
        """The :class:`repro.faults.FaultModel` this spec declares."""
        from repro.faults.model import FaultModel

        return FaultModel(task_failure_rate=self.rate, instance_mtbf=self.mtbf)


@dataclass(frozen=True)
class Directive:
    """A classified directive: kind in {import, enabled, goal, cons, var,
    fault_model}.

    ``span`` locates the directive in the source text when it came from
    the parser; it never participates in equality.
    """

    kind: str
    payload: object
    span: Optional["Span"] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if self.kind not in ("import", "enabled", "goal", "cons", "var", "fault_model"):
            raise WLogError(f"unknown directive kind {self.kind!r}")


#: Heuristic predicates recognized when ``enabled(astar)`` is present.
_G_SCORE = ("cal_g_score", 1)
_H_SCORE = ("est_h_score", 1)


class WLogProgram:
    """A validated WLog program.

    Build from source with :meth:`from_source`; the pieces are exposed
    as attributes (``goal``, ``constraints``, ``var_spec``, ``imports``,
    ``rules``...).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        directives: Sequence[Directive],
        source: str = "",
    ):
        self.rules: tuple[Rule, ...] = tuple(rules)
        self.directives: tuple[Directive, ...] = tuple(directives)
        self.source = source
        self.imports: tuple[str, ...] = ()
        self.enabled: tuple[str, ...] = ()
        self.goal: GoalSpec | None = None
        self.constraints: tuple[ConsSpec, ...] = ()
        self.var_spec: VarSpec | None = None
        self.fault_spec: FaultSpec | None = None

        imports: list[str] = []
        enabled: list[str] = []
        constraints: list[ConsSpec] = []
        for d in self.directives:
            if d.kind == "import":
                imports.append(str(d.payload))
            elif d.kind == "enabled":
                enabled.append(str(d.payload))
            elif d.kind == "goal":
                if self.goal is not None:
                    raise WLogError("program declares more than one goal")
                assert isinstance(d.payload, GoalSpec)
                self.goal = d.payload
            elif d.kind == "cons":
                assert isinstance(d.payload, ConsSpec)
                constraints.append(d.payload)
            elif d.kind == "var":
                if self.var_spec is not None:
                    raise WLogError("program declares more than one var specification")
                assert isinstance(d.payload, VarSpec)
                self.var_spec = d.payload
            elif d.kind == "fault_model":
                if self.fault_spec is not None:
                    raise WLogError("program declares more than one fault_model")
                assert isinstance(d.payload, FaultSpec)
                self.fault_spec = d.payload
        self.imports = tuple(imports)
        self.enabled = tuple(enabled)
        self.constraints = tuple(constraints)

    @classmethod
    def from_source(cls, text: str) -> "WLogProgram":
        """Parse and classify WLog source text."""
        from repro.wlog.parser import parse_program  # deferred: parser imports this module

        parsed = parse_program(text)
        return cls(parsed.rules, parsed.directives, source=text)

    # Solver hints --------------------------------------------------------

    @property
    def astar_enabled(self) -> bool:
        return "astar" in self.enabled

    def _has_rule(self, indicator: tuple[str, int]) -> bool:
        return any(r.indicator == indicator for r in self.rules)

    @property
    def has_g_score(self) -> bool:
        return self._has_rule(_G_SCORE)

    @property
    def has_h_score(self) -> bool:
        return self._has_rule(_H_SCORE)

    def validate_for_solving(self) -> None:
        """Checks required before handing the program to the solver."""
        if self.goal is None:
            raise WLogError("program has no goal directive")
        if self.var_spec is None:
            raise WLogError("program has no var directive (nothing to optimize)")
        if self.astar_enabled and not (self.has_g_score and self.has_h_score):
            raise WLogError(
                "enabled(astar) requires cal_g_score/1 and est_h_score/1 rules"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WLogProgram(rules={len(self.rules)}, imports={list(self.imports)}, "
            f"goal={self.goal is not None}, cons={len(self.constraints)})"
        )
