"""Static analysis of WLog programs.

The paper's workflow (Section 3) has users hand-write declarative WLog
programs; a typo'd predicate or a mis-aritied ``deadline`` produces an
empty solution set or a deep engine failure with no source location.
This module is the compile-time backstop: :func:`analyze_program` runs
a battery of checks over a parsed program and returns structured
:class:`~repro.wlog.diagnostics.Diagnostic` records with source spans,
and :func:`check_program` is the fail-fast gate the engine facade and
the ``repro lint`` CLI share.

Checks (catalog in :data:`repro.wlog.diagnostics.CHECKS`):

* **E201/E202 undefined predicate & arity mismatch** -- every call in a
  rule body, goal, constraint or var domain must resolve against the
  program's own rules, the built-in registry
  (:data:`repro.wlog.builtins.BUILTINS`), the fact families an
  ``import`` materializes (:mod:`repro.wlog.imports`), the declared
  decision variable, or caller-supplied external facts;
* **E203/E204/W302/W306 directive signatures** -- ``deadline/2``,
  ``budget/2`` and ``reliability/2`` shapes and argument domains
  (percentile in (0, 100], positive deadline, nonnegative budget,
  integer retry budget), atom-argument ``import``/``enabled`` forms,
  known solver hints;
* **E211 fault model** -- ``fault_model(Rate, Mtbf)`` argument domains
  (rate in [0, 1), positive MTBF) and the requirement that a
  ``reliability`` constraint declares its fault environment;
* **E205/E206 variable safety** -- variables unbound at their first use
  inside ``is``/arithmetic comparisons, and variables occurring free
  under ``\\+`` (negation as failure cannot bind them);
* **E207 stratification** -- a predicate that (transitively) depends on
  its own negation would loop in ``probir`` evaluation;
* **W301 singletons**, **W303 duplicate rules**, **W304 unreachable
  rules**, **W305 built-in shadowing**, **W307 misspelled directives**.

External facts (for programs whose fact base is supplied by a driver at
solve time, like the ensemble/follow-the-cost templates) can be declared
either via ``extra_predicates`` or in-source with a pragma comment::

    /* lint: assume workflow/1, wscore/2 */
"""

from __future__ import annotations

import difflib
import re
from typing import Iterable, Iterator, Sequence, Union

from repro.common.errors import WLogAnalysisError
from repro.wlog.builtins import BUILTINS, builtin_arities
from repro.wlog.diagnostics import (
    Diagnostic,
    Span,
    make,
    render_diagnostics,
)
from repro.wlog.imports import (
    CLOUD_FACT_INDICATORS,
    ImportRegistry,
    JOINT_FACT_INDICATORS,
    WORKFLOW_FACT_INDICATORS,
)
from repro.wlog.parser import ParsedProgram, parse_program
from repro.wlog.program import ConsSpec, Directive, FaultSpec, GoalSpec, VarSpec, WLogProgram
from repro.wlog.terms import Atom, Num, Rule, Struct, Term, Var

__all__ = ["analyze_program", "check_program", "pragma_assumes"]

Indicator = tuple[str, int]
ProgramLike = Union[str, ParsedProgram, WLogProgram]

#: Meta-call built-ins and the argument positions holding goals.
_META_GOALS: dict[Indicator, tuple[int, ...]] = {
    ("findall", 3): (1,),
    ("bagof", 3): (1,),
    ("setof", 3): (1,),
    ("forall", 2): (0, 1),
    ("call", 1): (0,),
    ("\\+", 1): (0,),
    ("not", 1): (0,),
    (",", 2): (0, 1),
}

_NEGATION: frozenset[Indicator] = frozenset({("\\+", 1), ("not", 1)})

#: Comparisons whose operands are arithmetic expressions (must be bound).
_ARITH_COMPARE = frozenset({"=:=", "=\\=", "<", ">", "=<", ">="})

#: Term-level comparisons/unification; may bind, never need arithmetic.
_TERM_COMPARE = frozenset({"==", "\\==", "="})

#: Solver hints the engine understands (``enabled(...)`` arguments).
KNOWN_HINTS = frozenset({"astar"})

#: Requirement built-ins: functor -> (min bound allowed inclusive?).
_REQUIREMENTS = ("deadline", "budget", "reliability")

_PRAGMA_RE = re.compile(r"/\*\s*lint:\s*assume\s+([^*]*?)\s*\*/")
_PRAGMA_ITEM_RE = re.compile(r"([a-z][A-Za-z0-9_]*)\s*/\s*(\d+)")

#: All fact families any import combination can materialize.
_ALL_IMPORT_FACTS = WORKFLOW_FACT_INDICATORS | CLOUD_FACT_INDICATORS | JOINT_FACT_INDICATORS


def pragma_assumes(source: str) -> set[Indicator]:
    """Parse ``/* lint: assume name/arity, ... */`` pragmas from source."""
    out: set[Indicator] = set()
    for block in _PRAGMA_RE.findall(source):
        for name, arity in _PRAGMA_ITEM_RE.findall(block):
            out.add((name, int(arity)))
    return out


def _iter_vars(term: Term) -> Iterator[Var]:
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            yield t
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))


def _named_vars(term: Term) -> set[str]:
    return {v.name for v in _iter_vars(term) if not v.name.startswith("_")}


def _iter_calls(goal: Term, negated: bool = False) -> Iterator[tuple[Term, Indicator, bool]]:
    """Every predicate call in a goal tree: ``(term, indicator, negated)``.

    Built-in calls are filtered out; meta-call arguments (``findall``
    goals, negated goals...) are descended into.
    """
    if isinstance(goal, (Var, Num)):
        return
    if isinstance(goal, Atom):
        if goal.name == "!":
            return
        ind = (goal.name, 0)
        if ind not in BUILTINS:
            yield goal, ind, negated
        return
    if isinstance(goal, Struct):
        ind = goal.indicator
        if ind in _META_GOALS:
            neg = negated or ind in _NEGATION
            for pos in _META_GOALS[ind]:
                yield from _iter_calls(goal.args[pos], neg)
            return
        if ind in BUILTINS:
            return
        yield goal, ind, negated


def _goal_span(term: Term, fallback: Span | None) -> Span | None:
    span = getattr(term, "span", None)
    return span if span is not None else fallback


class _Analyzer:
    def __init__(
        self,
        rules: Sequence[Rule],
        directives: Sequence[Directive],
        source: str,
        registry: ImportRegistry | None,
        extra_predicates: Iterable[Indicator],
        assume_import_facts: bool = True,
    ):
        self.rules = tuple(rules)
        self.directives = tuple(directives)
        self.source = source
        self.registry = registry
        self.assume_import_facts = assume_import_facts
        self.extra = set(extra_predicates) | (pragma_assumes(source) if source else set())
        self.diags: list[Diagnostic] = []

        # Classified directive views (tolerant of duplicates, unlike
        # WLogProgram construction, so we can diagnose instead of raise).
        self.imports: list[Directive] = [d for d in self.directives if d.kind == "import"]
        self.enabled: list[Directive] = [d for d in self.directives if d.kind == "enabled"]
        self.goals: list[Directive] = [d for d in self.directives if d.kind == "goal"]
        self.cons: list[Directive] = [d for d in self.directives if d.kind == "cons"]
        self.vars: list[Directive] = [d for d in self.directives if d.kind == "var"]
        self.faults: list[Directive] = [d for d in self.directives if d.kind == "fault_model"]

        self.defined: dict[Indicator, list[Rule]] = {}
        for rule in self.rules:
            self.defined.setdefault(rule.indicator, []).append(rule)

    def emit(self, check: str, message: str, span: Span | None) -> None:
        self.diags.append(make(check, message, span))

    # Known-callable resolution -------------------------------------------

    def import_fact_indicators(self) -> set[Indicator]:
        names = tuple(str(d.payload) for d in self.imports)
        if not names or not self.assume_import_facts:
            return set()
        if self.registry is None:
            # No registry to consult: assume imports provide the full
            # workflow + cloud fact surface.
            return set(_ALL_IMPORT_FACTS)
        return self.registry.fact_indicators(names)

    def decision_indicators(self) -> set[Indicator]:
        out: set[Indicator] = set()
        for d in self.vars:
            spec = d.payload
            if isinstance(spec, VarSpec) and isinstance(spec.declaration, Struct):
                out.add(spec.declaration.indicator)
        return out

    # Directive checks ------------------------------------------------------

    def check_directives(self) -> None:
        for extras in (self.goals[1:], self.vars[1:], self.faults[1:]):
            for d in extras:
                kind = d.kind
                self.emit(
                    "E208",
                    f"program declares more than one {kind} directive; "
                    f"only the first is meaningful",
                    d.span,
                )
        for d in self.faults:
            spec = d.payload
            if isinstance(spec, FaultSpec):
                if not 0.0 <= spec.rate < 1.0:
                    self.emit(
                        "E211",
                        f"fault_model failure rate must be in [0, 1), got {spec.rate:g}",
                        d.span,
                    )
                if spec.mtbf <= 0.0:
                    self.emit(
                        "E211",
                        f"fault_model MTBF must be > 0 seconds, got {spec.mtbf:g}",
                        d.span,
                    )
        if self.registry is not None:
            known = self.registry.known_names()
            for d in self.imports:
                name = str(d.payload)
                if self.registry.kind_of(name) is None:
                    hint = _suggest(name, known)
                    self.emit(
                        "E210",
                        f"import({name}) does not name a registered workflow or cloud"
                        + (f"; did you mean {hint}?" if hint else
                           f" (known: {', '.join(known) or 'none'})"),
                        d.span,
                    )
        for d in self.enabled:
            hint_name = str(d.payload)
            if hint_name not in KNOWN_HINTS:
                suggestion = _suggest(hint_name, KNOWN_HINTS)
                self.emit(
                    "W302",
                    f"enabled({hint_name}) is not a known solver hint"
                    + (f"; did you mean {suggestion}?" if suggestion else
                       f" (known hints: {', '.join(sorted(KNOWN_HINTS))})"),
                    d.span,
                )
        for d in self.goals:
            spec = d.payload
            if isinstance(spec, GoalSpec):
                if spec.objective.name not in _named_vars(spec.predicate):
                    self.emit(
                        "E209",
                        f"goal objective {spec.objective.name} does not occur in "
                        f"{_indicator_text(spec.predicate)}",
                        _goal_span(spec.objective, d.span),
                    )
        for d in self.cons:
            spec = d.payload
            if isinstance(spec, ConsSpec):
                self.check_cons(spec, d.span)

    def check_cons(self, spec: ConsSpec, span: Span | None) -> None:
        if spec.variable is not None and spec.variable.name not in _named_vars(spec.predicate):
            self.emit(
                "E209",
                f"cons variable {spec.variable.name} does not occur in "
                f"{_indicator_text(spec.predicate)}",
                _goal_span(spec.variable, span),
            )
        req = spec.requirement
        if req is None:
            return
        req_span = _goal_span(req, span)
        name = req.functor if isinstance(req, Struct) else getattr(req, "name", repr(req))
        if name not in _REQUIREMENTS:
            self.emit(
                "E203",
                f"unsupported constraint requirement {name!r}; "
                f"expected deadline/2, budget/2 or reliability/2",
                req_span,
            )
            return
        if not isinstance(req, Struct) or req.arity != 2:
            arity = req.arity if isinstance(req, Struct) else 0
            self.emit(
                "E203",
                f"{name}/{arity}: {name} expects 2 arguments "
                f"({name}(percentile, bound))",
                req_span,
            )
            return
        if name == "reliability" and not self.faults:
            self.emit(
                "E211",
                "reliability constraint needs a fault_model(Rate, Mtbf) "
                "directive declaring what can fail",
                req_span,
            )
        level, bound = req.args
        if not isinstance(level, Num):
            self.emit(
                "E203",
                f"{name} requirement level must be a number (e.g. 95%), got {level!r}",
                req_span,
            )
        else:
            p = float(level.value)
            if not 0.0 < p <= 100.0:
                self.emit(
                    "E203",
                    f"{name} requirement level must be in (0, 100], got {p:g}",
                    req_span,
                )
            elif p <= 1.0:
                self.emit(
                    "W306",
                    f"{name} requirement level {p:g} looks like a fraction; "
                    f"WLog levels are percentages (did you mean {p * 100:g}%?)",
                    req_span,
                )
        if not isinstance(bound, Num):
            self.emit(
                "E203",
                f"{name} bound must be a number (e.g. 10h), got {bound!r}",
                req_span,
            )
        elif name == "deadline" and float(bound.value) <= 0.0:
            self.emit("E203", f"deadline bound must be > 0, got {bound!r}", req_span)
        elif name == "budget" and float(bound.value) < 0.0:
            self.emit("E203", f"budget bound must be >= 0, got {bound!r}", req_span)
        elif name == "reliability" and (
            float(bound.value) < 0.0 or float(bound.value) != int(bound.value)
        ):
            self.emit(
                "E203",
                f"reliability retry budget must be a nonnegative integer, got {bound!r}",
                req_span,
            )

    # Rule-shape checks -----------------------------------------------------

    def check_rule_shapes(self) -> None:
        shadowed: set[Indicator] = set()
        misspellable = ("enabled", "import")
        for rule in self.rules:
            ind = rule.indicator
            if ind in BUILTINS and ind not in shadowed:
                shadowed.add(ind)
                self.emit(
                    "W305",
                    f"rules for {ind[0]}/{ind[1]} shadow a built-in predicate "
                    f"and will never be selected by the engine",
                    rule.span,
                )
            if ind[1] == 1 and rule.is_fact:
                if ind[0] in ("import", "enabled"):
                    self.emit(
                        "E204",
                        f"{ind[0]}(...) takes a single atom argument; this clause "
                        f"is treated as an ordinary fact, not a directive",
                        rule.span,
                    )
                else:
                    hint = _suggest(ind[0], misspellable, cutoff=0.75)
                    if hint:
                        self.emit(
                            "W307",
                            f"fact {ind[0]}/1 looks like a misspelled "
                            f"{hint}(...) directive",
                            rule.span,
                        )

    # Call resolution -------------------------------------------------------

    def check_calls(self) -> None:
        known: set[Indicator] = set(self.defined)
        known |= self.import_fact_indicators()
        known |= self.decision_indicators()
        known |= self.extra
        if self.faults:
            # The engine synthesizes successprob/1 (the plan's analytic
            # success probability) whenever a fault model is declared.
            known.add(("successprob", 1))

        candidate_names = sorted(
            {n for (n, _a) in known} | {n for (n, _a) in BUILTINS}
        )

        def check_call(term: Term, ind: Indicator, fallback: Span | None) -> None:
            if ind in known or ind in BUILTINS:
                return
            name, arity = ind
            span = _goal_span(term, fallback)
            other = sorted({a for (n, a) in known if n == name} | set(builtin_arities(name)))
            if other:
                arities = ", ".join(f"{name}/{a}" for a in other)
                self.emit(
                    "E202",
                    f"{name}/{arity} is called but {name} only exists as {arities}",
                    span,
                )
                return
            hint = _suggest(name, candidate_names)
            self.emit(
                "E201",
                f"unknown predicate {name}/{arity}"
                + (f"; did you mean {hint}?" if hint else ""),
                span,
            )

        for rule in self.rules:
            for goal in rule.body:
                for term, ind, _neg in _iter_calls(goal):
                    check_call(term, ind, rule.span)
        for d in self.goals:
            spec = d.payload
            if isinstance(spec, GoalSpec):
                for term, ind, _neg in _iter_calls(spec.predicate):
                    check_call(term, ind, d.span)
        for d in self.cons:
            spec = d.payload
            if isinstance(spec, ConsSpec):
                for term, ind, _neg in _iter_calls(spec.predicate):
                    check_call(term, ind, d.span)
        for d in self.vars:
            spec = d.payload
            if isinstance(spec, VarSpec):
                for domain in spec.domains:
                    for term, ind, _neg in _iter_calls(domain):
                        check_call(term, ind, d.span)

    # Variable checks -------------------------------------------------------

    def check_rule_variables(self) -> None:
        for rule in self.rules:
            occurrences: dict[str, list[Var]] = {}
            for term in (rule.head, *rule.body):
                for v in _iter_vars(term):
                    if not v.name.startswith("_"):
                        occurrences.setdefault(v.name, []).append(v)
            for name, occs in occurrences.items():
                if len(occs) == 1:
                    self.emit(
                        "W301",
                        f"singleton variable {name} (use _{name} if intentional)",
                        _goal_span(occs[0], rule.span),
                    )
            bound = set(_named_vars(rule.head))
            for goal in rule.body:
                bound = self._flow_goal(goal, bound, rule)

    def _flow_goal(self, goal: Term, bound: set[str], rule: Rule) -> set[str]:
        """Left-to-right binding propagation through one body goal."""
        if not isinstance(goal, Struct):
            return bound
        ind = goal.indicator
        if ind == ("is", 2):
            lhs, rhs = goal.args
            self._require_bound(rhs, bound, rule, context="arithmetic (is/2)")
            return bound | _named_vars(lhs) | _named_vars(rhs)
        if goal.functor in _ARITH_COMPARE and goal.arity == 2:
            self._require_bound(goal, bound, rule, context=f"comparison ({goal.functor})")
            return bound | _named_vars(goal)
        if goal.functor in _TERM_COMPARE and goal.arity == 2:
            return bound | _named_vars(goal)
        if ind in _NEGATION:
            inner = goal.args[0]
            for v in _iter_vars(inner):
                if not v.name.startswith("_") and v.name not in bound:
                    self.emit(
                        "E206",
                        f"variable {v.name} occurs free under \\+; negation as "
                        f"failure cannot bind it (bind it before the negation "
                        f"or use an anonymous _{v.name})",
                        _goal_span(v, rule.span),
                    )
                    bound = bound | {v.name}  # report once
            # Inner bindings do not escape the negation.
            self._flow_goal(inner, set(bound), rule)
            return bound
        if ind in (("findall", 3), ("bagof", 3), ("setof", 3)):
            _template, inner, result = goal.args
            self._flow_goal(inner, set(bound), rule)
            return bound | _named_vars(result)
        if ind == ("forall", 2):
            scratch = set(bound)
            scratch = self._flow_goal(goal.args[0], scratch, rule)
            self._flow_goal(goal.args[1], scratch, rule)
            return bound
        if ind == (",", 2):
            bound = self._flow_goal(goal.args[0], bound, rule)
            return self._flow_goal(goal.args[1], bound, rule)
        # Ordinary call (or call/1): any argument may be bound by it.
        return bound | _named_vars(goal)

    def _require_bound(self, expr: Term, bound: set[str], rule: Rule, context: str) -> None:
        for v in _iter_vars(expr):
            if not v.name.startswith("_") and v.name not in bound:
                self.emit(
                    "E205",
                    f"variable {v.name} is unbound at its first use in {context}",
                    _goal_span(v, rule.span),
                )

    # Stratification --------------------------------------------------------

    def check_stratification(self) -> None:
        adjacency: dict[Indicator, set[Indicator]] = {}
        negative_edges: list[tuple[Indicator, Indicator, Rule]] = []
        for rule in self.rules:
            head = rule.indicator
            for goal in rule.body:
                for _term, ind, negated in _iter_calls(goal):
                    adjacency.setdefault(head, set()).add(ind)
                    if negated:
                        negative_edges.append((head, ind, rule))
        reported: set[tuple[Indicator, Indicator]] = set()
        for head, target, rule in negative_edges:
            if (head, target) in reported:
                continue
            if self._reaches(adjacency, target, head):
                reported.add((head, target))
                self.emit(
                    "E207",
                    f"{head[0]}/{head[1]} depends on the negation of "
                    f"{target[0]}/{target[1]}, which calls back into "
                    f"{head[0]}/{head[1]}: the program cannot be stratified "
                    f"and evaluation may not terminate",
                    rule.span,
                )

    @staticmethod
    def _reaches(adjacency: dict[Indicator, set[Indicator]], start: Indicator, goal: Indicator) -> bool:
        if start == goal:
            return True
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    # Duplicates & reachability --------------------------------------------

    def check_duplicates(self) -> None:
        seen: dict[object, Rule] = {}
        for rule in self.rules:
            key = _canonical_rule(rule)
            first = seen.get(key)
            if first is None:
                seen[key] = rule
                continue
            where = f" at line {first.span.line}" if first.span else ""
            ind = rule.indicator
            self.emit(
                "W303",
                f"duplicate rule for {ind[0]}/{ind[1]}: identical (up to "
                f"variable renaming) to the rule{where}",
                rule.span,
            )

    def check_reachability(self) -> None:
        if not self.goals:
            return  # plain Prolog fact bases have no root to walk from
        roots: set[Indicator] = set()
        for d in self.goals:
            spec = d.payload
            if isinstance(spec, GoalSpec):
                roots.update(ind for _t, ind, _n in _iter_calls(spec.predicate))
        for d in self.cons:
            spec = d.payload
            if isinstance(spec, ConsSpec):
                roots.update(ind for _t, ind, _n in _iter_calls(spec.predicate))
        for d in self.vars:
            spec = d.payload
            if isinstance(spec, VarSpec):
                if isinstance(spec.declaration, Struct):
                    roots.add(spec.declaration.indicator)
                for domain in spec.domains:
                    roots.update(ind for _t, ind, _n in _iter_calls(domain))
        if any(str(d.payload) == "astar" for d in self.enabled):
            roots.update({("cal_g_score", 1), ("est_h_score", 1)})

        adjacency: dict[Indicator, set[Indicator]] = {}
        for rule in self.rules:
            head = rule.indicator
            for goal in rule.body:
                adjacency.setdefault(head, set()).update(
                    ind for _t, ind, _n in _iter_calls(goal)
                )
        reachable = set(roots)
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in reachable:
                    reachable.add(nxt)
                    frontier.append(nxt)
        flagged: set[Indicator] = set()
        for rule in self.rules:
            ind = rule.indicator
            if ind in reachable or ind in flagged or ind in BUILTINS:
                continue
            flagged.add(ind)
            self.emit(
                "W304",
                f"{ind[0]}/{ind[1]} is never reached from the goal, "
                f"constraints or var domains",
                rule.span,
            )

    # Driver ----------------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        self.check_directives()
        self.check_rule_shapes()
        self.check_calls()
        self.check_rule_variables()
        self.check_stratification()
        self.check_duplicates()
        self.check_reachability()
        return sorted(self.diags, key=lambda d: d.sort_key())


def _canonical_rule(rule: Rule) -> object:
    """Alpha-rename variables by first occurrence for duplicate detection."""
    mapping: dict[tuple[str, int], str] = {}

    def walk(term: Term) -> object:
        if isinstance(term, Var):
            key = (term.name, term.ident)
            if key not in mapping:
                mapping[key] = f"V{len(mapping)}"
            return ("v", mapping[key])
        if isinstance(term, Atom):
            return ("a", term.name)
        if isinstance(term, Num):
            return ("n", term.value)
        assert isinstance(term, Struct)
        return ("s", term.functor, tuple(walk(a) for a in term.args))

    return (walk(rule.head), tuple(walk(g) for g in rule.body))


def _indicator_text(term: Term) -> str:
    if isinstance(term, Struct):
        return f"{term.functor}/{term.arity}"
    if isinstance(term, Atom):
        return f"{term.name}/0"
    return repr(term)


def _suggest(name: str, candidates: Iterable[str], cutoff: float = 0.6) -> str | None:
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=cutoff)
    return matches[0] if matches else None


def _coerce(program: ProgramLike) -> tuple[tuple[Rule, ...], tuple[Directive, ...], str]:
    if isinstance(program, str):
        parsed = parse_program(program)
        return tuple(parsed.rules), tuple(parsed.directives), program
    if isinstance(program, ParsedProgram):
        return tuple(program.rules), tuple(program.directives), program.source
    if isinstance(program, WLogProgram):
        return program.rules, program.directives, program.source
    raise TypeError(f"cannot analyze {type(program).__name__}")


def analyze_program(
    program: ProgramLike,
    *,
    registry: ImportRegistry | None = None,
    extra_predicates: Iterable[Indicator] = (),
    assume_import_facts: bool = True,
) -> list[Diagnostic]:
    """Run every static check; returns diagnostics sorted by position.

    ``program`` may be WLog source text, a :class:`ParsedProgram` or a
    :class:`WLogProgram`.  ``registry`` (when given) resolves ``import``
    names precisely; without it every import is assumed to provide the
    full workflow + cloud fact surface.  ``extra_predicates`` declares
    ``(name, arity)`` fact families a driver supplies at solve time;
    callers that know the exact materialized fact surface can pass it
    there and disable ``assume_import_facts``.
    """
    rules, directives, source = _coerce(program)
    return _Analyzer(
        rules, directives, source, registry, extra_predicates, assume_import_facts
    ).run()


def check_program(
    program: ProgramLike,
    *,
    registry: ImportRegistry | None = None,
    extra_predicates: Iterable[Indicator] = (),
    assume_import_facts: bool = True,
    strict: bool = False,
    filename: str = "<program>",
) -> list[Diagnostic]:
    """The fail-fast gate: raise on error diagnostics, return the rest.

    Warnings pass through (and are returned for the caller to surface);
    ``strict=True`` promotes them to rejection as well.
    """
    diagnostics = analyze_program(
        program,
        registry=registry,
        extra_predicates=extra_predicates,
        assume_import_facts=assume_import_facts,
    )
    fatal = [d for d in diagnostics if d.is_error or strict]
    if fatal:
        _rules, _directives, source = _coerce(program)
        rendered = render_diagnostics(fatal, source or None, filename)
        noun = "diagnostic" if len(fatal) == 1 else "diagnostics"
        raise WLogAnalysisError(
            f"static analysis rejected the program with {len(fatal)} {noun}:\n{rendered}",
            diagnostics=tuple(fatal),
        )
    return diagnostics
