"""WLog parser: Prolog clauses plus the WLog directive forms.

Directive surface syntax (paper Example 1)::

    import(amazonec2).
    import(montage).
    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(Path,T) satisfies deadline(95%, 10h).
    var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
    enabled(astar).

Everything else is a Prolog rule/fact.  Rule bodies support the
arithmetic/comparison operators used by the paper's programs
(``is``, ``==``, ``\\==``, ``<``, ``>``, ``=<``, ``>=``, ``=:=``,
``=\\=``, ``=``, ``+``, ``-``, ``*``, ``/``), negation-as-failure
``\\+`` and cut ``!``.
"""

from __future__ import annotations

import dataclasses
from typing import NoReturn

from repro.common.errors import WLogSyntaxError
from repro.wlog.diagnostics import Span
from repro.wlog.lexer import Token, tokenize
from repro.wlog.program import ConsSpec, Directive, FaultSpec, GoalSpec, VarSpec
from repro.wlog.terms import NIL, Atom, Num, Rule, Struct, Term, Var, make_list

__all__ = ["parse_program", "parse_term", "parse_query", "ParsedProgram"]

_COMPARISONS = ("==", "\\==", "=<", ">=", "=:=", "=\\=", "<", ">", "=")


def _token_span(tok: Token, length: int = 1) -> Span:
    return Span(tok.line, tok.column, tok.line, tok.column + length)


class ParsedProgram:
    """The raw parse result: rules plus classified directives.

    ``source`` keeps the original text so diagnostics can render caret
    excerpts; rules and directives carry their clause spans.
    """

    def __init__(self, source: str = ""):
        self.rules: list[Rule] = []
        self.directives: list[Directive] = []
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParsedProgram(rules={len(self.rules)}, directives={len(self.directives)})"


class _Parser:
    def __init__(self, tokens: list[Token], source: str = ""):
        self.tokens = tokens
        self.source = source
        self.pos = 0

    # Token helpers -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def error(self, msg: str) -> NoReturn:
        tok = self.cur
        raise WLogSyntaxError(msg, tok.line, tok.column, source=self.source)

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def at(self, kind: str, value: object | None = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (value is None or tok.value == value)

    def at_atom(self, name: str) -> bool:
        return self.at("ATOM", name)

    def expect(self, kind: str, value: object | None = None) -> Token:
        if not self.at(kind, value):
            want = value if value is not None else kind
            self.error(f"expected {want!r}, found {self.cur.value!r}")
        return self.advance()

    # Program -----------------------------------------------------------

    def parse_program(self) -> ParsedProgram:
        out = ParsedProgram(source=self.source)
        while not self.at("EOF"):
            self.parse_clause(out)
        return out

    def _clause_span(self, start: Token) -> Span:
        """Span from a clause's first token through its just-consumed END."""
        end = self.tokens[self.pos - 1]
        return Span(start.line, start.column, end.line, end.column + 1)

    def parse_clause(self, out: ParsedProgram) -> None:
        start = self.cur
        if self.at_atom("goal"):
            self.advance()
            directive = self.parse_goal_directive()
        elif self.at_atom("cons"):
            self.advance()
            directive = self.parse_cons_directive()
        elif self.at_atom("var") and not self._looks_like_callable():
            self.advance()
            directive = self.parse_var_directive()
        else:
            term = self.parse_goal_term()
            directive = self._classify_directive(term)
            if directive is not None and not self.at("PUNCT", ":-"):
                self.expect("END")
                out.directives.append(
                    dataclasses.replace(directive, span=self._clause_span(start))
                )
                return
            if self.at("PUNCT", ":-"):
                self.advance()
                body = tuple(self.parse_body())
            else:
                body = ()
            self.expect("END")
            out.rules.append(Rule(term, body, span=self._clause_span(start)))
            return
        out.directives.append(dataclasses.replace(directive, span=self._clause_span(start)))

    def _looks_like_callable(self) -> bool:
        """Distinguish the ``var`` keyword from a predicate named var."""
        nxt = self.tokens[self.pos + 1]
        return nxt.kind == "PUNCT" and nxt.value == "("

    @staticmethod
    def _classify_directive(term: Term) -> Directive | None:
        if isinstance(term, Struct) and term.indicator == ("import", 1):
            arg = term.args[0]
            if isinstance(arg, Atom):
                return Directive("import", arg.name)
        if isinstance(term, Struct) and term.indicator == ("enabled", 1):
            arg = term.args[0]
            if isinstance(arg, Atom):
                return Directive("enabled", arg.name)
        if isinstance(term, Struct) and term.indicator == ("fault_model", 2):
            rate, mtbf = term.args
            if isinstance(rate, Num) and isinstance(mtbf, Num):
                return Directive(
                    "fault_model", FaultSpec(rate=float(rate.value), mtbf=float(mtbf.value))
                )
        return None

    # Directives ----------------------------------------------------------

    def parse_goal_directive(self) -> Directive:
        if self.at_atom("minimize") or self.at_atom("maximize"):
            mode = self.advance().value
        else:
            self.error("goal directive must start with 'minimize' or 'maximize'")
        objective = self.parse_expression()
        if not isinstance(objective, Var):
            self.error("goal objective must be a variable (e.g. 'minimize Ct in ...')")
        self.expect("ATOM", "in")
        pred = self.parse_goal_term()
        self.expect("END")
        return Directive("goal", GoalSpec(mode=str(mode), objective=objective, predicate=pred))

    def parse_cons_directive(self) -> Directive:
        first = self.parse_expression()
        variable: Var | None = None
        predicate: Term
        if isinstance(first, Var) and self.at_atom("in"):
            variable = first
            self.advance()
            predicate = self.parse_goal_term()
        else:
            predicate = first
        requirement: Term | None = None
        if self.at_atom("satisfies"):
            self.advance()
            requirement = self.parse_goal_term()
        self.expect("END")
        return Directive(
            "cons", ConsSpec(variable=variable, predicate=predicate, requirement=requirement)
        )

    def parse_var_directive(self) -> Directive:
        decl = self.parse_goal_term()
        domains: list[Term] = []
        if self.at_atom("forall"):
            self.advance()
            domains.append(self.parse_goal_term())
            while self.at_atom("and"):
                self.advance()
                domains.append(self.parse_goal_term())
        self.expect("END")
        return Directive("var", VarSpec(declaration=decl, domains=tuple(domains)))

    # Rule bodies -----------------------------------------------------------

    def parse_body(self) -> list[Term]:
        goals = [self.parse_goal_term()]
        while self.at("PUNCT", ","):
            self.advance()
            goals.append(self.parse_goal_term())
        return goals

    def parse_goal_term(self) -> Term:
        """One body goal: expression, optionally joined by a comparison."""
        if self.at("PUNCT", "!"):
            tok = self.advance()
            return Atom("!", span=_token_span(tok))
        if self.at("PUNCT", "\\+"):
            tok = self.advance()
            return Struct("\\+", (self.parse_goal_term(),), span=_token_span(tok, 2))
        left = self.parse_expression()
        if self.at_atom("is"):
            tok = self.advance()
            return Struct("is", (left, self.parse_expression()), span=_token_span(tok, 2))
        for op in _COMPARISONS:
            if self.at("PUNCT", op):
                tok = self.advance()
                return Struct(op, (left, self.parse_expression()), span=_token_span(tok, len(op)))
        return left

    # Expressions -------------------------------------------------------------

    def parse_expression(self) -> Term:
        left = self.parse_mul()
        while self.at("PUNCT", "+") or self.at("PUNCT", "-"):
            op = self.advance().value
            left = Struct(str(op), (left, self.parse_mul()))
        return left

    def parse_mul(self) -> Term:
        left = self.parse_primary()
        while self.at("PUNCT", "*") or self.at("PUNCT", "/"):
            op = self.advance().value
            left = Struct(str(op), (left, self.parse_primary()))
        return left

    def parse_primary(self) -> Term:
        tok = self.cur
        if tok.kind in ("NUM", "PERCENT"):
            self.advance()
            return Num(float(tok.value))
        if tok.kind == "PUNCT" and tok.value == "-":
            self.advance()
            inner = self.parse_primary()
            if isinstance(inner, Num):
                return Num(-inner.value)
            return Struct("-", (Num(0.0), inner))
        if tok.kind == "VAR":
            self.advance()
            span = _token_span(tok, len(str(tok.value)))
            if tok.value == "_":
                # Each underscore is a distinct anonymous variable.
                return Var(f"_G{id(tok)}", span=span)
            return Var(str(tok.value), span=span)
        if tok.kind == "ATOM":
            self.advance()
            name = str(tok.value)
            span = _token_span(tok, len(name))
            if self.at("PUNCT", "("):
                self.advance()
                args = [self.parse_goal_term()]
                while self.at("PUNCT", ","):
                    self.advance()
                    args.append(self.parse_goal_term())
                self.expect("PUNCT", ")")
                return Struct(name, tuple(args), span=span)
            return Atom(name, span=span)
        if tok.kind == "PUNCT" and tok.value == "(":
            self.advance()
            inner = self.parse_goal_term()
            # A parenthesized conjunction (e.g. inside findall/3) becomes
            # nested ','/2 structures, right-associated.
            conj = [inner]
            while self.at("PUNCT", ","):
                self.advance()
                conj.append(self.parse_goal_term())
            self.expect("PUNCT", ")")
            inner = conj[-1]
            for g in reversed(conj[:-1]):
                inner = Struct(",", (g, inner))
            return inner
        if tok.kind == "PUNCT" and tok.value == "[":
            return self.parse_list()
        self.error(f"unexpected token {tok.value!r}")

    def parse_list(self) -> Term:
        self.expect("PUNCT", "[")
        if self.at("PUNCT", "]"):
            self.advance()
            return NIL
        items = [self.parse_goal_term()]
        while self.at("PUNCT", ","):
            self.advance()
            items.append(self.parse_goal_term())
        tail: Term = NIL
        if self.at("PUNCT", "|"):
            self.advance()
            tail = self.parse_goal_term()
        self.expect("PUNCT", "]")
        return make_list(items, tail)


# Public API -------------------------------------------------------------------


def parse_program(text: str) -> ParsedProgram:
    """Parse WLog source into rules + directives."""
    return _Parser(tokenize(text), source=text).parse_program()


def parse_term(text: str) -> Term:
    """Parse a single term (no trailing period required)."""
    parser = _Parser(tokenize(text), source=text)
    term = parser.parse_goal_term()
    if not parser.at("EOF") and not parser.at("END"):
        parser.error(f"trailing input after term: {parser.cur.value!r}")
    return term


def parse_query(text: str) -> list[Term]:
    """Parse a comma-separated conjunction of goals (no trailing period)."""
    parser = _Parser(tokenize(text), source=text)
    goals = parser.parse_body()
    if not parser.at("EOF") and not parser.at("END"):
        parser.error(f"trailing input after query: {parser.cur.value!r}")
    return goals
