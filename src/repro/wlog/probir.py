"""The probabilistic intermediate representation and its evaluation.

Translation (paper Section 5.1): a WLog program plus its imports become

* ordinary rules (program rules + deterministic imported facts), and
* probabilistic fact families ``p_j : exetime(Tid, Vid, T_j)`` -- one
  weighted fact per histogram bin of the calibrated task-time
  distribution.

Evaluation (paper Algorithm 1): a query is answered by Monte Carlo --
each iteration samples one *realization* (a concrete value for every
probabilistic fact family), evaluates the query against the resulting
deterministic database with the SLD engine, and aggregates:

* constraint queries -> the fraction of realizations in which the
  constraint holds (the estimate of P(constraint));
* goal queries -> the mean of the queried objective value.

Deterministic goals/constraints (Section 5.1, "Support for
deterministic goals and constraints") use the same machinery with every
fact collapsed to its mean at probability 1.0.

This interpreter path is the *reference semantics*; the solver's
vectorized backend (:mod:`repro.solver.backends`) computes the same
quantities as array programs and is cross-checked against this module
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import WLogError, WLogRuntimeError
from repro.common.rng import spawn_rng
from repro.wlog.engine import Database, Engine
from repro.wlog.imports import ImportRegistry, MaterializedImports, ProbFactSpec
from repro.wlog.program import ConsSpec, WLogProgram
from repro.wlog.terms import Num, Rule, Struct, Term, to_python

__all__ = ["ProbFact", "ProbabilisticIR", "IREvaluation", "translate"]

#: Public alias: one probabilistic fact family.
ProbFact = ProbFactSpec


@dataclass(frozen=True)
class IREvaluation:
    """Result of evaluating a candidate solution against the IR."""

    goal_value: float
    feasible: bool
    constraint_probabilities: tuple[float, ...]
    iterations: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IREvaluation(goal={self.goal_value:.6g}, feasible={self.feasible}, "
            f"cons={[round(p, 3) for p in self.constraint_probabilities]})"
        )


class ProbabilisticIR:
    """A translated WLog program ready for Monte Carlo query evaluation."""

    def __init__(
        self,
        program: WLogProgram,
        materialized: MaterializedImports,
        deterministic: bool = False,
    ):
        self.program = program
        self.materialized = materialized
        self.deterministic = deterministic
        base = Database(program.rules)
        base.extend(materialized.rules)
        self._base = base
        self.prob_facts: tuple[ProbFactSpec, ...] = tuple(materialized.prob_facts)

    # Databases ------------------------------------------------------------

    def deterministic_database(self, extra_rules: tuple[Rule, ...] = ()) -> Database:
        """All probabilistic facts collapsed to their means (p = 1.0)."""
        db = self._base.clone()
        for fact in self.prob_facts:
            db.add(fact.mean_rule())
        db.extend(extra_rules)
        return db

    def sampled_database(
        self, rng: np.random.Generator, extra_rules: tuple[Rule, ...] = ()
    ) -> Database:
        """One Monte Carlo realization of the probabilistic facts."""
        db = self._base.clone()
        for fact in self.prob_facts:
            value = fact.histogram.sample(rng)
            db.add(Rule(Struct(fact.functor, (*fact.key, Num(float(value))))))
        db.extend(extra_rules)
        return db

    # Queries ----------------------------------------------------------------

    def _goal_query(self) -> tuple[Term, str]:
        goal = self.program.goal
        if goal is None:
            raise WLogError("program has no goal to evaluate")
        return goal.predicate, goal.objective.name

    @staticmethod
    def _constraint_threshold(cons: ConsSpec) -> tuple[float, float, str]:
        """Decode a requirement into (percentile, bound, kind).

        For ``reliability(P, R)`` the bound is the retry budget ``R``.
        """
        req = cons.requirement
        if req is None:
            return (100.0, float("nan"), "boolean")
        if (
            isinstance(req, Struct)
            and req.functor in ("deadline", "budget", "reliability")
            and req.arity == 2
        ):
            p = to_python(req.args[0])
            bound = to_python(req.args[1])
            if not isinstance(p, (int, float)) or not isinstance(bound, (int, float)):
                raise WLogError(f"malformed requirement {req!r}")
            return (float(p), float(bound), req.functor)
        raise WLogError(f"unsupported constraint requirement: {req!r}")

    def _reliability_truth(self, cons: ConsSpec) -> bool:
        """Whether the declared fault model meets a reliability level.

        Analytic, not sampled: per-task success within the retry budget
        is the geometric tail ``1 - f**(R+1)``, and the plan succeeds if
        every task of every imported workflow does.  The same closed
        form gates the compiled path
        (:attr:`repro.solver.backends.CompiledProblem.plan_success_probability`).
        """
        from repro.faults.recovery import RecoveryPolicy

        level, retries, _kind = self._constraint_threshold(cons)
        spec = self.program.fault_spec
        if spec is None:
            raise WLogError(
                "reliability constraint needs a fault_model(Rate, Mtbf) directive"
            )
        policy = RecoveryPolicy(max_retries=int(retries))
        num_tasks = sum(len(wf) for wf in self.materialized.workflows.values()) or 1
        prob = spec.to_fault_model().plan_success_probability(num_tasks, policy)
        return prob >= level / 100.0 - 1e-12

    def _eval_once(self, db: Database, assignment_rules: tuple[Rule, ...]) -> tuple[float, list[bool]]:
        """Evaluate goal value + constraint truths on one realization."""
        engine = Engine(db)
        goal_pred, goal_var = self._goal_query()
        sol = engine.first(goal_pred)
        if sol is None:
            raise WLogRuntimeError(f"goal predicate {goal_pred!r} has no solution")
        value = to_python(sol[goal_var])
        if not isinstance(value, (int, float)):
            raise WLogRuntimeError(f"goal variable bound to non-number: {sol[goal_var]!r}")

        truths: list[bool] = []
        for cons in self.program.constraints:
            _, bound, kind = self._constraint_threshold(cons)
            if kind == "boolean":
                truths.append(engine.ask(cons.predicate))
                continue
            if kind == "reliability":
                truths.append(self._reliability_truth(cons))
                continue
            if cons.variable is None:
                raise WLogError("deadline/budget constraint needs a measured variable")
            csol = engine.first(cons.predicate)
            if csol is None:
                truths.append(False)
                continue
            measured = to_python(csol[cons.variable.name])
            truths.append(float(measured) <= bound)
        return float(value), truths

    def evaluate(
        self,
        assignment_rules: tuple[Rule, ...] = (),
        max_iter: int = 50,
        seed: int = 0,
    ) -> IREvaluation:
        """Algorithm 1: Monte Carlo estimation of goal and constraints.

        ``assignment_rules`` carries the candidate solution (the
        ``configs``/``migrate`` facts the solver is testing).  In
        deterministic mode a single evaluation over the mean database is
        performed (every rule has probability 1.0, so one realization is
        exact).
        """
        if self.deterministic or not self.prob_facts:
            db = self.deterministic_database(tuple(assignment_rules))
            value, truths = self._eval_once(db, tuple(assignment_rules))
            probs = tuple(1.0 if t else 0.0 for t in truths)
            feasible = self._feasibility(probs)
            return IREvaluation(value, feasible, probs, 1)

        if max_iter < 1:
            raise WLogError(f"max_iter must be >= 1, got {max_iter}")
        rng = spawn_rng(seed, "probir/monte-carlo")
        total = 0.0
        cons_true = np.zeros(len(self.program.constraints))
        for _ in range(max_iter):
            db = self.sampled_database(rng, tuple(assignment_rules))
            value, truths = self._eval_once(db, tuple(assignment_rules))
            total += value
            cons_true += np.asarray(truths, dtype=float)
        probs = tuple(float(p) for p in cons_true / max_iter)
        return IREvaluation(total / max_iter, self._feasibility(probs), probs, max_iter)

    def _feasibility(self, probabilities: tuple[float, ...]) -> bool:
        """P(constraint) >= required level, for every constraint."""
        for cons, prob in zip(self.program.constraints, probabilities):
            level, _, kind = self._constraint_threshold(cons)
            if kind == "boolean":
                if prob < 1.0:
                    return False
            elif prob < level / 100.0 - 1e-12:
                return False
        return True


def translate(
    program: WLogProgram,
    registry: ImportRegistry,
    deterministic: bool = False,
) -> ProbabilisticIR:
    """Translate a WLog program into its probabilistic IR.

    ``deterministic=True`` produces the p = 1.0 collapse used for
    runtime (follow-the-cost style) optimizations.
    """
    materialized = registry.materialize(program.imports)
    return ProbabilisticIR(program, materialized, deterministic=deterministic)
