"""Scheduler callouts: the pluggable site-selection stage of the WMS.

Users of the paper's Pegasus integration "alternatively choose from
several traditional schedulers provided by Pegasus and our proposed
Deco" -- this module is that choice point.
"""

from __future__ import annotations

import abc

from repro.baselines.autoscaling import autoscaling_plan
from repro.baselines.static import random_plan
from repro.cloud.instance_types import Catalog
from repro.common.errors import ValidationError
from repro.engine.deco import Deco
from repro.wms.mapper import ExecutableWorkflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "FixedPlanScheduler",
    "AutoscalingScheduler",
    "DecoScheduler",
]


class Scheduler(abc.ABC):
    """Binds every job of an executable workflow to an instance type."""

    name: str = "abstract"

    @abc.abstractmethod
    def schedule(self, executable: ExecutableWorkflow) -> ExecutableWorkflow:
        """Return a fully site-bound copy of ``executable``."""


class RandomScheduler(Scheduler):
    """Pegasus's default: a uniformly random site per task."""

    name = "random"

    def __init__(self, catalog: Catalog, seed: int = 0):
        self.catalog = catalog
        self.seed = seed

    def schedule(self, executable: ExecutableWorkflow) -> ExecutableWorkflow:
        plan = random_plan(executable.workflow, self.catalog, seed=self.seed)
        return executable.with_assignment(plan)


class FixedPlanScheduler(Scheduler):
    """Applies a precomputed task -> type plan (e.g. a stored Deco plan)."""

    name = "fixed"

    def __init__(self, assignment: dict[str, str]):
        if not assignment:
            raise ValidationError("fixed plan must be non-empty")
        self.assignment = dict(assignment)

    def schedule(self, executable: ExecutableWorkflow) -> ExecutableWorkflow:
        return executable.with_assignment(self.assignment)


class AutoscalingScheduler(Scheduler):
    """The Auto-scaling baseline as a WMS scheduler callout."""

    name = "autoscaling"

    def __init__(self, catalog: Catalog, deadline: float, runtime_model: RuntimeModel | None = None):
        self.catalog = catalog
        self.deadline = deadline
        self.model = runtime_model or RuntimeModel(catalog)

    def schedule(self, executable: ExecutableWorkflow) -> ExecutableWorkflow:
        plan = autoscaling_plan(executable.workflow, self.catalog, self.deadline, self.model)
        return executable.with_assignment(plan)


class DecoScheduler(Scheduler):
    """Deco as the WMS scheduler callout (the paper's integration).

    The scheduler runs the full declarative optimization (probabilistic
    deadline, transformation-driven search on the vectorized backend)
    and binds the resulting plan.  The last computed plan is kept on
    ``last_plan`` so the WMS can report optimizer statistics.
    """

    name = "deco"

    def __init__(
        self,
        deco: Deco,
        deadline: float | str = "medium",
        deadline_percentile: float = 96.0,
    ):
        self.deco = deco
        self.deadline = deadline
        self.deadline_percentile = deadline_percentile
        self.last_plan = None

    def schedule(self, executable: ExecutableWorkflow) -> ExecutableWorkflow:
        plan = self.deco.schedule(
            executable.workflow,
            deadline=self.deadline,
            deadline_percentile=self.deadline_percentile,
        )
        self.last_plan = plan
        return executable.with_assignment(plan.assignment)
