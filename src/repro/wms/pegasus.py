"""The WMS facade: submit -> plan -> schedule -> execute (paper Fig. 3).

:class:`PegasusLite` reproduces the pipeline of the paper's Pegasus
integration: a DAX file (or in-memory workflow) is planned by the
mapper, bound to sites by the chosen scheduler callout (Random /
Autoscaling / Deco / fixed), executed on the cloud simulator, and the
Condor-style queue replays the execution to validate dependencies and
produce the event log.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.cloud.instance_types import Catalog
from repro.cloud.simulator import CloudSimulator, ExecutionResult
from repro.common.rng import RngService
from repro.wms.condor import CondorQueue, JobEvent
from repro.wms.mapper import ExecutableWorkflow, Mapper
from repro.wms.scheduler import Scheduler
from repro.workflow.dag import Workflow
from repro.workflow.dax import parse_dax

__all__ = ["SubmitResult", "PegasusLite"]


@dataclass(frozen=True)
class SubmitResult:
    """Everything a submission produced."""

    executable: ExecutableWorkflow
    execution: ExecutionResult
    events: tuple[JobEvent, ...]

    @property
    def makespan(self) -> float:
        return self.execution.makespan

    @property
    def cost(self) -> float:
        return self.execution.cost

    def assignment(self) -> dict[str, str]:
        return self.executable.assignment()


class PegasusLite:
    """A minimal WMS wired to the cloud simulator."""

    def __init__(
        self,
        catalog: Catalog,
        scheduler: Scheduler,
        mapper: Mapper | None = None,
        simulator: CloudSimulator | None = None,
        seed: int = 0,
    ):
        self.catalog = catalog
        self.scheduler = scheduler
        self.mapper = mapper or Mapper()
        self.simulator = simulator or CloudSimulator(catalog, RngService(seed))

    def submit(
        self,
        workflow: Workflow | str | Path,
        region: str | None = None,
        run_id: int = 0,
    ) -> SubmitResult:
        """Run the full pipeline on a workflow or a DAX file path."""
        if not isinstance(workflow, Workflow):
            workflow = parse_dax(workflow)
        executable = self.mapper.plan(workflow)
        scheduled = self.scheduler.schedule(executable)
        execution = self.simulator.execute(
            workflow, scheduled.assignment(), region=region, run_id=run_id
        )
        queue = CondorQueue(workflow)
        queue.replay(execution.task_records)
        return SubmitResult(
            executable=scheduled,
            execution=execution,
            events=tuple(queue.events),
        )
