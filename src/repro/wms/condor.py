"""A Condor/DAGMan-style job queue.

Pegasus hands executable workflows to HTCondor via DAGMan, which
releases a job once all its parents have completed and tracks each
job's lifecycle.  This module reproduces that state machine: jobs move
``UNREADY -> IDLE -> RUNNING -> DONE`` and every transition is recorded
as a :class:`JobEvent` -- the analogue of the DAGMan event log.

Failure handling follows DAGMan too: a running job can **fail**
(``RUNNING -> FAILED``) and be **retried** (``FAILED -> IDLE``), an
idle or failed job can be **held** out of the queue and **released**
back (``condor_hold``/``condor_release``), and a partially completed
run can be checkpointed into a *rescue workflow*
(:meth:`CondorQueue.rescue` / :meth:`CondorQueue.from_rescue`): the
rescue records which jobs already succeeded so a resubmission skips
them and resumes exactly where the aborted run stopped.

The queue is deliberately execution-agnostic: the WMS execution engine
drives it with the start/finish times the cloud simulator produced, and
the queue validates that the dependency discipline was respected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.workflow.dag import Workflow

__all__ = ["JobState", "JobEvent", "CondorQueue"]


class JobState(enum.Enum):
    UNREADY = "unready"   # waiting on parents
    IDLE = "idle"         # ready, waiting for a slot
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"     # attempt failed; retry() resubmits it
    HELD = "held"         # operator-held; release() requeues it


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle transition (the DAGMan log line)."""

    time: float
    job_id: str
    state: JobState

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.time:10.2f}] {self.job_id} -> {self.state.value}"


class CondorQueue:
    """Dependency-aware job state machine for one workflow."""

    def __init__(self, workflow: Workflow):
        self.workflow = workflow
        self._state: dict[str, JobState] = {}
        self._pending_parents: dict[str, int] = {}
        self.events: list[JobEvent] = []
        for tid in workflow.task_ids:
            n = len(workflow.parents(tid))
            self._pending_parents[tid] = n
            self._state[tid] = JobState.IDLE if n == 0 else JobState.UNREADY
        for tid in workflow.roots():
            self.events.append(JobEvent(0.0, tid, JobState.IDLE))

    # Introspection ------------------------------------------------------

    def state(self, job_id: str) -> JobState:
        try:
            return self._state[job_id]
        except KeyError:
            raise ValidationError(f"unknown job {job_id!r}") from None

    def idle_jobs(self) -> tuple[str, ...]:
        """Jobs ready to start, topological order."""
        return tuple(t for t in self.workflow.task_ids if self._state[t] == JobState.IDLE)

    def jobs_in(self, state: JobState) -> tuple[str, ...]:
        """Jobs currently in ``state``, topological order."""
        return tuple(t for t in self.workflow.task_ids if self._state[t] == state)

    @property
    def all_done(self) -> bool:
        return all(s == JobState.DONE for s in self._state.values())

    @property
    def stuck(self) -> bool:
        """Nothing can make progress: no idle/running jobs, not all done.

        True for an aborted run (failed/held jobs blocking their
        descendants) -- the state DAGMan writes a rescue file in.
        """
        if self.all_done:
            return False
        return not any(
            s in (JobState.IDLE, JobState.RUNNING) for s in self._state.values()
        )

    def counts(self) -> dict[JobState, int]:
        out = {s: 0 for s in JobState}
        for s in self._state.values():
            out[s] += 1
        return out

    # Transitions ----------------------------------------------------------

    def start(self, job_id: str, time: float) -> None:
        """IDLE -> RUNNING; rejects dependency violations."""
        state = self.state(job_id)
        if state != JobState.IDLE:
            raise ValidationError(
                f"cannot start {job_id!r}: state is {state.value} "
                f"({self._pending_parents[job_id]} parents pending)"
            )
        self._state[job_id] = JobState.RUNNING
        self.events.append(JobEvent(time, job_id, JobState.RUNNING))

    def finish(self, job_id: str, time: float) -> tuple[str, ...]:
        """RUNNING -> DONE; releases newly ready children (returned)."""
        state = self.state(job_id)
        if state != JobState.RUNNING:
            raise ValidationError(f"cannot finish {job_id!r}: state is {state.value}")
        self._state[job_id] = JobState.DONE
        self.events.append(JobEvent(time, job_id, JobState.DONE))
        released = []
        for child in self.workflow.children(job_id):
            self._pending_parents[child] -= 1
            if self._pending_parents[child] == 0:
                self._state[child] = JobState.IDLE
                self.events.append(JobEvent(time, child, JobState.IDLE))
                released.append(child)
        return tuple(released)

    def fail(self, job_id: str, time: float) -> None:
        """RUNNING -> FAILED; descendants stay unready until a retry."""
        state = self.state(job_id)
        if state != JobState.RUNNING:
            raise ValidationError(f"cannot fail {job_id!r}: state is {state.value}")
        self._state[job_id] = JobState.FAILED
        self.events.append(JobEvent(time, job_id, JobState.FAILED))

    def retry(self, job_id: str, time: float) -> None:
        """FAILED -> IDLE: resubmit a failed job (DAGMan RETRY)."""
        state = self.state(job_id)
        if state != JobState.FAILED:
            raise ValidationError(f"cannot retry {job_id!r}: state is {state.value}")
        self._state[job_id] = JobState.IDLE
        self.events.append(JobEvent(time, job_id, JobState.IDLE))

    def hold(self, job_id: str, time: float) -> None:
        """IDLE or FAILED -> HELD (``condor_hold``)."""
        state = self.state(job_id)
        if state not in (JobState.IDLE, JobState.FAILED):
            raise ValidationError(f"cannot hold {job_id!r}: state is {state.value}")
        self._state[job_id] = JobState.HELD
        self.events.append(JobEvent(time, job_id, JobState.HELD))

    def release(self, job_id: str, time: float) -> None:
        """HELD -> IDLE (``condor_release``)."""
        state = self.state(job_id)
        if state != JobState.HELD:
            raise ValidationError(f"cannot release {job_id!r}: state is {state.value}")
        self._state[job_id] = JobState.IDLE
        self.events.append(JobEvent(time, job_id, JobState.IDLE))

    # Rescue semantics ------------------------------------------------------

    def rescue(self) -> frozenset[str]:
        """The rescue record: ids of every job that completed.

        This is the content of a DAGMan rescue DAG -- the original
        workflow annotated with ``DONE`` markers.  Feed it back through
        :meth:`from_rescue` to resume the run without re-executing the
        completed work.
        """
        return frozenset(t for t, s in self._state.items() if s == JobState.DONE)

    @classmethod
    def from_rescue(cls, workflow: Workflow, done: frozenset[str] | set[str]) -> "CondorQueue":
        """A resumable queue with ``done`` jobs pre-completed.

        Validates the rescue record: every done job must exist and have
        only done parents (a rescue can never mark a child complete
        before its parents).  Jobs whose parents are all done become
        IDLE; everything else waits as usual.
        """
        unknown = sorted(set(done) - set(workflow.task_ids))
        if unknown:
            raise ValidationError(f"rescue record names unknown jobs {unknown[:5]}")
        for tid in done:
            missing = [p for p in workflow.parents(tid) if p not in done]
            if missing:
                raise ValidationError(
                    f"rescue record marks {tid!r} done but its parent "
                    f"{missing[0]!r} is not"
                )
        queue = cls.__new__(cls)
        queue.workflow = workflow
        queue._state = {}
        queue._pending_parents = {}
        queue.events = []
        for tid in workflow.task_ids:
            pending = sum(1 for p in workflow.parents(tid) if p not in done)
            queue._pending_parents[tid] = pending
            if tid in done:
                queue._state[tid] = JobState.DONE
                queue.events.append(JobEvent(0.0, tid, JobState.DONE))
            elif pending == 0:
                queue._state[tid] = JobState.IDLE
                queue.events.append(JobEvent(0.0, tid, JobState.IDLE))
            else:
                queue._state[tid] = JobState.UNREADY
        return queue

    def replay(self, records) -> None:
        """Drive the queue from simulator task records (start/finish times).

        Validates that the simulated execution respected every
        dependency; raises :class:`ValidationError` otherwise.  Records
        from a censored (aborted) run are accepted: already-done jobs
        are skipped and the queue simply ends partially complete, ready
        for :meth:`rescue`.
        """
        transitions = []
        for rec in records:
            if self._state.get(rec.task_id) == JobState.DONE:
                continue  # resuming from a rescue: completed work stays done
            # Finishes sort before starts on time ties: a child may start
            # at the exact instant its last parent finishes.
            transitions.append((rec.finish, 0, rec.task_id))
            transitions.append((rec.start, 1, rec.task_id))
        transitions.sort()
        for time, kind, tid in transitions:
            if kind == 0:
                self.finish(tid, time)
            else:
                self.start(tid, time)
