"""A Condor/DAGMan-style job queue.

Pegasus hands executable workflows to HTCondor via DAGMan, which
releases a job once all its parents have completed and tracks each
job's lifecycle.  This module reproduces that state machine: jobs move
``UNREADY -> IDLE -> RUNNING -> DONE`` and every transition is recorded
as a :class:`JobEvent` -- the analogue of the DAGMan event log.

The queue is deliberately execution-agnostic: the WMS execution engine
drives it with the start/finish times the cloud simulator produced, and
the queue validates that the dependency discipline was respected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.workflow.dag import Workflow

__all__ = ["JobState", "JobEvent", "CondorQueue"]


class JobState(enum.Enum):
    UNREADY = "unready"   # waiting on parents
    IDLE = "idle"         # ready, waiting for a slot
    RUNNING = "running"
    DONE = "done"


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle transition (the DAGMan log line)."""

    time: float
    job_id: str
    state: JobState

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.time:10.2f}] {self.job_id} -> {self.state.value}"


class CondorQueue:
    """Dependency-aware job state machine for one workflow."""

    def __init__(self, workflow: Workflow):
        self.workflow = workflow
        self._state: dict[str, JobState] = {}
        self._pending_parents: dict[str, int] = {}
        self.events: list[JobEvent] = []
        for tid in workflow.task_ids:
            n = len(workflow.parents(tid))
            self._pending_parents[tid] = n
            self._state[tid] = JobState.IDLE if n == 0 else JobState.UNREADY
        for tid in workflow.roots():
            self.events.append(JobEvent(0.0, tid, JobState.IDLE))

    # Introspection ------------------------------------------------------

    def state(self, job_id: str) -> JobState:
        try:
            return self._state[job_id]
        except KeyError:
            raise ValidationError(f"unknown job {job_id!r}") from None

    def idle_jobs(self) -> tuple[str, ...]:
        """Jobs ready to start, topological order."""
        return tuple(t for t in self.workflow.task_ids if self._state[t] == JobState.IDLE)

    @property
    def all_done(self) -> bool:
        return all(s == JobState.DONE for s in self._state.values())

    def counts(self) -> dict[JobState, int]:
        out = {s: 0 for s in JobState}
        for s in self._state.values():
            out[s] += 1
        return out

    # Transitions ----------------------------------------------------------

    def start(self, job_id: str, time: float) -> None:
        """IDLE -> RUNNING; rejects dependency violations."""
        state = self.state(job_id)
        if state != JobState.IDLE:
            raise ValidationError(
                f"cannot start {job_id!r}: state is {state.value} "
                f"({self._pending_parents[job_id]} parents pending)"
            )
        self._state[job_id] = JobState.RUNNING
        self.events.append(JobEvent(time, job_id, JobState.RUNNING))

    def finish(self, job_id: str, time: float) -> tuple[str, ...]:
        """RUNNING -> DONE; releases newly ready children (returned)."""
        state = self.state(job_id)
        if state != JobState.RUNNING:
            raise ValidationError(f"cannot finish {job_id!r}: state is {state.value}")
        self._state[job_id] = JobState.DONE
        self.events.append(JobEvent(time, job_id, JobState.DONE))
        released = []
        for child in self.workflow.children(job_id):
            self._pending_parents[child] -= 1
            if self._pending_parents[child] == 0:
                self._state[child] = JobState.IDLE
                self.events.append(JobEvent(time, child, JobState.IDLE))
                released.append(child)
        return tuple(released)

    def replay(self, records) -> None:
        """Drive the queue from simulator task records (start/finish times).

        Validates that the simulated execution respected every
        dependency; raises :class:`ValidationError` otherwise.
        """
        transitions = []
        for rec in records:
            # Finishes sort before starts on time ties: a child may start
            # at the exact instant its last parent finishes.
            transitions.append((rec.finish, 0, rec.task_id))
            transitions.append((rec.start, 1, rec.task_id))
        transitions.sort()
        for time, kind, tid in transitions:
            if kind == 0:
                self.finish(tid, time)
            else:
                self.start(tid, time)
        if not self.all_done:
            raise ValidationError("replay ended with unfinished jobs")
