"""The WMS mapper: abstract workflow -> executable workflow.

Pegasus's mapper resolves each abstract task to a concrete executable
and an execution site.  Our executable catalog maps transformation
names (``mProjectPP``...) to binary paths; the site is filled in later
by the scheduler (instance type + region), after which the workflow is
ready for the execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.common.errors import ValidationError
from repro.workflow.dag import Task, Workflow

__all__ = ["ExecutableJob", "ExecutableWorkflow", "Mapper"]


@dataclass(frozen=True)
class ExecutableJob:
    """One task bound to an executable and (optionally) a site."""

    task: Task
    executable_path: str
    site: str | None = None  # instance type name once scheduled

    def bound(self, site: str) -> "ExecutableJob":
        return ExecutableJob(self.task, self.executable_path, site)


@dataclass
class ExecutableWorkflow:
    """The mapper's output: jobs + the original DAG structure."""

    workflow: Workflow
    jobs: dict[str, ExecutableJob]

    def __post_init__(self):
        missing = [t for t in self.workflow.task_ids if t not in self.jobs]
        if missing:
            raise ValidationError(f"executable workflow missing jobs for {missing[:3]}")

    @property
    def is_scheduled(self) -> bool:
        return all(j.site is not None for j in self.jobs.values())

    def assignment(self) -> dict[str, str]:
        """task id -> site (instance type); requires a scheduled workflow."""
        if not self.is_scheduled:
            unbound = [t for t, j in self.jobs.items() if j.site is None]
            raise ValidationError(f"jobs not yet scheduled: {unbound[:3]}")
        return {tid: job.site for tid, job in self.jobs.items()}  # type: ignore[misc]

    def with_assignment(self, assignment: Mapping[str, str]) -> "ExecutableWorkflow":
        """Bind every job to its scheduled site."""
        jobs = {}
        for tid, job in self.jobs.items():
            try:
                jobs[tid] = job.bound(assignment[tid])
            except KeyError:
                raise ValidationError(f"assignment missing task {tid!r}") from None
        return ExecutableWorkflow(self.workflow, jobs)


class Mapper:
    """Resolves tasks to executables.

    ``executable_catalog`` maps transformation name -> path; unknown
    transformations fall back to ``/usr/local/bin/<name>`` (Pegasus
    would consult the Transformation Catalog here).
    """

    DEFAULT_PREFIX = "/usr/local/bin"

    def __init__(self, executable_catalog: Mapping[str, str] | None = None):
        self.catalog = dict(executable_catalog or {})

    def resolve(self, task: Task) -> str:
        return self.catalog.get(task.executable, f"{self.DEFAULT_PREFIX}/{task.executable}")

    def plan(self, workflow: Workflow) -> ExecutableWorkflow:
        """Map an abstract workflow to an executable one (sites unbound)."""
        jobs = {
            tid: ExecutableJob(task=workflow.task(tid), executable_path=self.resolve(workflow.task(tid)))
            for tid in workflow.task_ids
        }
        return ExecutableWorkflow(workflow, jobs)
