"""A Pegasus-like workflow management system (paper Fig. 3).

The paper integrates Deco into Pegasus as an alternative to its
traditional schedulers.  This package reproduces that integration
surface with a lightweight WMS:

* :mod:`~repro.wms.mapper` -- the *mapper*: abstract DAX workflow ->
  executable workflow (executable lookup, site binding), Fig. 3's
  first stage;
* :mod:`~repro.wms.scheduler` -- the scheduler callout interface with
  the Random default (Pegasus's), a fixed-plan scheduler, the
  Autoscaling baseline and the Deco-backed scheduler;
* :mod:`~repro.wms.condor` -- a Condor/DAGMan-style job queue: jobs
  move IDLE -> RUNNING -> DONE as their parents complete, producing the
  event log DAGMan would;
* :mod:`~repro.wms.pegasus` -- the facade: ``submit`` a DAX (or
  in-memory workflow), plan, schedule, execute on the cloud simulator.
"""

from repro.wms.mapper import ExecutableJob, ExecutableWorkflow, Mapper
from repro.wms.scheduler import (
    Scheduler,
    RandomScheduler,
    FixedPlanScheduler,
    AutoscalingScheduler,
    DecoScheduler,
)
from repro.wms.condor import CondorQueue, JobEvent, JobState
from repro.wms.pegasus import PegasusLite, SubmitResult

__all__ = [
    "ExecutableJob",
    "ExecutableWorkflow",
    "Mapper",
    "Scheduler",
    "RandomScheduler",
    "FixedPlanScheduler",
    "AutoscalingScheduler",
    "DecoScheduler",
    "CondorQueue",
    "JobEvent",
    "JobState",
    "PegasusLite",
    "SubmitResult",
]
