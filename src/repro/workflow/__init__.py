"""Scientific-workflow substrate.

Implements everything the paper assumes about workflows:

* :mod:`~repro.workflow.dag` -- the task/DAG model (the paper's Fig. 4
  pipeline example is four tasks of this model chained together).
* :mod:`~repro.workflow.dax` -- Pegasus DAX XML reader/writer, the
  interchange format between users and the WMS.
* :mod:`~repro.workflow.critical_path` -- makespan computation: static
  critical path (paper Eq. 3) and vectorized per-sample longest path.
* :mod:`~repro.workflow.runtime_model` -- task execution-time estimation
  (CPU + I/O + network components, Yu et al. style as cited by the paper).
* :mod:`~repro.workflow.generators` -- structure-accurate synthetic
  Montage / Ligo / Epigenomics / pipeline generators.
* :mod:`~repro.workflow.ensembles` -- workflow ensembles with the five
  priority distributions of the paper's Section 6 (constant, uniform
  sorted/unsorted, Pareto sorted/unsorted).
* :mod:`~repro.workflow.transformations` -- the six transformation
  operations (Move, Merge, Promote, Demote, Split, Co-scheduling) that
  drive the solver's state transitions.
"""

from repro.workflow.dag import FileSpec, Task, Workflow
from repro.workflow.dax import parse_dax, parse_dax_string, write_dax, to_dax_string
from repro.workflow.critical_path import (
    critical_path,
    static_makespan,
    makespan_samples,
    task_levels,
)
from repro.workflow.generators import (
    montage,
    ligo,
    epigenomics,
    cybershake,
    pipeline,
    random_dag,
)
from repro.workflow.ensembles import Ensemble, EnsembleMember, make_ensemble, ENSEMBLE_TYPES
from repro.workflow.analysis import WorkflowProfile, profile_workflow

__all__ = [
    "FileSpec",
    "Task",
    "Workflow",
    "parse_dax",
    "parse_dax_string",
    "write_dax",
    "to_dax_string",
    "critical_path",
    "static_makespan",
    "makespan_samples",
    "task_levels",
    "montage",
    "ligo",
    "epigenomics",
    "cybershake",
    "pipeline",
    "random_dag",
    "Ensemble",
    "EnsembleMember",
    "make_ensemble",
    "ENSEMBLE_TYPES",
    "WorkflowProfile",
    "profile_workflow",
]
