"""Task execution-time estimation (paper Section 5.1).

Following the estimation approach the paper adopts (Yu et al., cited as
[43]): given a task's input size, CPU reference time, and output size,
its execution time on an instance is the **sum of the CPU, I/O and
network components** of running it there:

* CPU: ``runtime_ref / cpu_speed`` -- deterministic (the paper finds
  CPU performance stable in the cloud);
* I/O: ``(input + output bytes) / sequential-I/O bandwidth`` -- the
  bandwidth is *dynamic*, drawn from the calibrated distribution;
* network: ``(input + output bytes) / network bandwidth`` -- staging
  data in/out of the instance, also dynamic.

Because the I/O and network bandwidths are random, the estimated task
time is itself a distribution; this module exposes it as a mean, as
vectorized samples (for the Monte Carlo evaluator) and as a histogram
(for the probabilistic IR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import spawn_rng
from repro.distributions.histogram import Histogram
from repro.cloud.instance_types import Catalog
from repro.workflow.dag import Task, Workflow

__all__ = ["TaskComponents", "RuntimeModel"]

_MIN_BANDWIDTH = 1e3  # bytes/s floor so sampled times stay finite


@dataclass(frozen=True)
class TaskComponents:
    """The three resource components of one task on one instance type."""

    cpu_seconds: float
    io_bytes: float
    net_bytes: float


class RuntimeModel:
    """Estimates task execution times on a catalog's instance types."""

    def __init__(self, catalog: Catalog, histogram_bins: int = 12):
        if histogram_bins < 1:
            raise ValidationError(f"histogram_bins must be >= 1, got {histogram_bins}")
        self.catalog = catalog
        self.histogram_bins = histogram_bins
        self._hist_cache: dict[tuple[str, str], Histogram] = {}
        self._mean_cache: dict[tuple[float, float, str], float] = {}

    # Components ------------------------------------------------------------

    def components(self, task: Task, type_name: str) -> TaskComponents:
        """CPU seconds + I/O bytes + network bytes of ``task`` on ``type_name``."""
        itype = self.catalog.type(type_name)
        return TaskComponents(
            cpu_seconds=task.runtime_ref / itype.cpu_speed,
            io_bytes=float(task.input_bytes + task.output_bytes),
            net_bytes=float(task.input_bytes + task.output_bytes),
        )

    # Mean / samples / histogram ---------------------------------------------

    def mean(self, task: Task, type_name: str) -> float:
        """E[t_ij] -- the ``M_ij`` of the paper's Eq. 2.

        Uses E[bytes/BW] ~ bytes/E[BW]; the exact expectation is within a
        few percent for the calibrated coefficient of variations, and the
        optimizer's constraint checks never rely on this approximation
        (they use Monte Carlo samples).
        """
        comp = self.components(task, type_name)
        key = (comp.cpu_seconds, comp.io_bytes, type_name)
        cached = self._mean_cache.get(key)
        if cached is not None:
            return cached
        itype = self.catalog.type(type_name)
        value = (
            comp.cpu_seconds
            + comp.io_bytes / max(itype.seq_io.mean(), _MIN_BANDWIDTH)
            + comp.net_bytes / max(itype.network.mean(), _MIN_BANDWIDTH)
        )
        self._mean_cache[key] = value
        return value

    def sample(
        self,
        task: Task,
        type_name: str,
        rng: np.random.Generator,
        size: int | None = None,
    ):
        """Sample task execution times (dynamic bandwidths)."""
        itype = self.catalog.type(type_name)
        comp = self.components(task, type_name)
        n = 1 if size is None else size
        io_bw = np.maximum(np.asarray(itype.seq_io.sample(rng, n), dtype=float), _MIN_BANDWIDTH)
        net_bw = np.maximum(np.asarray(itype.network.sample(rng, n), dtype=float), _MIN_BANDWIDTH)
        t = comp.cpu_seconds + comp.io_bytes / io_bw + comp.net_bytes / net_bw
        return float(t[0]) if size is None else t

    def histogram(self, task: Task, type_name: str, bins: int | None = None) -> Histogram:
        """The discretized distribution of ``t_ij`` (probabilistic IR facts).

        The CPU point mass is convolved with the I/O-time and network-time
        histograms (each obtained by transforming the bandwidth histogram
        through ``t = bytes / bw``).
        """
        bins = bins or self.histogram_bins
        itype = self.catalog.type(type_name)
        comp = self.components(task, type_name)
        result = Histogram.point(comp.cpu_seconds)
        for byte_count, dist in ((comp.io_bytes, itype.seq_io), (comp.net_bytes, itype.network)):
            if byte_count <= 0:
                continue
            bw_hist = Histogram.from_distribution(dist, bins=bins)
            values = byte_count / np.maximum(bw_hist.values, _MIN_BANDWIDTH)
            result = (result + Histogram(values, bw_hist.probs)).rebinned(max(bins, 16))
        return result

    def cached_histogram(self, task: Task, type_name: str) -> Histogram:
        """Memoized :meth:`histogram` keyed by (executable profile, type).

        Tasks sharing (runtime_ref, io bytes) -- common in level-structured
        scientific workflows -- share one histogram.
        """
        comp = self.components(task, type_name)
        key = (f"{comp.cpu_seconds:.6g}/{comp.io_bytes:.6g}/{comp.net_bytes:.6g}", type_name)
        hist = self._hist_cache.get(key)
        if hist is None:
            hist = self.histogram(task, type_name)
            self._hist_cache[key] = hist
        return hist

    # Workflow-level tensors ---------------------------------------------------

    def mean_vector(self, workflow: Workflow, type_name: str) -> np.ndarray:
        """Mean task times for all tasks (topological order) on one type."""
        return np.asarray([self.mean(workflow.task(tid), type_name) for tid in workflow.task_ids])

    def mean_matrix(self, workflow: Workflow) -> np.ndarray:
        """``(K, N)`` matrix of mean times: rows are catalog types in order."""
        return np.stack([self.mean_vector(workflow, name) for name in self.catalog.type_names])

    def sample_tensor(
        self,
        workflow: Workflow,
        num_samples: int,
        seed: int = 0,
        type_names: Sequence[str] | None = None,
    ) -> np.ndarray:
        """``(K, S, N)`` tensor of sampled task times.

        ``tensor[k, s, i]`` is the time of the task with topological index
        ``i`` on type ``k`` in Monte Carlo realization ``s``.  The solver
        backends precompute this once per problem; evaluating a candidate
        plan is then a pure gather + DAG propagation (the same memory
        layout a GPU kernel would use: one realization per thread).

        Each (task, type) cell uses its own deterministic RNG stream, so
        the tensor is reproducible regardless of evaluation order.
        """
        if num_samples < 1:
            raise ValidationError(f"num_samples must be >= 1, got {num_samples}")
        names = tuple(type_names or self.catalog.type_names)
        n = len(workflow)
        tensor = np.empty((len(names), num_samples, n), dtype=float)
        for k, type_name in enumerate(names):
            itype = self.catalog.type(type_name)
            rng = spawn_rng(seed, f"runtime-model/{workflow.name}/{type_name}")
            io_bw = np.maximum(
                np.asarray(itype.seq_io.sample(rng, (num_samples, n)), dtype=float),
                _MIN_BANDWIDTH,
            )
            net_bw = np.maximum(
                np.asarray(itype.network.sample(rng, (num_samples, n)), dtype=float),
                _MIN_BANDWIDTH,
            )
            cpu = np.empty(n)
            data = np.empty(n)
            for i, tid in enumerate(workflow.task_ids):
                comp = self.components(workflow.task(tid), type_name)
                cpu[i] = comp.cpu_seconds
                data[i] = comp.io_bytes  # == net_bytes under the staging model
            tensor[k] = cpu[None, :] + data[None, :] / io_bw + data[None, :] / net_bw
        return tensor

    def percentile(self, task: Task, type_name: str, q: float) -> float:
        """The q-th percentile of the task-time distribution (histogram)."""
        return self.cached_histogram(task, type_name).percentile(q)
