"""Structural workflow analysis.

Metrics the characterization literature (and our DESIGN notes) report
per workflow: level widths and parallelism, data footprint, critical
path composition, and the CPU/data balance that decides which of Deco's
optimization mechanisms bite (see EXPERIMENTS.md's Fig. 9/10 notes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance_types import Catalog
from repro.workflow.critical_path import critical_path, task_levels
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["WorkflowProfile", "profile_workflow"]


@dataclass(frozen=True)
class WorkflowProfile:
    """Structural and resource summary of one workflow."""

    name: str
    num_tasks: int
    num_edges: int
    num_levels: int
    max_width: int
    avg_width: float
    total_input_gb: float
    total_output_gb: float
    serial_seconds_ref: float
    critical_path_tasks: tuple[str, ...]
    critical_path_seconds: float
    parallelism: float            # serial time / critical-path time
    io_fraction_cheapest: float   # non-CPU share of mean task time

    @property
    def is_io_bound(self) -> bool:
        """Whether I/O + network dominate on the cheapest type (>50%)."""
        return self.io_fraction_cheapest > 0.5


def profile_workflow(
    workflow: Workflow,
    catalog: Catalog,
    runtime_model: RuntimeModel | None = None,
) -> WorkflowProfile:
    """Compute a :class:`WorkflowProfile` on the catalog's cheapest type."""
    model = runtime_model or RuntimeModel(catalog)
    cheapest = catalog.cheapest().name

    levels = task_levels(workflow)
    num_levels = (max(levels.values()) + 1) if levels else 0
    widths = [0] * num_levels
    for lv in levels.values():
        widths[lv] += 1

    times = {tid: model.mean(workflow.task(tid), cheapest) for tid in workflow.task_ids}
    cp, cp_seconds = critical_path(workflow, times)
    serial = sum(times.values())

    cpu_total, full_total = 0.0, 0.0
    for tid in workflow.task_ids:
        comp = model.components(workflow.task(tid), cheapest)
        cpu_total += comp.cpu_seconds
        full_total += times[tid]

    return WorkflowProfile(
        name=workflow.name,
        num_tasks=len(workflow),
        num_edges=workflow.num_edges(),
        num_levels=num_levels,
        max_width=max(widths, default=0),
        avg_width=(len(workflow) / num_levels) if num_levels else 0.0,
        total_input_gb=sum(t.input_bytes for t in workflow) / 1e9,
        total_output_gb=sum(t.output_bytes for t in workflow) / 1e9,
        serial_seconds_ref=serial,
        critical_path_tasks=cp,
        critical_path_seconds=cp_seconds,
        parallelism=(serial / cp_seconds) if cp_seconds > 0 else 1.0,
        io_fraction_cheapest=(1.0 - cpu_total / full_total) if full_total > 0 else 0.0,
    )
