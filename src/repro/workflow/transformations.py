"""The six workflow transformation operations (paper Section 5.3).

From the authors' transformation framework (cited as [46]), reused by
Deco as the state-transition system of its generic search:

* **Promote / Demote** -- move a task to a more / less powerful
  instance type (Fig. 5a-b);
* **Merge** -- put two same-type tasks on the *same instance*,
  serialized, to use up the instance's partial hour;
* **Co-scheduling** -- put multiple same-type tasks on the same
  instance (the parallel/packing variant of Merge);
* **Move** -- delay a task's start to a later time;
* **Split** -- suspend a running task and resume it later.

Operations act on a :class:`ScheduleDraft` -- an instance configuration
plus tentative start times per task.  The solver's search neighborhood
uses Promote/Demote/Merge (the configuration-changing ops); Move and
Split only reshape the timeline and are applied by the instance-packing
stage before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import ValidationError
from repro.cloud.instance_types import Catalog
from repro.workflow.dag import Workflow

__all__ = ["ScheduleDraft", "OPERATION_NAMES"]

OPERATION_NAMES = ("move", "merge", "promote", "demote", "split", "co_schedule")


@dataclass
class ScheduleDraft:
    """A mutable provisioning draft the transformation operations edit.

    Attributes
    ----------
    type_index:
        task id -> dense catalog type index (0 = cheapest).
    start:
        task id -> tentative start time (seconds); transformation ops
        keep these *consistent with precedence* on a best-effort basis,
        final times come from the simulator.
    group:
        task id -> co-scheduling group key; tasks sharing a key share an
        instance.  Singleton groups are implicit.
    splits:
        task id -> list of (pause, resume) pairs recorded by Split.
    dirty:
        task ids this draft has changed since it was created/copied.
        Every successful operation records exactly the tasks whose draft
        entry it actually rewrote (a Promote that returns False records
        nothing; a Merge records only the tasks whose group key changed).
        :meth:`copy` starts the child with an empty set, so a child's
        ``dirty`` is precisely its diff against the parent -- the
        solver's incremental evaluator re-propagates only those tasks'
        DAG levels (see :class:`~repro.solver.state.PlanState`).
    """

    workflow: Workflow
    catalog: Catalog
    type_index: dict[str, int]
    start: dict[str, float] = field(default_factory=dict)
    group: dict[str, object] = field(default_factory=dict)
    splits: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    dirty: set[str] = field(default_factory=set)

    @classmethod
    def initial(cls, workflow: Workflow, catalog: Catalog, type_index: int = 0) -> "ScheduleDraft":
        """The paper's initial state: every task on the cheapest type."""
        return cls(
            workflow=workflow,
            catalog=catalog,
            type_index={tid: type_index for tid in workflow.task_ids},
        )

    def _check_task(self, task_id: str) -> None:
        if task_id not in self.type_index:
            raise ValidationError(f"unknown task {task_id!r} in schedule draft")

    def copy(self) -> "ScheduleDraft":
        """An independent child draft; its ``dirty`` set starts empty."""
        return ScheduleDraft(
            workflow=self.workflow,
            catalog=self.catalog,
            type_index=dict(self.type_index),
            start=dict(self.start),
            group=dict(self.group),
            splits={k: list(v) for k, v in self.splits.items()},
        )

    # Configuration-changing operations -----------------------------------

    def promote(self, task_id: str) -> bool:
        """Move the task to the next more powerful (pricier) type.

        Returns False (and leaves the draft unchanged) when the task is
        already on the most powerful type.
        """
        self._check_task(task_id)
        idx = self.type_index[task_id]
        if idx + 1 >= len(self.catalog):
            return False
        self.type_index[task_id] = idx + 1
        self.dirty.add(task_id)
        return True

    def demote(self, task_id: str) -> bool:
        """Move the task to the next less powerful (cheaper) type."""
        self._check_task(task_id)
        idx = self.type_index[task_id]
        if idx == 0:
            return False
        self.type_index[task_id] = idx - 1
        self.dirty.add(task_id)
        return True

    def merge(self, first: str, second: str) -> bool:
        """Serialize two same-type tasks onto one instance.

        Only valid when the tasks share an instance type and are not
        ordered ancestor-inside-group in a way that would deadlock --
        here we require the second not to precede the first.
        """
        self._check_task(first)
        self._check_task(second)
        if first == second:
            return False
        if self.type_index[first] != self.type_index[second]:
            return False
        if self._precedes(second, first):
            return False
        key = self.group.get(first, ("merge", first))
        for tid in (first, second):
            if self.group.get(tid) != key:
                self.group[tid] = key
                self.dirty.add(tid)
        return True

    def co_schedule(self, task_ids: tuple[str, ...]) -> bool:
        """Pack several same-type tasks onto one instance."""
        if len(task_ids) < 2:
            return False
        for tid in task_ids:
            self._check_task(tid)
        types = {self.type_index[tid] for tid in task_ids}
        if len(types) != 1:
            return False
        key = ("cosched", task_ids[0])
        for tid in task_ids:
            if self.group.get(tid) != key:
                self.group[tid] = key
                self.dirty.add(tid)
        return True

    # Timeline operations ----------------------------------------------------

    def move(self, task_id: str, delay: float) -> bool:
        """Delay the task's tentative start by ``delay`` seconds."""
        self._check_task(task_id)
        if delay < 0:
            raise ValidationError(f"move delay must be >= 0, got {delay}")
        if delay == 0:
            return True  # no-op: the timeline (and the dirty set) is unchanged
        self.start[task_id] = self.start.get(task_id, 0.0) + delay
        self.dirty.add(task_id)
        return True

    def split(self, task_id: str, pause_at: float, resume_at: float) -> bool:
        """Suspend at ``pause_at`` and resume at ``resume_at``."""
        self._check_task(task_id)
        if resume_at <= pause_at:
            raise ValidationError(f"resume ({resume_at}) must be after pause ({pause_at})")
        self.splits.setdefault(task_id, []).append((pause_at, resume_at))
        self.dirty.add(task_id)
        return True

    # Helpers ------------------------------------------------------------------

    def _precedes(self, a: str, b: str) -> bool:
        """Whether ``a`` is an ancestor of ``b`` in the DAG."""
        frontier = list(self.workflow.children(a))
        seen = set(frontier)
        while frontier:
            cur = frontier.pop()
            if cur == b:
                return True
            for child in self.workflow.children(cur):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return False

    def assignment(self) -> dict[str, str]:
        """task id -> instance type *name* (for the simulator)."""
        names = self.catalog.type_names
        return {tid: names[idx] for tid, idx in self.type_index.items()}

    def groups(self) -> dict[str, object] | None:
        """Co-scheduling groups, or None if every task is alone."""
        return dict(self.group) if self.group else None

    def dirty_indices(self) -> tuple[int, ...]:
        """The dirty set as sorted dense task indices.

        This is the shape the solver's incremental evaluator consumes
        (:class:`~repro.solver.state.PlanState` lineage): each index
        names a task whose draft entry changed since :meth:`copy`, so a
        delta propagation needs to revisit only those tasks' levels.
        """
        return tuple(sorted(self.workflow.index_of(tid) for tid in self.dirty))

    def children_by_promote(self) -> Iterator["ScheduleDraft"]:
        """All child drafts reachable by one Promote (paper Fig. 5b).

        Each child's ``dirty`` set holds exactly the promoted task.
        """
        for tid in self.workflow.task_ids:
            child = self.copy()
            if child.promote(tid):
                yield child
