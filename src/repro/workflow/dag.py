"""The task/DAG workflow model.

A :class:`Workflow` is an immutable-after-build directed acyclic graph of
:class:`Task` objects.  Tasks carry the three resource components the
paper's runtime model needs (CPU reference seconds, input bytes, output
bytes) plus the file-level metadata required to round-trip Pegasus DAX
XML (see :mod:`repro.workflow.dax`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.common.errors import ValidationError

__all__ = ["FileSpec", "Task", "Workflow"]


@dataclass(frozen=True)
class FileSpec:
    """A logical file consumed or produced by a task.

    ``size_bytes`` drives I/O and network transfer times; the paper's
    workflows move files of kilobytes (metadata) to gigabytes (images).
    """

    name: str
    size_bytes: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValidationError("file name must be non-empty")
        if self.size_bytes < 0:
            raise ValidationError(f"file {self.name!r} has negative size")


@dataclass(frozen=True)
class Task:
    """One task (the paper's minimum execution unit).

    Attributes
    ----------
    task_id:
        Unique within its workflow (DAX ``job id``, e.g. ``"ID01"``).
    executable:
        The transformation/program name (DAX ``name``, e.g. ``"mProject"``).
    runtime_ref:
        Reference CPU seconds on a 1.0-speed instance.  The runtime model
        divides this by the instance's CPU speed factor (the paper's
        "scaling factor to scale the CPU time").
    inputs / outputs:
        File metadata; total sizes feed the I/O + network time components.
    """

    task_id: str
    executable: str = "task"
    runtime_ref: float = 1.0
    inputs: tuple[FileSpec, ...] = ()
    outputs: tuple[FileSpec, ...] = ()

    def __post_init__(self):
        if not self.task_id:
            raise ValidationError("task_id must be non-empty")
        if self.runtime_ref < 0:
            raise ValidationError(f"task {self.task_id!r} has negative runtime_ref")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        # Byte totals are read on every runtime-model estimate (hot in
        # warm starts and baselines); precompute once at construction.
        object.__setattr__(self, "_input_bytes", sum(f.size_bytes for f in self.inputs))
        object.__setattr__(self, "_output_bytes", sum(f.size_bytes for f in self.outputs))

    @property
    def input_bytes(self) -> int:
        """Total bytes read by this task."""
        return self._input_bytes

    @property
    def output_bytes(self) -> int:
        """Total bytes written by this task."""
        return self._output_bytes


class Workflow:
    """A DAG of tasks.

    Construction validates uniqueness of task ids, referential integrity
    of edges, and acyclicity; afterwards the object is treated as
    immutable (the solver copies *plans*, never workflows).

    Parameters
    ----------
    name:
        Workflow name (DAX ``name`` attribute), e.g. ``"montage-8"``.
    tasks:
        The task set.
    edges:
        ``(parent_id, child_id)`` pairs; the child consumes (at least
        part of) the parent's output.
    """

    def __init__(
        self,
        name: str,
        tasks: Iterable[Task],
        edges: Iterable[tuple[str, str]] = (),
    ):
        self.name = name
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            if task.task_id in self._tasks:
                raise ValidationError(f"duplicate task id {task.task_id!r}")
            self._tasks[task.task_id] = task

        self._children: dict[str, list[str]] = {tid: [] for tid in self._tasks}
        self._parents: dict[str, list[str]] = {tid: [] for tid in self._tasks}
        seen: set[tuple[str, str]] = set()
        for parent, child in edges:
            if parent not in self._tasks:
                raise ValidationError(f"edge references unknown parent {parent!r}")
            if child not in self._tasks:
                raise ValidationError(f"edge references unknown child {child!r}")
            if parent == child:
                raise ValidationError(f"self-loop on task {parent!r}")
            if (parent, child) in seen:
                continue
            seen.add((parent, child))
            self._children[parent].append(child)
            self._parents[child].append(parent)

        self._topo_order = self._toposort()  # raises on cycles
        self._index = {tid: i for i, tid in enumerate(self._topo_order)}

    # Construction helpers ----------------------------------------------

    def _toposort(self) -> tuple[str, ...]:
        """Kahn's algorithm; deterministic (insertion-ordered) output."""
        indegree = {tid: len(ps) for tid, ps in self._parents.items()}
        frontier = [tid for tid in self._tasks if indegree[tid] == 0]
        order: list[str] = []
        while frontier:
            tid = frontier.pop(0)
            order.append(tid)
            for child in self._children[tid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if len(order) != len(self._tasks):
            cyclic = sorted(tid for tid, d in indegree.items() if d > 0)
            raise ValidationError(f"workflow {self.name!r} has a cycle involving {cyclic[:5]}")
        return tuple(order)

    # Read API -----------------------------------------------------------

    @property
    def tasks(self) -> Mapping[str, Task]:
        """Task id -> :class:`Task`."""
        return self._tasks

    @property
    def task_ids(self) -> tuple[str, ...]:
        """All task ids in topological order."""
        return self._topo_order

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __iter__(self) -> Iterator[Task]:
        """Iterate tasks in topological order."""
        return (self._tasks[tid] for tid in self._topo_order)

    def task(self, task_id: str) -> Task:
        """Look up a task; raises :class:`ValidationError` if unknown."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise ValidationError(f"unknown task {task_id!r} in workflow {self.name!r}") from None

    def children(self, task_id: str) -> tuple[str, ...]:
        """Direct successors of ``task_id``."""
        return tuple(self._children[self.task(task_id).task_id])

    def parents(self, task_id: str) -> tuple[str, ...]:
        """Direct predecessors of ``task_id``."""
        return tuple(self._parents[self.task(task_id).task_id])

    def edges(self) -> Iterator[tuple[str, str]]:
        """All ``(parent, child)`` edges, parents in topological order."""
        for tid in self._topo_order:
            for child in self._children[tid]:
                yield (tid, child)

    def num_edges(self) -> int:
        return sum(len(cs) for cs in self._children.values())

    def roots(self) -> tuple[str, ...]:
        """Entry tasks (no parents), topological order."""
        return tuple(tid for tid in self._topo_order if not self._parents[tid])

    def leaves(self) -> tuple[str, ...]:
        """Exit tasks (no children), topological order."""
        return tuple(tid for tid in self._topo_order if not self._children[tid])

    def index_of(self, task_id: str) -> int:
        """Dense topological index of a task (used by array-based solvers)."""
        return self._index[task_id]

    def transfer_bytes(self, parent_id: str, child_id: str) -> int:
        """Bytes moved along the edge ``parent -> child``.

        Computed as the total size of parent outputs that appear among the
        child's inputs (matched by file name); falls back to the parent's
        full output size when no file metadata links the two (synthetic
        workflows without per-file detail).
        """
        parent = self.task(parent_id)
        child = self.task(child_id)
        if child_id not in self._children[parent_id]:
            raise ValidationError(f"no edge {parent_id!r} -> {child_id!r}")
        child_inputs = {f.name: f.size_bytes for f in child.inputs}
        shared = [f.size_bytes for f in parent.outputs if f.name in child_inputs]
        if shared:
            return sum(shared)
        return parent.output_bytes

    def total_runtime_ref(self) -> float:
        """Sum of reference CPU seconds over all tasks."""
        return sum(t.runtime_ref for t in self._tasks.values())

    # Derivation ----------------------------------------------------------

    def relabeled(self, name: str) -> "Workflow":
        """A copy of this workflow under a different name."""
        return Workflow(name, self._tasks.values(), self.edges())

    def scaled(self, factor: float, name: str | None = None) -> "Workflow":
        """A copy with every task's ``runtime_ref`` multiplied by ``factor``.

        Used by the ensemble generator to vary workflow "sizes" while
        keeping the structure (the paper varies input-data scale).
        """
        if factor <= 0:
            raise ValidationError(f"scale factor must be > 0, got {factor}")
        tasks = [
            Task(
                task_id=t.task_id,
                executable=t.executable,
                runtime_ref=t.runtime_ref * factor,
                inputs=t.inputs,
                outputs=t.outputs,
            )
            for t in self._tasks.values()
        ]
        return Workflow(name or self.name, tasks, self.edges())

    def map_tasks(self, fn: Callable[[Task], Task], name: str | None = None) -> "Workflow":
        """A copy with ``fn`` applied to every task (ids must be preserved)."""
        tasks = []
        for t in self._tasks.values():
            new = fn(t)
            if new.task_id != t.task_id:
                raise ValidationError("map_tasks must preserve task ids")
            tasks.append(new)
        return Workflow(name or self.name, tasks, self.edges())

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` for external analysis.

        Nodes carry the task attributes (``executable``, ``runtime_ref``,
        ``input_bytes``, ``output_bytes``); edges carry ``transfer_bytes``.
        """
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for task in self:
            g.add_node(
                task.task_id,
                executable=task.executable,
                runtime_ref=task.runtime_ref,
                input_bytes=task.input_bytes,
                output_bytes=task.output_bytes,
            )
        for parent, child in self.edges():
            g.add_edge(parent, child, transfer_bytes=self.transfer_bytes(parent, child))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Workflow({self.name!r}, tasks={len(self)}, edges={self.num_edges()})"
