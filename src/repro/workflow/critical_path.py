"""Makespan computation: critical paths and vectorized sample propagation.

Two makespan notions coexist in the paper:

* **Static critical path** (Eq. 3): the path maximizing the sum of
  (mean) task times; the makespan is that sum.  Used by the WLog
  reference programs (rules r1-r3 of Example 1).
* **Per-sample makespan**: with dynamic task times, each Monte Carlo
  realization can have a *different* critical path; the correct
  distributional makespan is the per-sample DAG longest path.  The
  vectorized evaluator ("GPU" backend) uses :func:`makespan_samples`,
  which propagates an ``(S, N)`` sample matrix through the DAG in
  topological order -- N small column operations instead of S×N Python
  steps, exactly the arithmetic a CUDA kernel would do per thread.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.workflow.dag import Workflow

__all__ = ["critical_path", "static_makespan", "makespan_samples", "task_levels"]


def critical_path(
    workflow: Workflow,
    task_time: Mapping[str, float] | Callable[[str], float],
) -> tuple[tuple[str, ...], float]:
    """The longest path through ``workflow`` under the given task times.

    Returns ``(path, length)`` where ``path`` is the task-id sequence
    from an entry task to an exit task.  Ties break deterministically
    (topological order).
    """
    get = task_time.__getitem__ if isinstance(task_time, Mapping) else task_time
    finish: dict[str, float] = {}
    best_parent: dict[str, str | None] = {}
    for tid in workflow.task_ids:
        t = float(get(tid))
        if t < 0:
            raise ValidationError(f"negative task time for {tid!r}: {t}")
        parents = workflow.parents(tid)
        if parents:
            pbest = max(parents, key=lambda p: finish[p])
            finish[tid] = finish[pbest] + t
            best_parent[tid] = pbest
        else:
            finish[tid] = t
            best_parent[tid] = None
    if not finish:
        return ((), 0.0)
    end = max(finish, key=finish.__getitem__)
    path: list[str] = []
    cur: str | None = end
    while cur is not None:
        path.append(cur)
        cur = best_parent[cur]
    path.reverse()
    return (tuple(path), finish[end])


def static_makespan(
    workflow: Workflow,
    task_time: Mapping[str, float] | Callable[[str], float],
) -> float:
    """Length of the critical path (paper Eq. 3 with fixed times)."""
    return critical_path(workflow, task_time)[1]


def makespan_samples(workflow: Workflow, times: np.ndarray) -> np.ndarray:
    """Per-sample DAG longest path for an ``(S, N)`` time matrix.

    ``times[s, i]`` is the sampled execution time of the task with
    topological index ``i`` (see :meth:`Workflow.index_of`) in Monte
    Carlo realization ``s``.  Returns an ``(S,)`` vector of makespans.

    This is the vectorized core of the probabilistic constraint check
    ``P(t_w <= D) >= p``.
    """
    times = np.asarray(times, dtype=float)
    if times.ndim == 1:
        times = times[None, :]
    n = len(workflow)
    if times.shape[1] != n:
        raise ValidationError(f"times has {times.shape[1]} columns, workflow has {n} tasks")
    if n == 0:
        return np.zeros(times.shape[0])
    if np.any(times < 0):
        raise ValidationError("negative task times")
    finish = np.empty_like(times)
    parent_idx: list[list[int]] = []
    for tid in workflow.task_ids:
        parent_idx.append([workflow.index_of(p) for p in workflow.parents(tid)])
    for i, parents in enumerate(parent_idx):
        if parents:
            ready = finish[:, parents[0]]
            for p in parents[1:]:
                ready = np.maximum(ready, finish[:, p])
            finish[:, i] = ready + times[:, i]
        else:
            finish[:, i] = times[:, i]
    return finish.max(axis=1)


def task_levels(workflow: Workflow) -> dict[str, int]:
    """Depth of each task: 0 for entry tasks, 1 + max(parent levels) else.

    The Autoscaling baseline's deadline-assignment heuristic partitions a
    workflow into levels and distributes the deadline across them.
    """
    levels: dict[str, int] = {}
    for tid in workflow.task_ids:
        parents = workflow.parents(tid)
        levels[tid] = 1 + max((levels[p] for p in parents), default=-1)
    return levels


def path_time(workflow: Workflow, path: Sequence[str], task_time: Mapping[str, float]) -> float:
    """Sum of task times along an explicit path (validates adjacency)."""
    total = 0.0
    for i, tid in enumerate(path):
        total += float(task_time[tid])
        if i + 1 < len(path) and path[i + 1] not in workflow.children(tid):
            raise ValidationError(f"{path[i + 1]!r} is not a child of {tid!r}")
    return total
