"""Pegasus DAX XML reader/writer.

Implements the subset of the DAX 3.x schema that the paper's Fig. 4
exercises: ``<job>`` elements with ``<uses>`` file references (``link``
= ``input``/``output``) and ``<child>``/``<parent>`` dependency
elements.  Round-tripping a :class:`~repro.workflow.dag.Workflow`
through this module is lossless for the fields the engine consumes.

Two non-standard (namespaced-out) attributes carry the runtime model's
inputs: ``runtime`` on ``<job>`` (reference CPU seconds, also emitted by
the Pegasus workflow generator) and ``size`` on ``<uses>`` (bytes).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.common.errors import ValidationError
from repro.workflow.dag import FileSpec, Task, Workflow

__all__ = ["parse_dax", "parse_dax_string", "write_dax", "to_dax_string"]

_DAX_NS = "http://pegasus.isi.edu/schema/DAX"


def _strip_ns(tag: str) -> str:
    """Drop an XML namespace prefix: '{uri}job' -> 'job'."""
    return tag.rsplit("}", 1)[-1]


def parse_dax_string(text: str, name: str | None = None) -> Workflow:
    """Parse DAX XML text into a :class:`Workflow`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ValidationError(f"malformed DAX XML: {exc}") from exc
    if _strip_ns(root.tag) != "adag":
        raise ValidationError(f"expected <adag> root element, got <{_strip_ns(root.tag)}>")

    wf_name = name or root.get("name") or "workflow"
    tasks: list[Task] = []
    edges: list[tuple[str, str]] = []

    for elem in root:
        tag = _strip_ns(elem.tag)
        if tag == "job":
            tasks.append(_parse_job(elem))
        elif tag == "child":
            child_id = elem.get("ref")
            if not child_id:
                raise ValidationError("<child> element missing 'ref' attribute")
            for sub in elem:
                if _strip_ns(sub.tag) != "parent":
                    continue
                parent_id = sub.get("ref")
                if not parent_id:
                    raise ValidationError("<parent> element missing 'ref' attribute")
                edges.append((parent_id, child_id))

    return Workflow(wf_name, tasks, edges)


def _parse_job(elem: ET.Element) -> Task:
    job_id = elem.get("id")
    if not job_id:
        raise ValidationError("<job> element missing 'id' attribute")
    executable = elem.get("name") or "task"
    runtime = float(elem.get("runtime", "1.0"))
    inputs: list[FileSpec] = []
    outputs: list[FileSpec] = []
    for sub in elem:
        if _strip_ns(sub.tag) != "uses":
            continue
        fname = sub.get("file") or sub.get("name")
        if not fname:
            raise ValidationError(f"<uses> under job {job_id!r} missing 'file' attribute")
        size = int(float(sub.get("size", "0")))
        link = (sub.get("link") or "input").lower()
        spec = FileSpec(fname, size)
        if link == "output":
            outputs.append(spec)
        else:
            inputs.append(spec)
    return Task(
        task_id=job_id,
        executable=executable,
        runtime_ref=runtime,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
    )


def parse_dax(path: str | Path, name: str | None = None) -> Workflow:
    """Parse a DAX file from disk."""
    text = Path(path).read_text(encoding="utf-8")
    return parse_dax_string(text, name=name)


def to_dax_string(workflow: Workflow) -> str:
    """Serialize a workflow to DAX XML text."""
    root = ET.Element(
        "adag",
        {
            "xmlns": _DAX_NS,
            "version": "3.4",
            "name": workflow.name,
            "jobCount": str(len(workflow)),
            "childCount": str(workflow.num_edges()),
        },
    )
    for task in workflow:
        job = ET.SubElement(
            root,
            "job",
            {"id": task.task_id, "name": task.executable, "runtime": repr(task.runtime_ref)},
        )
        for spec in task.inputs:
            ET.SubElement(
                job, "uses", {"file": spec.name, "link": "input", "size": str(spec.size_bytes)}
            )
        for spec in task.outputs:
            ET.SubElement(
                job, "uses", {"file": spec.name, "link": "output", "size": str(spec.size_bytes)}
            )
    # Pegasus groups all parents of one child under a single <child>.
    for tid in workflow.task_ids:
        parents = workflow.parents(tid)
        if not parents:
            continue
        child = ET.SubElement(root, "child", {"ref": tid})
        for pid in parents:
            ET.SubElement(child, "parent", {"ref": pid})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_dax(workflow: Workflow, path: str | Path) -> None:
    """Serialize a workflow to a DAX file on disk."""
    Path(path).write_text(to_dax_string(workflow), encoding="utf-8")
