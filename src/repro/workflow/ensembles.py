"""Workflow ensembles (paper Section 3.2 / Malawski et al. SC'12).

An ensemble is a group of structurally similar workflows with different
sizes, each carrying a priority; completing the workflow with priority
``P`` contributes ``2**-P`` to the ensemble score (paper Eq. 4).

The five ensemble types of the paper's evaluation control how member
*sizes* are drawn and how priorities relate to size:

* ``constant`` -- every member has the same size;
* ``uniform_sorted`` / ``uniform_unsorted`` -- sizes uniform over the
  size set; *sorted* assigns the highest priority to the largest
  workflow, *unsorted* assigns priorities randomly;
* ``pareto_sorted`` / ``pareto_unsorted`` -- sizes Pareto-distributed
  (a few large members, many small ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import spawn_rng
from repro.workflow.dag import Workflow

__all__ = ["EnsembleMember", "Ensemble", "make_ensemble", "ENSEMBLE_TYPES"]

ENSEMBLE_TYPES = (
    "constant",
    "uniform_sorted",
    "uniform_unsorted",
    "pareto_sorted",
    "pareto_unsorted",
)


@dataclass(frozen=True)
class EnsembleMember:
    """One workflow in an ensemble.

    ``priority`` 0 is the most important member; the member's score is
    ``2**-priority``.  ``deadline`` (seconds) and ``deadline_percentile``
    express the member's probabilistic deadline constraint
    ``P(t_w <= deadline) >= deadline_percentile/100``.
    """

    workflow: Workflow
    priority: int
    deadline: float = float("inf")
    deadline_percentile: float = 96.0

    def __post_init__(self):
        if self.priority < 0:
            raise ValidationError(f"priority must be >= 0, got {self.priority}")
        if self.deadline <= 0:
            raise ValidationError(f"deadline must be > 0, got {self.deadline}")
        if not 0 < self.deadline_percentile <= 100:
            raise ValidationError(
                f"deadline_percentile must be in (0, 100], got {self.deadline_percentile}"
            )

    @property
    def score(self) -> float:
        """This member's contribution to the ensemble score if completed."""
        return 2.0 ** (-self.priority)


@dataclass(frozen=True)
class Ensemble:
    """A prioritized group of workflows under one budget (paper Eq. 4-6)."""

    name: str
    members: tuple[EnsembleMember, ...]
    budget: float = float("inf")

    def __post_init__(self):
        if not self.members:
            raise ValidationError("ensemble must have at least one member")
        if self.budget <= 0:
            raise ValidationError(f"budget must be > 0, got {self.budget}")
        prios = sorted(m.priority for m in self.members)
        if prios != list(range(len(self.members))):
            raise ValidationError("member priorities must be a permutation of 0..n-1")
        object.__setattr__(self, "members", tuple(self.members))

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def by_priority(self) -> tuple[EnsembleMember, ...]:
        """Members ordered from most to least important."""
        return tuple(sorted(self.members, key=lambda m: m.priority))

    def score(self, completed: Iterable[int]) -> float:
        """Ensemble score for a set of completed member *priorities*.

        ``completed`` holds priorities (unique per member by
        construction), so the score is sum of ``2**-p`` (paper Eq. 4).
        """
        done = set(completed)
        unknown = done - {m.priority for m in self.members}
        if unknown:
            raise ValidationError(f"unknown member priorities: {sorted(unknown)}")
        return float(sum(2.0 ** (-p) for p in done))

    def max_score(self) -> float:
        """The score if every member completes."""
        return self.score(m.priority for m in self.members)

    def with_constraints(
        self,
        budget: float,
        deadline_for: Callable[[EnsembleMember], float],
        deadline_percentile: float = 96.0,
    ) -> "Ensemble":
        """A copy with a budget and per-member deadlines filled in."""
        members = tuple(
            EnsembleMember(
                workflow=m.workflow,
                priority=m.priority,
                deadline=deadline_for(m),
                deadline_percentile=deadline_percentile,
            )
            for m in self.members
        )
        return Ensemble(self.name, members, budget)


def make_ensemble(
    kind: str,
    generator: Callable[..., Workflow],
    num_workflows: int,
    sizes: Sequence[int] = (20, 100, 1000),
    seed: int = 0,
    name: str | None = None,
) -> Ensemble:
    """Build an ensemble of ``num_workflows`` members of type ``kind``.

    ``generator`` is one of the :mod:`repro.workflow.generators`
    callables accepting ``(num_tasks=..., seed=..., name=...)``;
    ``sizes`` is the size set the paper uses (20, 100, 1000 tasks).
    """
    if kind not in ENSEMBLE_TYPES:
        raise ValidationError(f"unknown ensemble type {kind!r}; choose from {ENSEMBLE_TYPES}")
    if num_workflows < 1:
        raise ValidationError(f"num_workflows must be >= 1, got {num_workflows}")
    if not sizes:
        raise ValidationError("sizes must be non-empty")
    rng = spawn_rng(seed, f"ensemble/{kind}/{num_workflows}")
    sizes = sorted(int(s) for s in sizes)

    if kind == "constant":
        chosen = [sizes[len(sizes) // 2]] * num_workflows
    elif kind.startswith("uniform"):
        chosen = [int(rng.choice(sizes)) for _ in range(num_workflows)]
    else:  # pareto: few large, many small -- map Pareto quantiles onto the size set
        draws = rng.pareto(1.16, size=num_workflows)  # 80/20-style shape
        hi = np.percentile(draws, 90) or 1.0
        idx = np.minimum((draws / hi * len(sizes)).astype(int), len(sizes) - 1)
        chosen = [sizes[i] for i in idx]

    workflows = [
        generator(num_tasks=size, seed=int(rng.integers(0, 2**31 - 1)), name=f"{kind}-w{i}")
        for i, size in enumerate(chosen)
    ]

    order = list(range(num_workflows))
    if kind.endswith("_sorted"):
        # Highest priority (0) to the largest workflow.
        order.sort(key=lambda i: -len(workflows[i]))
    else:
        rng.shuffle(order)
    priority_of = {wf_idx: prio for prio, wf_idx in enumerate(order)}

    members = tuple(
        EnsembleMember(workflow=workflows[i], priority=priority_of[i])
        for i in range(num_workflows)
    )
    return Ensemble(name or f"{kind}-ensemble", members)
