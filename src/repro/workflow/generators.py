"""Structure-accurate synthetic workflow generators.

The paper evaluates on three applications -- Montage (astronomy,
I/O-intensive), Ligo Inspiral (gravitational-wave physics,
CPU-intensive) and Epigenomics (bioinformatics, CPU-intensive with
large inputs) -- generated with the Pegasus workflow generator, which
follows the Bharathi/Juve characterization.  Ligo and Epigenomics are
not open-sourced, so the paper itself uses synthetic instances; we do
the same for all three (plus CyberShake and a Fig.-4-style pipeline).

Structural fidelity: level structure, fan-in/fan-out patterns, and the
CPU/IO balance per task type follow the characterization paper.  Task
runtimes get a small lognormal jitter around type means (real profiles
are heavy-tailed), drawn from a named RNG stream so generation is
reproducible.

Montage sizing: the paper's Montage-1/-4/-8 process 1/4/8-degree 2MASS
mosaics.  We size the projection level as ``round(6 * degrees**1.5)``
images, which lands Montage-1/4/8 at roughly 40/230/640 tasks -- inside
the paper's 20-1000-task experimental range.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import spawn_rng
from repro.workflow.dag import FileSpec, Task, Workflow

__all__ = ["montage", "ligo", "epigenomics", "cybershake", "pipeline", "random_dag"]

MB = 1_000_000
GB = 1_000_000_000


def _jitter(rng: np.random.Generator, mean: float, cv: float = 0.15) -> float:
    """Lognormal jitter with the given coefficient of variation."""
    if mean <= 0:
        return 0.0
    sigma = math.sqrt(math.log(1.0 + cv * cv))
    mu = math.log(mean) - sigma * sigma / 2.0
    return float(rng.lognormal(mu, sigma))


class _Builder:
    """Incremental DAG builder shared by all generators."""

    def __init__(self, name: str, seed: int):
        self.name = name
        self.rng = spawn_rng(seed, f"workflow-gen/{name}")
        self.tasks: list[Task] = []
        self.edges: list[tuple[str, str]] = []
        self._counter = 0

    def add(
        self,
        executable: str,
        runtime: float,
        inputs: tuple[FileSpec, ...] = (),
        outputs: tuple[FileSpec, ...] = (),
        parents: tuple[str, ...] = (),
        cv: float = 0.15,
    ) -> str:
        tid = f"ID{self._counter:05d}"
        self._counter += 1
        self.tasks.append(
            Task(
                task_id=tid,
                executable=executable,
                runtime_ref=_jitter(self.rng, runtime, cv),
                inputs=inputs,
                outputs=outputs,
            )
        )
        for p in parents:
            self.edges.append((p, tid))
        return tid

    def build(self) -> Workflow:
        return Workflow(self.name, self.tasks, self.edges)


def _files(prefix: str, tid_hint: int, sizes: list[int]) -> tuple[FileSpec, ...]:
    return tuple(FileSpec(f"{prefix}.{tid_hint}.{i}", s) for i, s in enumerate(sizes))


# ---------------------------------------------------------------------------
# Montage
# ---------------------------------------------------------------------------

def montage(
    degrees: float | None = None,
    num_tasks: int | None = None,
    seed: int = 0,
    name: str | None = None,
) -> Workflow:
    """Synthetic Montage mosaic workflow.

    Levels (Bharathi characterization)::

        mProjectPP (xN) -> mDiffFit (x~2.5N) -> mConcatFit -> mBgModel
        -> mBackground (xN) -> mImgtbl -> mAdd -> mShrink -> mJPEG

    ``degrees`` sets the mosaic size (the paper's Montage-1/4/8);
    alternatively ``num_tasks`` requests an approximate total task count
    (used by the ensemble experiments).
    """
    if degrees is None and num_tasks is None:
        degrees = 1.0
    if degrees is not None and degrees <= 0:
        raise ValidationError(f"degrees must be > 0, got {degrees}")
    if num_tasks is not None:
        if num_tasks < 10:
            raise ValidationError(f"montage needs >= 10 tasks, got {num_tasks}")
        # total ~= n + 2.5n + n + 6  =>  n ~= (total - 6) / 4.5
        n_images = max(2, round((num_tasks - 6) / 4.5))
        label = name or f"montage-n{num_tasks}"
    else:
        n_images = max(2, round(6.0 * float(degrees) ** 1.5))
        label = name or f"montage-{degrees:g}"
    b = _Builder(label, seed)

    # Montage is the paper's I/O-intensive application: per-image data
    # volume (2MASS tiles plus reprojections) dominates most task times,
    # and Montage-8's aggregate input lands in the "hundreds of GB"
    # regime the paper quotes.
    img_mb = 2000.0

    projections = []
    for i in range(n_images):
        tid = b.add(
            "mProjectPP",
            runtime=300.0,
            inputs=_files("2mass", i, [int(img_mb * MB)]),
            outputs=_files("proj", i, [int(2 * img_mb * MB)]),
        )
        projections.append(tid)

    # mDiffFit on overlapping projection pairs: a ring + skip pattern
    # yielding ~2.5N diffs like real tessellations do.
    diffs = []
    n = len(projections)
    pairs: set[tuple[int, int]] = set()
    for i in range(n):
        for step in (1, 2, 3):
            j = i + step
            if j < n:
                pairs.add((i, j))
    for k, (i, j) in enumerate(sorted(pairs)):
        tid = b.add(
            "mDiffFit",
            runtime=75.0,
            inputs=_files("proj", i, [int(2 * img_mb * MB)])
            + _files("proj", j, [int(2 * img_mb * MB)]),
            outputs=_files("diff", k, [4 * MB]),
            parents=(projections[i], projections[j]),
        )
        diffs.append(tid)

    concat = b.add(
        "mConcatFit",
        runtime=150.0 + 1.0 * len(diffs),
        inputs=tuple(FileSpec(f"diff.{k}.0", 4 * MB) for k in range(len(diffs))),
        outputs=_files("fits", 0, [1 * MB]),
        parents=tuple(diffs),
    )
    bgmodel = b.add(
        "mBgModel",
        runtime=600.0 + 10.0 * n,
        inputs=_files("fits", 0, [1 * MB]),
        outputs=_files("corr", 0, [1 * MB]),
        parents=(concat,),
    )
    backgrounds = []
    for i in range(n_images):
        tid = b.add(
            "mBackground",
            runtime=100.0,
            inputs=_files("proj", i, [int(2 * img_mb * MB)]) + _files("corr", 0, [1 * MB]),
            outputs=_files("bgfree", i, [int(2 * img_mb * MB)]),
            parents=(projections[i], bgmodel),
        )
        backgrounds.append(tid)
    imgtbl = b.add(
        "mImgtbl",
        runtime=50.0 + 1.0 * n,
        inputs=tuple(FileSpec(f"bgfree.{i}.hdr", 1 * MB) for i in range(n_images)),
        outputs=_files("tbl", 0, [1 * MB]),
        parents=tuple(backgrounds),
    )
    madd = b.add(
        "mAdd",
        runtime=300.0 + 10.0 * n,
        inputs=tuple(FileSpec(f"bgfree.{i}.0", int(2 * img_mb * MB)) for i in range(n_images))
        + _files("tbl", 0, [1 * MB]),
        outputs=_files("mosaic", 0, [int(0.25 * img_mb * n * MB)]),
        parents=(imgtbl,) + tuple(backgrounds),
    )
    shrink = b.add(
        "mShrink",
        runtime=150.0 + 2.5 * n,
        inputs=_files("mosaic", 0, [int(0.25 * img_mb * n * MB)]),
        outputs=_files("shrunk", 0, [int(0.25 * img_mb * n * MB / 16)]),
        parents=(madd,),
    )
    b.add(
        "mJPEG",
        runtime=50.0 + 1.0 * n,
        inputs=_files("shrunk", 0, [int(0.25 * img_mb * n * MB / 16)]),
        outputs=_files("jpg", 0, [2 * MB]),
        parents=(shrink,),
    )
    return b.build()


# ---------------------------------------------------------------------------
# Ligo Inspiral
# ---------------------------------------------------------------------------

def ligo(num_tasks: int = 100, seed: int = 0, name: str | None = None) -> Workflow:
    """Synthetic Ligo Inspiral analysis workflow (CPU-intensive).

    Structure per group of ``g`` channels::

        TmpltBank (xg) -> Inspiral (xg) -> Thinca (x1)
        -> TrigBank (xg) -> Inspiral2 (xg) -> Thinca2 (x1)

    i.e. 4g + 2 tasks per group; groups are stacked side by side until
    ``num_tasks`` is (approximately) reached.
    """
    if num_tasks < 6:
        raise ValidationError(f"ligo needs >= 6 tasks, got {num_tasks}")
    b = _Builder(name or f"ligo-n{num_tasks}", seed)
    g = 5  # channels per group, per the characterization
    per_group = 4 * g + 2
    n_groups = max(1, round(num_tasks / per_group))
    for grp in range(n_groups):
        banks = [
            b.add(
                "TmpltBank",
                runtime=18.0,
                inputs=_files("gwf", grp * g + i, [220 * MB]),
                outputs=_files("bank", grp * g + i, [1 * MB]),
            )
            for i in range(g)
        ]
        inspirals = [
            b.add(
                "Inspiral",
                runtime=460.0,
                cv=0.25,
                # Inspiral matched-filters the detector frame data against
                # the template bank, so it re-reads the (large) GWF input.
                inputs=_files("bank", grp * g + i, [1 * MB])
                + _files("gwf", grp * g + i, [220 * MB]),
                outputs=_files("insp", grp * g + i, [2 * MB]),
                parents=(banks[i],),
            )
            for i in range(g)
        ]
        thinca = b.add(
            "Thinca",
            runtime=5.0,
            inputs=tuple(FileSpec(f"insp.{grp * g + i}.0", 2 * MB) for i in range(g)),
            outputs=_files("coinc", grp, [1 * MB]),
            parents=tuple(inspirals),
        )
        trigbanks = [
            b.add(
                "TrigBank",
                runtime=5.0,
                inputs=_files("coinc", grp, [1 * MB]),
                outputs=_files("trig", grp * g + i, [1 * MB]),
                parents=(thinca,),
            )
            for i in range(g)
        ]
        inspirals2 = [
            b.add(
                "Inspiral2",
                runtime=450.0,
                cv=0.25,
                inputs=_files("trig", grp * g + i, [1 * MB]),
                outputs=_files("insp2", grp * g + i, [2 * MB]),
                parents=(trigbanks[i],),
            )
            for i in range(g)
        ]
        b.add(
            "Thinca2",
            runtime=5.0,
            inputs=tuple(FileSpec(f"insp2.{grp * g + i}.0", 2 * MB) for i in range(g)),
            outputs=_files("result", grp, [1 * MB]),
            parents=tuple(inspirals2),
        )
    return b.build()


# ---------------------------------------------------------------------------
# Epigenomics
# ---------------------------------------------------------------------------

def epigenomics(num_tasks: int = 100, seed: int = 0, name: str | None = None) -> Workflow:
    """Synthetic Epigenomics (genome-mapping) workflow.

    Per lane: ``fastQSplit -> (filterContams -> sol2sanger -> fastq2bfq
    -> map) x k -> mapMerge``; lanes join into ``maqIndex -> pileup``.
    The paper notes Epigenomics inputs run to dozens of GB; lane split
    files are sized accordingly.
    """
    if num_tasks < 8:
        raise ValidationError(f"epigenomics needs >= 8 tasks, got {num_tasks}")
    b = _Builder(name or f"epigenomics-n{num_tasks}", seed)
    # Per lane with k splits: 1 + 4k + 1 tasks; plus 2 global tasks.
    lanes = 2 if num_tasks >= 60 else 1
    k = max(1, round((num_tasks - 2 - 2 * lanes) / (4 * lanes)))
    merges = []
    for lane in range(lanes):
        split = b.add(
            "fastQSplit",
            runtime=35.0,
            inputs=_files("fastq", lane, [6 * GB]),
            outputs=tuple(FileSpec(f"chunk.{lane}.{i}", 6 * GB // k) for i in range(k)),
        )
        maps = []
        for i in range(k):
            f = b.add(
                "filterContams",
                runtime=2.5,
                inputs=(FileSpec(f"chunk.{lane}.{i}", 6 * GB // k),),
                outputs=(FileSpec(f"filt.{lane}.{i}", 5 * GB // k),),
                parents=(split,),
            )
            s = b.add(
                "sol2sanger",
                runtime=0.5,
                inputs=(FileSpec(f"filt.{lane}.{i}", 5 * GB // k),),
                outputs=(FileSpec(f"sanger.{lane}.{i}", 5 * GB // k),),
                parents=(f,),
            )
            q = b.add(
                "fastq2bfq",
                runtime=1.5,
                inputs=(FileSpec(f"sanger.{lane}.{i}", 5 * GB // k),),
                outputs=(FileSpec(f"bfq.{lane}.{i}", 2 * GB // k),),
                parents=(s,),
            )
            m = b.add(
                "map",
                runtime=180.0,
                cv=0.3,
                inputs=(FileSpec(f"bfq.{lane}.{i}", 2 * GB // k),),
                outputs=(FileSpec(f"mapped.{lane}.{i}", 500 * MB // k),),
                parents=(q,),
            )
            maps.append(m)
        merge = b.add(
            "mapMerge",
            runtime=10.0 + 0.5 * k,
            inputs=tuple(FileSpec(f"mapped.{lane}.{i}", 500 * MB // k) for i in range(k)),
            outputs=(FileSpec(f"merged.{lane}", 500 * MB),),
            parents=tuple(maps),
        )
        merges.append(merge)
    index = b.add(
        "maqIndex",
        runtime=40.0,
        inputs=tuple(FileSpec(f"merged.{lane}", 500 * MB) for lane in range(lanes)),
        outputs=(FileSpec("index", 700 * MB),),
        parents=tuple(merges),
    )
    b.add(
        "pileup",
        runtime=55.0,
        inputs=(FileSpec("index", 700 * MB),),
        outputs=(FileSpec("pileup.out", 100 * MB),),
        parents=(index,),
    )
    return b.build()


# ---------------------------------------------------------------------------
# CyberShake (extension beyond the paper's three, used in extra tests)
# ---------------------------------------------------------------------------

def cybershake(num_tasks: int = 100, seed: int = 0, name: str | None = None) -> Workflow:
    """Synthetic CyberShake seismic-hazard workflow.

    ``ExtractSGT (xm) -> SeismogramSynthesis (x k per SGT) -> PeakValCalc
    (x same) -> ZipPSA`` -- a wide, data-heavy two-stage fan-out.
    """
    if num_tasks < 6:
        raise ValidationError(f"cybershake needs >= 6 tasks, got {num_tasks}")
    b = _Builder(name or f"cybershake-n{num_tasks}", seed)
    m = max(2, round(math.sqrt(num_tasks / 2.0)))
    k = max(1, round((num_tasks - 1 - m) / (2 * m)))
    peaks = []
    for i in range(m):
        sgt = b.add(
            "ExtractSGT",
            runtime=110.0,
            inputs=_files("sgtvar", i, [5 * GB]),
            outputs=_files("sgt", i, [200 * MB]),
        )
        for j in range(k):
            syn = b.add(
                "SeismogramSynthesis",
                runtime=48.0,
                inputs=_files("sgt", i, [200 * MB]),
                outputs=(FileSpec(f"seis.{i}.{j}", 20 * MB),),
                parents=(sgt,),
            )
            peak = b.add(
                "PeakValCalc",
                runtime=1.5,
                inputs=(FileSpec(f"seis.{i}.{j}", 20 * MB),),
                outputs=(FileSpec(f"peak.{i}.{j}", 1 * MB),),
                parents=(syn,),
            )
            peaks.append(peak)
    b.add(
        "ZipPSA",
        runtime=6.0,
        inputs=tuple(FileSpec(f"peak.{i}.{j}", 1 * MB) for i in range(m) for j in range(k)),
        outputs=(FileSpec("psa.zip", 50 * MB),),
        parents=tuple(peaks),
    )
    return b.build()


# ---------------------------------------------------------------------------
# Pipeline (the paper's Fig. 4 example) and random DAGs (property tests)
# ---------------------------------------------------------------------------

def pipeline(
    num_tasks: int = 4,
    seed: int = 0,
    runtime: float = 60.0,
    data_mb: float = 100.0,
    name: str | None = None,
) -> Workflow:
    """A linear chain ``process1 -> process2 -> ...`` like the paper's Fig. 4."""
    if num_tasks < 1:
        raise ValidationError(f"pipeline needs >= 1 task, got {num_tasks}")
    b = _Builder(name or f"pipeline-n{num_tasks}", seed)
    prev: str | None = None
    for i in range(num_tasks):
        fin = FileSpec("f.a" if i == 0 else f"f.b{i}", int(data_mb * MB))
        fout = FileSpec(f"f.b{i + 1}" if i + 1 < num_tasks else "f.c", int(data_mb * MB))
        prev = b.add(
            f"process{i + 1}",
            runtime=runtime,
            inputs=(fin,),
            outputs=(fout,),
            parents=(prev,) if prev else (),
        )
    return b.build()


def random_dag(
    num_tasks: int,
    edge_prob: float = 0.2,
    seed: int = 0,
    max_runtime: float = 100.0,
    name: str | None = None,
) -> Workflow:
    """A random layered DAG for property-based testing.

    Edges only go from lower to higher task index, guaranteeing
    acyclicity by construction.
    """
    if num_tasks < 1:
        raise ValidationError(f"random_dag needs >= 1 task, got {num_tasks}")
    if not 0.0 <= edge_prob <= 1.0:
        raise ValidationError(f"edge_prob must be in [0, 1], got {edge_prob}")
    rng = spawn_rng(seed, f"workflow-gen/random-{num_tasks}")
    tasks = [
        Task(
            task_id=f"ID{i:05d}",
            executable="synthetic",
            runtime_ref=float(rng.uniform(1.0, max_runtime)),
            inputs=(FileSpec(f"in.{i}", int(rng.integers(1, 100)) * MB),),
            outputs=(FileSpec(f"out.{i}", int(rng.integers(1, 100)) * MB),),
        )
        for i in range(num_tasks)
    ]
    edges = [
        (f"ID{i:05d}", f"ID{j:05d}")
        for i in range(num_tasks)
        for j in range(i + 1, num_tasks)
        if rng.random() < edge_prob
    ]
    return Workflow(name or f"random-n{num_tasks}", tasks, edges)
