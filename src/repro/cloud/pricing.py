"""Billing: hourly instance charges and inter-region transfer pricing.

Two cost notions (both used by the paper):

* the **analytic cost** of Eq. 1-2 -- mean task runtime x unit price,
  fractional hours -- used *inside* the optimizer, and
* the **billed cost** -- whole instance-hours, as 2015-era EC2 charged
  and as the simulator accounts -- used when "running" plans.

Inter-region migration cost (Eq. 9) is ``data_bytes * K_mn`` with
``K_mn`` the egress price of the source region; intra-region transfer
is free, matching EC2.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.common.units import billed_cost, fractional_cost
from repro.cloud.instance_types import Catalog

__all__ = ["PricingModel"]

_BYTES_PER_GB = 1_000_000_000.0


class PricingModel:
    """Price computations over a :class:`~repro.cloud.instance_types.Catalog`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def unit_price(self, type_name: str, region: str | None = None) -> float:
        """$/hour of an instance type in a region."""
        return self.catalog.price(type_name, region)

    def expected_task_cost(
        self, mean_seconds: float, type_name: str, region: str | None = None
    ) -> float:
        """Paper Eq. 1-2: mean runtime x unit price (fractional hours)."""
        return fractional_cost(mean_seconds, self.unit_price(type_name, region))

    def billed_instance_cost(
        self, busy_seconds: float, type_name: str, region: str | None = None
    ) -> float:
        """Whole-hour billed cost of one instance used for ``busy_seconds``."""
        return billed_cost(busy_seconds, self.unit_price(type_name, region))

    def transfer_cost(self, data_bytes: float, src_region: str, dst_region: str) -> float:
        """Eq. 9 migration cost: egress-priced, free within a region."""
        if data_bytes < 0:
            raise ValidationError(f"negative transfer size: {data_bytes}")
        if src_region == dst_region:
            return 0.0
        src = self.catalog.region(src_region)
        self.catalog.region(dst_region)  # validate destination exists
        return data_bytes / _BYTES_PER_GB * src.transfer_out_per_gb

    def price_ratio(self, type_name: str, region_a: str, region_b: str) -> float:
        """Price of ``type_name`` in ``region_a`` relative to ``region_b``."""
        return self.unit_price(type_name, region_a) / self.unit_price(type_name, region_b)

    def cheapest_region(self, type_name: str) -> str:
        """The region offering ``type_name`` at the lowest hourly rate."""
        return min(
            self.catalog.region_names, key=lambda r: self.unit_price(type_name, r)
        )
