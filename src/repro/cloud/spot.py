"""Spot-market pricing extension.

The paper notes that IaaS providers offer "different types of instances
and pricing models"; its evaluation sticks to on-demand pricing.  This
module extends the cloud substrate with the 2014-era EC2 **spot
market**: a mean-reverting price process per instance type, bid-based
acquisition, and revocation when the market price rises above the bid
(with the era's billing rule: an hour interrupted *by the provider* is
free; an hour ended by the user is billed in full).

Used by the extension bench/ablation to quantify the classic trade-off:
lower expected price vs. re-execution risk for deadline-constrained
tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import CloudError
from repro.cloud.instance_types import Catalog

__all__ = ["SpotPriceProcess", "SpotOutcome", "simulate_spot_run"]


@dataclass(frozen=True)
class SpotPriceProcess:
    """An AR(1) (discrete Ornstein-Uhlenbeck) spot price model.

    ``price_{t+1} = mean + phi * (price_t - mean) + sigma * eps``,
    sampled hourly, floored at ``floor`` and capped at ``cap`` (spot
    prices historically spiked above on-demand during contention).

    Parameters are expressed as fractions of the on-demand price, with
    the historical defaults: spot trades around ~30% of on-demand with
    occasional spikes past it.
    """

    on_demand: float
    mean_fraction: float = 0.3
    phi: float = 0.7
    sigma_fraction: float = 0.12
    floor_fraction: float = 0.1
    cap_fraction: float = 2.0

    def __post_init__(self):
        if self.on_demand <= 0:
            raise CloudError(f"on_demand price must be > 0, got {self.on_demand}")
        if not 0 <= self.phi < 1:
            raise CloudError(f"phi must be in [0, 1), got {self.phi}")
        if not 0 < self.floor_fraction <= self.mean_fraction <= self.cap_fraction:
            raise CloudError("need floor <= mean <= cap fractions")

    @classmethod
    def for_type(cls, catalog: Catalog, type_name: str, region: str | None = None, **kw):
        """Process for one catalog type (validates the type exists)."""
        return cls(on_demand=catalog.price(type_name, region), **kw)

    @property
    def mean_price(self) -> float:
        return self.mean_fraction * self.on_demand

    def simulate(self, hours: int, rng: np.random.Generator) -> np.ndarray:
        """An ``(hours,)`` hourly price path starting at the mean."""
        if hours < 1:
            raise CloudError(f"hours must be >= 1, got {hours}")
        mean = self.mean_price
        sigma = self.sigma_fraction * self.on_demand
        lo = self.floor_fraction * self.on_demand
        hi = self.cap_fraction * self.on_demand
        prices = np.empty(hours)
        price = mean
        for t in range(hours):
            price = mean + self.phi * (price - mean) + sigma * rng.normal()
            price = min(max(price, lo), hi)
            prices[t] = price
        return prices


@dataclass(frozen=True)
class SpotOutcome:
    """Monte Carlo summary of running one task on spot at a given bid."""

    bid: float
    completion_probability: float   # finished within the horizon
    mean_cost: float                # over completed runs
    mean_makespan_hours: float      # wall time incl. re-executions
    mean_revocations: float
    on_demand_cost: float

    @property
    def saving_vs_on_demand(self) -> float:
        """Fractional cost saving over on-demand (completed runs)."""
        if self.on_demand_cost == 0:
            return 0.0
        return 1.0 - self.mean_cost / self.on_demand_cost


def simulate_spot_run(
    process: SpotPriceProcess,
    duration_hours: float,
    bid: float,
    rng: np.random.Generator,
    horizon_hours: int = 168,
    trials: int = 200,
) -> SpotOutcome:
    """Monte Carlo: run a ``duration_hours`` task on spot at ``bid``.

    Semantics (2014 EC2): the instance runs while the market price stays
    at or below the bid, charged the *market* price per started hour; a
    provider revocation (price > bid) forfeits progress (checkpointless
    task -> full re-execution) and the interrupted hour is free.  The
    task completes when it accumulates ``duration_hours`` uninterrupted.
    """
    if duration_hours <= 0:
        raise CloudError(f"duration_hours must be > 0, got {duration_hours}")
    if bid <= 0:
        raise CloudError(f"bid must be > 0, got {bid}")
    if trials < 1 or horizon_hours < 1:
        raise CloudError("trials and horizon_hours must be >= 1")

    need = int(np.ceil(duration_hours))
    costs, makespans, revocations, completed = [], [], [], 0
    for _ in range(trials):
        prices = process.simulate(horizon_hours, rng)
        run_hours = 0
        cost = 0.0
        revs = 0
        done_at: int | None = None
        for t in range(horizon_hours):
            if prices[t] > bid:
                # The interrupted hour itself is free, but hours billed in
                # the failed attempt stay spent; progress is forfeited.
                if run_hours > 0:
                    revs += 1
                run_hours = 0
                continue
            cost += prices[t]
            run_hours += 1
            if run_hours >= need:
                done_at = t + 1
                break
        if done_at is not None:
            completed += 1
            costs.append(cost)
            makespans.append(done_at)
            revocations.append(revs)

    return SpotOutcome(
        bid=bid,
        completion_probability=completed / trials,
        mean_cost=float(np.mean(costs)) if costs else float("nan"),
        mean_makespan_hours=float(np.mean(makespans)) if makespans else float("nan"),
        mean_revocations=float(np.mean(revocations)) if revocations else float("nan"),
        on_demand_cost=need * process.on_demand,
    )
