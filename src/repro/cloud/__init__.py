"""IaaS cloud substrate.

The paper runs on Amazon EC2 and on a CloudSim-based simulator seeded
with EC2 calibration data.  This package implements that substrate from
scratch:

* :mod:`~repro.cloud.instance_types` -- the m1.* instance catalog with
  the paper's Table 2 performance distributions and 2014-era prices for
  the two regions the paper uses (US East, Asia-Pacific/Singapore).
* :mod:`~repro.cloud.pricing` -- hourly billing and inter-region data
  transfer pricing (the ``K_mn`` of Eq. 9).
* :mod:`~repro.cloud.network` -- pairwise bandwidth model (intra-region
  bandwidth limited by the slower endpoint; cross-region links slower).
* :mod:`~repro.cloud.metadata` -- the metadata store consumed by WLog's
  ``import(cloud)``: instance facts plus performance histograms.
* :mod:`~repro.cloud.calibration` -- micro-benchmarks that "measure" the
  (simulated) cloud and fit/discretize the results, reproducing the
  paper's 7-day calibration campaign and Table 2.
* :mod:`~repro.cloud.simulator` -- a discrete-event cloud simulator
  (Cloud / Instance / per-second performance dynamics / hourly billing)
  used to *execute* workflows under a provisioning plan.
"""

from repro.cloud.instance_types import (
    InstanceType,
    Catalog,
    Region,
    ec2_catalog,
    EC2_REGIONS,
)
from repro.cloud.pricing import PricingModel
from repro.cloud.network import NetworkModel
from repro.cloud.metadata import MetadataStore, PerfRecord
from repro.cloud.calibration import Calibrator, CalibrationResult
from repro.cloud.simulator import CloudSimulator, ExecutionResult, TaskRecord
from repro.cloud.spot import SpotPriceProcess, SpotOutcome, simulate_spot_run

__all__ = [
    "InstanceType",
    "Catalog",
    "Region",
    "ec2_catalog",
    "EC2_REGIONS",
    "PricingModel",
    "NetworkModel",
    "MetadataStore",
    "PerfRecord",
    "Calibrator",
    "CalibrationResult",
    "CloudSimulator",
    "ExecutionResult",
    "TaskRecord",
    "SpotPriceProcess",
    "SpotOutcome",
    "simulate_spot_run",
]
