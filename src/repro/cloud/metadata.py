"""The cloud metadata store.

The paper keeps calibrated performance histograms and instance facts in
a "metadata store" that WLog's ``import(cloud)`` reads and that the
probabilistic IR translation consults.  This module is that store: a
typed key-value catalog of :class:`PerfRecord` entries keyed by
``(metric, instance_type)``.

Records can come from two sources:

* :meth:`MetadataStore.from_catalog` -- discretize the catalog's
  analytic distributions directly (the engine's out-of-the-box mode);
* :class:`repro.cloud.calibration.Calibrator` -- run micro-benchmarks
  against the simulated cloud and store the *measured* histograms,
  reproducing the paper's calibration campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.common.errors import CloudError
from repro.distributions.base import Distribution
from repro.distributions.histogram import Histogram
from repro.cloud.instance_types import Catalog

__all__ = ["PerfRecord", "MetadataStore", "METRICS"]

#: The three dynamic performance components the paper calibrates.
METRICS = ("seq_io", "rand_io", "network")


@dataclass(frozen=True)
class PerfRecord:
    """One calibrated performance entry.

    ``source`` records provenance: ``"catalog"`` for analytic
    discretization, ``"calibration"`` for measured data.
    """

    metric: str
    instance_type: str
    histogram: Histogram
    distribution: Distribution
    source: str = "catalog"

    def __post_init__(self):
        if self.metric not in METRICS:
            raise CloudError(f"unknown metric {self.metric!r}; choose from {METRICS}")


class MetadataStore:
    """Instance facts + performance histograms for one catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._records: dict[tuple[str, str], PerfRecord] = {}

    @classmethod
    def from_catalog(cls, catalog: Catalog, bins: int = 20) -> "MetadataStore":
        """Populate from the catalog's analytic distributions.

        This is the default, calibration-free mode: each instance type's
        three performance distributions are discretized into ``bins``-bin
        histograms.
        """
        store = cls(catalog)
        for itype in catalog:
            for metric, dist in (
                ("seq_io", itype.seq_io),
                ("rand_io", itype.rand_io),
                ("network", itype.network),
            ):
                store.put(
                    PerfRecord(
                        metric=metric,
                        instance_type=itype.name,
                        histogram=Histogram.from_distribution(dist, bins=bins),
                        distribution=dist,
                        source="catalog",
                    )
                )
        return store

    # Record access -------------------------------------------------------

    def put(self, record: PerfRecord) -> None:
        """Insert or replace a record (calibration overwrites catalog)."""
        self.catalog.type(record.instance_type)  # validate the type exists
        self._records[(record.metric, record.instance_type)] = record

    def get(self, metric: str, instance_type: str) -> PerfRecord:
        try:
            return self._records[(metric, instance_type)]
        except KeyError:
            raise CloudError(
                f"no metadata for metric={metric!r}, type={instance_type!r}; "
                "run calibration or build the store with from_catalog()"
            ) from None

    def histogram(self, metric: str, instance_type: str) -> Histogram:
        """The stored histogram for ``(metric, instance_type)``."""
        return self.get(metric, instance_type).histogram

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[PerfRecord]:
        """All records, deterministic order."""
        return (self._records[k] for k in sorted(self._records))

    # WLog-facing facts ----------------------------------------------------

    def instance_facts(self, region: str | None = None) -> list[Mapping[str, object]]:
        """Instance facts as ``import(cloud)`` exposes them to WLog.

        Mirrors the paper's example fact: ``<key="id1", cloud="ec2",
        instype="m1.small", price="0.044", cpu="1", mem="1.7", ...>``.
        """
        region_obj = self.catalog.region(region)
        facts = []
        for idx, itype in enumerate(self.catalog):
            facts.append(
                {
                    "key": f"id{idx}",
                    "vid": idx,
                    "instype": itype.name,
                    "region": region_obj.name,
                    "price": region_obj.price(itype.name),
                    "cpu": itype.vcpus,
                    "cpu_speed": itype.cpu_speed,
                    "mem": itype.mem_gb,
                }
            )
        return facts
