"""Discrete-event IaaS cloud simulator.

Reproduces the CloudSim-based simulator of the paper's Section 6.1,
with its three components:

* **Cloud** -- maintains an elastic pool of instances (acquire/release)
  and the calibrated performance distributions;
* **Instance** -- a VM of a catalog type in a region, billed in whole
  hours from acquisition to release;
* **Workflow execution** -- tasks become ready when all parents finish;
  a ready task starts immediately on a free (or newly acquired)
  instance of its assigned type; its duration is drawn from the dynamic
  runtime model (CPU + I/O + network with sampled bandwidths), i.e. the
  per-second performance "conforms to the distributions from
  calibration".

The simulator *executes* provisioning plans; the optimizer never sees
it (it works from the metadata store), which is exactly the separation
the paper evaluates: plans optimized against calibrated distributions,
then measured on the dynamic cloud.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.common.errors import CloudError, ValidationError
from repro.common.rng import RngService
from repro.common.units import billed_hours
from repro.cloud.instance_types import Catalog
from repro.cloud.network import NetworkModel
from repro.cloud.pricing import PricingModel
from repro.parallel.executor import ParallelExecutor, chunk_evenly, resolve_workers
from repro.workflow.dag import Workflow

if TYPE_CHECKING:  # import cycle guard (cloud <-> workflow), typing only
    from repro.workflow.runtime_model import RuntimeModel

__all__ = ["TaskRecord", "InstanceRecord", "ExecutionResult", "CloudSimulator"]


@dataclass(frozen=True)
class TaskRecord:
    """Execution trace of one task."""

    task_id: str
    instance_id: int
    instance_type: str
    ready: float
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class InstanceRecord:
    """One acquired instance and its billed life."""

    instance_id: int
    type_name: str
    region: str
    acquired: float
    released: float = 0.0
    tasks: list[str] = field(default_factory=list)

    @property
    def billed_hours(self) -> int:
        return billed_hours(max(self.released - self.acquired, 0.0))


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one workflow under one plan."""

    workflow_name: str
    makespan: float
    cost: float
    task_records: tuple[TaskRecord, ...]
    instance_records: tuple[InstanceRecord, ...]
    region: str

    @property
    def num_instances(self) -> int:
        return len(self.instance_records)

    def meets_deadline(self, deadline: float) -> bool:
        return self.makespan <= deadline


class CloudSimulator:
    """Event-driven execution of workflows on an elastic instance pool."""

    def __init__(
        self,
        catalog: Catalog,
        rngs: RngService | None = None,
        runtime_model: "RuntimeModel | None" = None,
    ):
        from repro.workflow.runtime_model import RuntimeModel

        self.catalog = catalog
        self.rngs = rngs or RngService(0)
        self.runtime = runtime_model or RuntimeModel(catalog)
        self.pricing = PricingModel(catalog)
        self.network = NetworkModel(catalog)

    # ------------------------------------------------------------------

    def execute(
        self,
        workflow: Workflow,
        assignment: Mapping[str, str],
        region: str | None = None,
        run_id: int = 0,
        groups: Mapping[str, object] | None = None,
        failure_rate: float = 0.0,
        max_retries: int = 3,
    ) -> ExecutionResult:
        """Execute ``workflow`` with each task on its assigned type.

        Parameters
        ----------
        assignment:
            task id -> instance type name (the provisioning plan).
        region:
            Region to run in (affects prices only).
        run_id:
            Distinguishes repeated runs of the same plan: each run uses
            an independent performance realization of the cloud.
        groups:
            Optional co-scheduling: task id -> group key.  Tasks sharing
            a group key are pinned to the *same* instance (serialized if
            they overlap); produced by the Merge/Co-scheduling
            transformation operations.
        failure_rate:
            Failure-injection knob: each task *attempt* fails with this
            probability.  A failed attempt consumes its sampled runtime
            on the instance (and is billed), then the task is resubmitted
            -- the Condor retry discipline.
        max_retries:
            Resubmissions allowed per task before the run aborts with
            :class:`CloudError`.
        """
        if not 0.0 <= failure_rate < 1.0:
            raise ValidationError(f"failure_rate must be in [0, 1), got {failure_rate}")
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        region_name = self.catalog.region(region).name
        self._check_assignment(workflow, assignment)
        rng = self.rngs.fresh(f"sim/{workflow.name}/{region_name}/{run_id}")

        counter = itertools.count()
        instances: list[InstanceRecord] = []
        free_at: list[float] = []  # per instance: time it becomes idle
        group_instance: dict[object, int] = {}

        remaining_parents = {tid: len(workflow.parents(tid)) for tid in workflow.task_ids}
        finish_time: dict[str, float] = {}
        records: dict[str, TaskRecord] = {}

        # Event queue of (time, seq, task_id) completion events; ready
        # tasks start immediately (elastic cloud => no queueing except
        # within a co-scheduling group).
        events: list[tuple[float, int, str]] = []

        def acquire(type_name: str, now: float) -> int:
            iid = len(instances)
            instances.append(
                InstanceRecord(
                    instance_id=iid, type_name=type_name, region=region_name, acquired=now
                )
            )
            free_at.append(now)
            return iid

        def pick_instance(tid: str, now: float) -> int:
            type_name = assignment[tid]
            if groups is not None and tid in groups:
                key = (groups[tid], type_name)
                if key not in group_instance:
                    group_instance[key] = acquire(type_name, now)
                return group_instance[key]
            # Reuse the idle instance that has been idle the shortest
            # time (best fit); otherwise scale out.
            best, best_idle = -1, float("inf")
            for iid, rec in enumerate(instances):
                if rec.type_name != type_name:
                    continue
                idle = now - free_at[iid]
                if 0.0 <= idle < best_idle:
                    best, best_idle = iid, idle
            if best >= 0:
                return best
            return acquire(type_name, now)

        attempts: dict[str, int] = {}

        def start_task(tid: str, ready: float) -> None:
            iid = pick_instance(tid, ready)
            start = max(ready, free_at[iid])
            duration = self.runtime.sample(workflow.task(tid), assignment[tid], rng)
            # Failure injection: a failed attempt burns its runtime on the
            # instance, then the task is resubmitted at the failure time.
            while failure_rate > 0.0 and rng.random() < failure_rate:
                attempts[tid] = attempts.get(tid, 0) + 1
                if attempts[tid] > max_retries:
                    raise CloudError(
                        f"task {tid!r} failed {attempts[tid]} times "
                        f"(max_retries={max_retries})"
                    )
                start += float(duration)
                duration = self.runtime.sample(workflow.task(tid), assignment[tid], rng)
            finish = start + float(duration)
            free_at[iid] = finish
            instances[iid].tasks.append(tid)
            records[tid] = TaskRecord(
                task_id=tid,
                instance_id=iid,
                instance_type=assignment[tid],
                ready=ready,
                start=start,
                finish=finish,
            )
            heapq.heappush(events, (finish, next(counter), tid))

        for tid in workflow.roots():
            start_task(tid, 0.0)

        while events:
            now, _, tid = heapq.heappop(events)
            finish_time[tid] = now
            for child in workflow.children(tid):
                remaining_parents[child] -= 1
                if remaining_parents[child] == 0:
                    ready = max(finish_time[p] for p in workflow.parents(child))
                    start_task(child, ready)

        if len(finish_time) != len(workflow):
            raise CloudError(
                f"execution stalled: {len(finish_time)}/{len(workflow)} tasks completed"
            )

        makespan = max(finish_time.values(), default=0.0)
        cost = 0.0
        for iid, rec in enumerate(instances):
            rec.released = max(free_at[iid], rec.acquired)
            cost += self.pricing.billed_instance_cost(
                rec.released - rec.acquired, rec.type_name, region_name
            )

        return ExecutionResult(
            workflow_name=workflow.name,
            makespan=makespan,
            cost=cost,
            task_records=tuple(records[tid] for tid in workflow.task_ids),
            instance_records=tuple(instances),
            region=region_name,
        )

    def run_many(
        self,
        workflow: Workflow,
        assignment: Mapping[str, str],
        runs: int,
        region: str | None = None,
        *,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        workers: int | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> list[ExecutionResult]:
        """Execute the same plan ``runs`` times with fresh cloud dynamics.

        This is how the paper produces Fig. 2 (runtime variance of
        Deco-optimized plans over 100 runs) and all "average cost /
        average execution time" numbers.

        Each run ``r`` draws its cloud realization from the stateless
        stream ``(seed, "sim/<workflow>/<region>/<r>")``, so the result
        list is bit-identical for any ``workers`` count: parallelism
        only distributes run ids over processes.  ``workers=None``
        defers to ``REPRO_WORKERS`` (default serial).  ``progress(done,
        runs)`` is called after every run (serial) or after every
        completed chunk with chunk-granular counts (parallel); the final
        call always reports ``(runs, runs)``.
        """
        if runs < 1:
            raise ValidationError(f"runs must be >= 1, got {runs}")
        nworkers = resolve_workers(workers)

        def execute_run(run_id: int) -> ExecutionResult:
            return self.execute(
                workflow,
                assignment,
                region=region,
                run_id=run_id,
                failure_rate=failure_rate,
                max_retries=max_retries,
            )

        if nworkers == 1 or runs == 1:
            results = []
            for r in range(runs):
                results.append(execute_run(r))
                if progress is not None:
                    progress(len(results), runs)
            return results

        # Deferred: workers.py imports this module (cycle guard).
        from repro.parallel import workers as worker_ctx

        plan = dict(assignment)
        chunks = chunk_evenly(range(runs), min(runs, nworkers * 4))
        payloads = [
            (workflow, plan, region, chunk, failure_rate, max_retries) for chunk in chunks
        ]
        executor = ParallelExecutor(
            nworkers,
            initializer=worker_ctx.init_simulator_worker,
            initargs=(self.catalog, self.rngs, self.runtime),
        )

        def chunk_progress(done: int, total: int) -> None:
            if progress is not None:
                progress(runs if done == total else round(done * runs / total), runs)

        chunked = executor.map_tasks(
            worker_ctx.run_replication_chunk, payloads, progress=chunk_progress
        )
        return [result for chunk in chunked for result in chunk]

    @staticmethod
    def summarize(results: Sequence[ExecutionResult]) -> dict[str, float]:
        """Mean/percentile summary over repeated runs."""
        if not results:
            raise ValidationError("no results to summarize")
        makespans = np.asarray([r.makespan for r in results])
        costs = np.asarray([r.cost for r in results])
        return {
            "mean_makespan": float(makespans.mean()),
            "p5_makespan": float(np.percentile(makespans, 5)),
            "p50_makespan": float(np.percentile(makespans, 50)),
            "p95_makespan": float(np.percentile(makespans, 95)),
            "max_makespan": float(makespans.max()),
            "mean_cost": float(costs.mean()),
            "p95_cost": float(np.percentile(costs, 95)),
        }

    # ------------------------------------------------------------------

    def _check_assignment(self, workflow: Workflow, assignment: Mapping[str, str]) -> None:
        missing = [tid for tid in workflow.task_ids if tid not in assignment]
        if missing:
            raise ValidationError(f"plan missing assignments for tasks {missing[:5]}")
        for tid in workflow.task_ids:
            self.catalog.type(assignment[tid])  # validates the type name
