"""Discrete-event IaaS cloud simulator.

Reproduces the CloudSim-based simulator of the paper's Section 6.1,
with its three components:

* **Cloud** -- maintains an elastic pool of instances (acquire/release)
  and the calibrated performance distributions;
* **Instance** -- a VM of a catalog type in a region, billed in whole
  hours from acquisition to release;
* **Workflow execution** -- tasks become ready when all parents finish;
  a ready task starts immediately on a free (or newly acquired)
  instance of its assigned type; its duration is drawn from the dynamic
  runtime model (CPU + I/O + network with sampled bandwidths), i.e. the
  per-second performance "conforms to the distributions from
  calibration".

The simulator *executes* provisioning plans; the optimizer never sees
it (it works from the metadata store), which is exactly the separation
the paper evaluates: plans optimized against calibrated distributions,
then measured on the dynamic cloud.

Fault injection is declarative: :class:`~repro.faults.FaultModel` says
what can go wrong (transient attempt failures, instance crash-stop with
exponential MTBF, spot revocations, stragglers) and
:class:`~repro.faults.RecoveryPolicy` what the substrate does about it
(bounded retries with backoff, resubmit-to-fresh, checkpoint/restart).
All fault draws come from the dedicated stream
``faults/<workflow>/<region>/<run_id>`` -- separate from the
performance stream, so enabling faults never perturbs the baseline
performance realization, and both streams are rebuilt from ``(seed,
path)`` in worker processes so runs are bit-identical at any worker
count.  The historical ``failure_rate``/``max_retries`` kwargs remain
as a thin compatibility shim over ``FaultModel.from_legacy``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.common.errors import CloudError, ExecutionAborted, ValidationError
from repro.common.rng import RngService
from repro.common.units import billed_hours
from repro.cloud.instance_types import Catalog
from repro.cloud.network import NetworkModel
from repro.cloud.pricing import PricingModel
from repro.faults.model import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.parallel.executor import ParallelExecutor, chunk_evenly, resolve_workers
from repro.workflow.dag import Workflow

if TYPE_CHECKING:  # import cycle guard (cloud <-> workflow), typing only
    from repro.workflow.runtime_model import RuntimeModel

__all__ = ["TaskRecord", "InstanceRecord", "ExecutionResult", "CloudSimulator"]

ON_ABORT_MODES = ("raise", "skip", "record")


@dataclass(frozen=True)
class TaskRecord:
    """Execution trace of one task."""

    task_id: str
    instance_id: int
    instance_type: str
    ready: float
    start: float
    finish: float
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class InstanceRecord:
    """One acquired instance and its billed life."""

    instance_id: int
    type_name: str
    region: str
    acquired: float
    released: float = 0.0
    tasks: list[str] = field(default_factory=list)
    crashed: bool = False
    revoked: bool = False
    spot: bool = False

    @property
    def billed_hours(self) -> int:
        hours = billed_hours(max(self.released - self.acquired, 0.0))
        if self.revoked:
            # 2014 EC2 rule: the provider-interrupted partial hour is free.
            hours = int((self.released - self.acquired) // 3600.0)
        return hours


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one workflow under one plan.

    ``aborted`` marks a censored outcome: the run exhausted a task's
    retry budget and was abandoned.  ``makespan``/``cost`` then cover
    only the work done up to the abort, and ``task_records`` holds the
    completed tasks only (``run_many(on_abort="record")`` returns these
    alongside successful runs).
    """

    workflow_name: str
    makespan: float
    cost: float
    task_records: tuple[TaskRecord, ...]
    instance_records: tuple[InstanceRecord, ...]
    region: str
    aborted: bool = False

    @property
    def num_instances(self) -> int:
        return len(self.instance_records)

    def meets_deadline(self, deadline: float) -> bool:
        return not self.aborted and self.makespan <= deadline


class CloudSimulator:
    """Event-driven execution of workflows on an elastic instance pool."""

    def __init__(
        self,
        catalog: Catalog,
        rngs: RngService | None = None,
        runtime_model: "RuntimeModel | None" = None,
    ):
        from repro.workflow.runtime_model import RuntimeModel

        self.catalog = catalog
        self.rngs = rngs or RngService(0)
        self.runtime = runtime_model or RuntimeModel(catalog)
        self.pricing = PricingModel(catalog)
        self.network = NetworkModel(catalog)

    # ------------------------------------------------------------------

    def execute(
        self,
        workflow: Workflow,
        assignment: Mapping[str, str],
        region: str | None = None,
        run_id: int = 0,
        groups: Mapping[str, object] | None = None,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> ExecutionResult:
        """Execute ``workflow`` with each task on its assigned type.

        Parameters
        ----------
        assignment:
            task id -> instance type name (the provisioning plan).
        region:
            Region to run in (affects prices only).
        run_id:
            Distinguishes repeated runs of the same plan: each run uses
            an independent performance realization of the cloud.
        groups:
            Optional co-scheduling: task id -> group key.  Tasks sharing
            a group key are pinned to the *same* instance (serialized if
            they overlap); produced by the Merge/Co-scheduling
            transformation operations.
        faults:
            Declarative :class:`FaultModel`.  When omitted, built from
            the legacy ``failure_rate`` knob (each task *attempt* fails
            with that probability, burning its sampled runtime on the
            instance before resubmission -- the Condor retry
            discipline).
        recovery:
            :class:`RecoveryPolicy`.  When omitted, built from the
            legacy ``max_retries`` knob (that many resubmissions per
            task before the run aborts with :class:`ExecutionAborted`,
            no backoff, no checkpointing).
        """
        if not 0.0 <= failure_rate < 1.0:
            raise ValidationError(f"failure_rate must be in [0, 1), got {failure_rate}")
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if faults is None:
            faults = FaultModel.from_legacy(failure_rate)
        if recovery is None:
            recovery = RecoveryPolicy(max_retries=max_retries)
        region_name = self.catalog.region(region).name
        self._check_assignment(workflow, assignment)
        rng = self.rngs.fresh(f"sim/{workflow.name}/{region_name}/{run_id}")
        # Fault draws live on their own named stream: enabling faults
        # never perturbs the baseline performance realization, and both
        # streams rebuild identically inside worker processes.
        frng = self.rngs.fresh(f"faults/{workflow.name}/{region_name}/{run_id}")

        counter = itertools.count()
        instances: list[InstanceRecord] = []
        free_at: list[float] = []  # per instance: time it becomes idle
        death_at: list[float] = []  # crash/revocation instant (inf = healthy)
        spot_prices: list[np.ndarray | None] = []
        group_instance: dict[object, int] = {}

        remaining_parents = {tid: len(workflow.parents(tid)) for tid in workflow.task_ids}
        finish_time: dict[str, float] = {}
        records: dict[str, TaskRecord] = {}

        # Event queue of (time, seq, task_id) completion events; ready
        # tasks start immediately (elastic cloud => no queueing except
        # within a co-scheduling group).
        events: list[tuple[float, int, str]] = []

        def acquire(type_name: str, now: float) -> int:
            iid = len(instances)
            instances.append(
                InstanceRecord(
                    instance_id=iid,
                    type_name=type_name,
                    region=region_name,
                    acquired=now,
                    spot=faults.spot is not None,
                )
            )
            free_at.append(now)
            crash = faults.crash_time(now, frng)
            if faults.spot is not None:
                proc = faults.spot.process_for(self.catalog, type_name, region_name)
                prices = proc.simulate(faults.spot.horizon_hours, frng)
                spot_prices.append(prices)
                hour = faults.spot.revocation_hour(prices, faults.spot.bid(proc))
                if hour is not None:
                    crash = min(crash, now + hour * 3600.0)
                    # min() below decides which flag fires; mark revoked
                    # lazily at retirement when the revocation wins.
            else:
                spot_prices.append(None)
            death_at.append(crash)
            return iid

        def retire(iid: int, at: float, revoked: bool) -> None:
            rec = instances[iid]
            rec.released = max(at, rec.acquired)
            rec.crashed = not revoked
            rec.revoked = revoked
            free_at[iid] = math.inf  # never picked again
            for key, gid in list(group_instance.items()):
                if gid == iid:
                    del group_instance[key]

        def is_revocation(iid: int, at: float) -> bool:
            prices = spot_prices[iid]
            if prices is None or faults.spot is None:
                return False
            hour = int((at - instances[iid].acquired) // 3600.0)
            proc = faults.spot.process_for(
                self.catalog, instances[iid].type_name, region_name
            )
            return hour < len(prices) and prices[hour] > faults.spot.bid(proc)

        def pick_instance(tid: str, now: float, avoid: int | None = None) -> int:
            type_name = assignment[tid]
            if groups is not None and tid in groups:
                key = (groups[tid], type_name)
                if key not in group_instance:
                    group_instance[key] = acquire(type_name, now)
                return group_instance[key]
            # Reuse the idle instance that has been idle the shortest
            # time (best fit); otherwise scale out.
            best, best_idle = -1, float("inf")
            for iid, rec in enumerate(instances):
                if rec.type_name != type_name or iid == avoid:
                    continue
                idle = now - free_at[iid]
                if 0.0 <= idle < best_idle:
                    best, best_idle = iid, idle
            if best >= 0:
                return best
            return acquire(type_name, now)

        def abort(tid: str, attempts: int, at: float) -> ExecutionAborted:
            return ExecutionAborted(
                f"task {tid!r} failed {attempts} times (max_retries={recovery.max_retries})",
                task_id=tid,
                attempts=attempts,
                sim_time=at,
                task_records=tuple(records[t] for t in workflow.task_ids if t in records),
            )

        def start_task(tid: str, ready: float) -> None:
            # The baseline performance draw: exactly one per task, from
            # the performance stream, faults on or off.
            base = self.runtime.sample(workflow.task(tid), assignment[tid], rng)
            submit = ready
            failures = 0
            surviving = 0.0  # checkpointed work carried across crashes
            avoid: int | None = None
            while True:
                iid = pick_instance(tid, submit, avoid=avoid)
                start = max(submit, free_at[iid])
                if death_at[iid] <= start:
                    # Died while idle (or before this queued group task
                    # started): retire and pick again -- not a task
                    # failure, no retry budget consumed.
                    at = death_at[iid]
                    retire(iid, at, is_revocation(iid, at))
                    continue
                work_total = float(base) * faults.straggler_factor(frng)
                failed = faults.attempt_fails(frng)
                work = max(work_total - surviving, 0.0)
                wall = recovery.attempt_wall_time(work, resuming=surviving > 0.0)
                finish = start + wall
                if death_at[iid] < finish:
                    # Crash-stop / revocation mid-attempt.
                    kill = death_at[iid]
                    retire(iid, kill, is_revocation(iid, kill))
                    failures += 1
                    if failures > recovery.max_retries:
                        raise abort(tid, failures, kill)
                    if recovery.checkpoint is not None:
                        elapsed = kill - start
                        if surviving > 0.0:
                            elapsed -= recovery.checkpoint.restore
                        surviving = min(
                            surviving + recovery.checkpoint.surviving_work(elapsed, work),
                            work_total,
                        )
                    submit = kill + recovery.backoff_delay(failures)
                    avoid = iid if recovery.resubmit_fresh else None
                    continue
                if failed:
                    # Transient failure: the attempt burns its full wall
                    # time on the instance (and is billed), output is
                    # discarded -- checkpoints don't help bad outputs.
                    free_at[iid] = finish
                    failures += 1
                    if failures > recovery.max_retries:
                        raise abort(tid, failures, finish)
                    surviving = 0.0
                    submit = finish + recovery.backoff_delay(failures)
                    avoid = iid if recovery.resubmit_fresh else None
                    # Retry attempts resample their runtime from the
                    # fault stream (the legacy discipline resampled, but
                    # keeping retries off the performance stream keeps
                    # the baseline realization fault-invariant).
                    if faults.task_failure_rate > 0.0:
                        base = self.runtime.sample(workflow.task(tid), assignment[tid], frng)
                    continue
                free_at[iid] = finish
                instances[iid].tasks.append(tid)
                records[tid] = TaskRecord(
                    task_id=tid,
                    instance_id=iid,
                    instance_type=assignment[tid],
                    ready=ready,
                    start=start,
                    finish=finish,
                    attempts=failures + 1,
                )
                heapq.heappush(events, (finish, next(counter), tid))
                return

        def finalize(aborted: bool) -> ExecutionResult:
            makespan = max(finish_time.values(), default=0.0)
            if aborted and records:
                makespan = max(r.finish for r in records.values())
            cost = 0.0
            for iid, rec in enumerate(instances):
                if math.isinf(free_at[iid]):  # retired by crash/revocation
                    pass
                else:
                    rec.released = max(free_at[iid], rec.acquired)
                cost += self._instance_cost(rec, spot_prices[iid], region_name)
            return ExecutionResult(
                workflow_name=workflow.name,
                makespan=makespan,
                cost=cost,
                task_records=tuple(records[tid] for tid in workflow.task_ids if tid in records),
                instance_records=tuple(instances),
                region=region_name,
                aborted=aborted,
            )

        try:
            for tid in workflow.roots():
                start_task(tid, 0.0)

            while events:
                now, _, tid = heapq.heappop(events)
                finish_time[tid] = now
                for child in workflow.children(tid):
                    remaining_parents[child] -= 1
                    if remaining_parents[child] == 0:
                        ready = max(finish_time[p] for p in workflow.parents(child))
                        start_task(child, ready)
        except ExecutionAborted as exc:
            exc.partial_result = finalize(aborted=True)
            raise

        if len(finish_time) != len(workflow):
            raise CloudError(
                f"execution stalled: {len(finish_time)}/{len(workflow)} tasks completed"
            )

        return finalize(aborted=False)

    def _instance_cost(
        self, rec: InstanceRecord, prices: np.ndarray | None, region_name: str
    ) -> float:
        """Billed cost of one instance life.

        On-demand instances pay whole hours at the catalog price.  Spot
        instances pay the drawn hourly market prices; a
        provider-revoked instance's interrupted partial hour is free
        (2014 EC2 rule), a user-released one pays the started hour.
        """
        lifetime = max(rec.released - rec.acquired, 0.0)
        if prices is None:
            return self.pricing.billed_instance_cost(lifetime, rec.type_name, region_name)
        if rec.revoked:
            hours = int(lifetime // 3600.0)
        else:
            hours = billed_hours(lifetime)
        hours = min(hours, len(prices))
        return float(prices[:hours].sum())

    def run_many(
        self,
        workflow: Workflow,
        assignment: Mapping[str, str],
        runs: int,
        region: str | None = None,
        *,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        on_abort: str = "raise",
        workers: int | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> list[ExecutionResult]:
        """Execute the same plan ``runs`` times with fresh cloud dynamics.

        This is how the paper produces Fig. 2 (runtime variance of
        Deco-optimized plans over 100 runs) and all "average cost /
        average execution time" numbers.

        Each run ``r`` draws its cloud realization from the stateless
        stream ``(seed, "sim/<workflow>/<region>/<r>")`` (and its fault
        realization from ``faults/...``), so the result list is
        bit-identical for any ``workers`` count: parallelism only
        distributes run ids over processes.  ``workers=None`` defers to
        ``REPRO_WORKERS`` (default serial).  ``progress(done, runs)`` is
        called after every run (serial) or after every completed chunk
        with chunk-granular counts (parallel); the final call always
        reports ``(runs, runs)``.

        ``on_abort`` decides what an :class:`ExecutionAborted` run does
        to the batch: ``"raise"`` propagates (historical behavior),
        ``"skip"`` drops the run, ``"record"`` keeps its censored
        partial result (``aborted=True``) in the list.
        """
        if runs < 1:
            raise ValidationError(f"runs must be >= 1, got {runs}")
        if on_abort not in ON_ABORT_MODES:
            raise ValidationError(
                f"on_abort must be one of {ON_ABORT_MODES}, got {on_abort!r}"
            )
        nworkers = resolve_workers(workers)

        def execute_run(run_id: int) -> ExecutionResult | None:
            try:
                return self.execute(
                    workflow,
                    assignment,
                    region=region,
                    run_id=run_id,
                    failure_rate=failure_rate,
                    max_retries=max_retries,
                    faults=faults,
                    recovery=recovery,
                )
            except ExecutionAborted as exc:
                if on_abort == "raise":
                    raise
                if on_abort == "record":
                    return exc.partial_result
                return None

        if nworkers == 1 or runs == 1:
            results = []
            for r in range(runs):
                outcome = execute_run(r)
                if outcome is not None:
                    results.append(outcome)
                if progress is not None:
                    progress(r + 1, runs)
            return results

        # Deferred: workers.py imports this module (cycle guard).
        from repro.parallel import workers as worker_ctx

        plan = dict(assignment)
        chunks = chunk_evenly(range(runs), min(runs, nworkers * 4))
        payloads = [
            (workflow, plan, region, chunk, failure_rate, max_retries, faults, recovery, on_abort)
            for chunk in chunks
        ]
        executor = ParallelExecutor(
            nworkers,
            initializer=worker_ctx.init_simulator_worker,
            initargs=(self.catalog, self.rngs, self.runtime),
        )

        def chunk_progress(done: int, total: int) -> None:
            if progress is not None:
                progress(runs if done == total else round(done * runs / total), runs)

        chunked = executor.map_tasks(
            worker_ctx.run_replication_chunk, payloads, progress=chunk_progress
        )
        return [result for chunk in chunked for result in chunk]

    @staticmethod
    def summarize(results: Sequence[ExecutionResult]) -> dict[str, float]:
        """Mean/percentile summary over repeated runs.

        Censored (aborted) runs contribute to ``num_aborted`` but are
        excluded from the makespan/cost statistics -- their trailing
        work never happened.
        """
        if not results:
            raise ValidationError("no results to summarize")
        completed = [r for r in results if not r.aborted]
        if not completed:
            raise ValidationError("no completed results to summarize (all runs aborted)")
        makespans = np.asarray([r.makespan for r in completed])
        costs = np.asarray([r.cost for r in completed])
        return {
            "mean_makespan": float(makespans.mean()),
            "p5_makespan": float(np.percentile(makespans, 5)),
            "p50_makespan": float(np.percentile(makespans, 50)),
            "p95_makespan": float(np.percentile(makespans, 95)),
            "max_makespan": float(makespans.max()),
            "mean_cost": float(costs.mean()),
            "p95_cost": float(np.percentile(costs, 95)),
            "num_aborted": float(len(results) - len(completed)),
        }

    # ------------------------------------------------------------------

    def _check_assignment(self, workflow: Workflow, assignment: Mapping[str, str]) -> None:
        missing = [tid for tid in workflow.task_ids if tid not in assignment]
        if missing:
            raise ValidationError(f"plan missing assignments for tasks {missing[:5]}")
        for tid in workflow.task_ids:
            self.catalog.type(assignment[tid])  # validates the type name
