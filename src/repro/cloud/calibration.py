"""Calibration micro-benchmarks.

The paper measures CPU, sequential I/O (hdparm), random I/O (512 B
reads) and network (Iperf) once a minute for 7 days (~10,000 samples per
setting), fits distributions, and stores discretized histograms in the
metadata store.  This module reproduces that campaign against the
*simulated* cloud: each "measurement" samples the instance's underlying
performance process, exactly the observation a micro-benchmark would
make.  The output regenerates the paper's Table 2 (fitted Gamma/Normal
parameters) and Figs. 6-7 (network traces and histograms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import CloudError
from repro.common.rng import RngService
from repro.distributions.fitting import FitResult, best_fit, fit_gamma, fit_normal
from repro.distributions.histogram import Histogram
from repro.distributions.parametric import Empirical
from repro.cloud.instance_types import Catalog
from repro.cloud.metadata import METRICS, MetadataStore, PerfRecord
from repro.cloud.network import NetworkModel

__all__ = ["CalibrationResult", "Calibrator"]


@dataclass(frozen=True)
class CalibrationResult:
    """Measurements + fit for one (metric, instance type) setting."""

    metric: str
    instance_type: str
    samples: Empirical
    fit: FitResult
    histogram: Histogram

    @property
    def max_relative_variation(self) -> float:
        """(max - min) / mean of the trace -- the paper's "variance up to
        50%" figure for m1.medium network performance."""
        s = self.samples.samples
        return float((s.max() - s.min()) / s.mean())


class Calibrator:
    """Runs the measurement campaign and populates a metadata store."""

    #: Families tried per metric, mirroring the paper's findings
    #: (sequential I/O -> Gamma, random I/O and network -> Normal).
    FAMILIES: dict[str, tuple[str, ...]] = {
        "seq_io": ("gamma", "normal"),
        "rand_io": ("normal", "gamma"),
        "network": ("normal", "gamma"),
    }

    def __init__(self, catalog: Catalog, rngs: RngService | None = None, num_samples: int = 10_000):
        if num_samples < 100:
            raise CloudError(f"calibration needs >= 100 samples, got {num_samples}")
        self.catalog = catalog
        self.rngs = (rngs or RngService(0)).child("calibration")
        self.num_samples = num_samples

    # Single-setting measurements ------------------------------------------

    def measure(self, metric: str, instance_type: str) -> CalibrationResult:
        """Measure one metric on one instance type and fit it.

        Samples come from the catalog's underlying performance process;
        negative draws (possible under the Normal model) are redrawn the
        way a real benchmark would simply never observe them.
        """
        if metric not in METRICS:
            raise CloudError(f"unknown metric {metric!r}; choose from {METRICS}")
        itype = self.catalog.type(instance_type)
        dist = {"seq_io": itype.seq_io, "rand_io": itype.rand_io, "network": itype.network}[metric]
        rng = self.rngs.get(f"{metric}/{instance_type}")
        samples = np.asarray(dist.sample(rng, self.num_samples), dtype=float)
        for _ in range(16):  # redraw the (rare) non-physical negatives
            bad = samples <= 0
            if not bad.any():
                break
            samples[bad] = dist.sample(rng, int(bad.sum()))
        samples = np.abs(samples)
        fit = best_fit(samples, self.FAMILIES[metric])
        return CalibrationResult(
            metric=metric,
            instance_type=instance_type,
            samples=Empirical(samples),
            fit=fit,
            histogram=Histogram.from_samples(samples, bins=20),
        )

    def measure_link(self, type_a: str, type_b: str) -> CalibrationResult:
        """Iperf-style pairwise bandwidth measurement (Fig. 7).

        The link is endpoint-limited, so each sample is the min of the
        two endpoints' draws.
        """
        net = NetworkModel(self.catalog)
        rng = self.rngs.get(f"link/{min(type_a, type_b)}/{max(type_a, type_b)}")
        samples = net.sample_link(type_a, type_b, rng, self.num_samples)
        fit = best_fit(samples, ("normal", "gamma"))
        return CalibrationResult(
            metric="network",
            instance_type=f"{type_a}<->{type_b}",
            samples=Empirical(samples),
            fit=fit,
            histogram=Histogram.from_samples(samples, bins=20),
        )

    # Full campaign ---------------------------------------------------------

    def run(self, store: MetadataStore | None = None) -> MetadataStore:
        """Measure every (metric, type) pair into a metadata store.

        This is the periodic, user-transparent calibration the paper
        describes; re-running it refreshes the histograms in place.
        """
        store = store or MetadataStore(self.catalog)
        for itype in self.catalog:
            for metric in METRICS:
                result = self.measure(metric, itype.name)
                store.put(
                    PerfRecord(
                        metric=metric,
                        instance_type=itype.name,
                        histogram=result.histogram,
                        distribution=result.fit.distribution,
                        source="calibration",
                    )
                )
        return store

    def table2(self) -> list[dict[str, object]]:
        """Regenerate the paper's Table 2 rows.

        One row per instance type with the fitted sequential-I/O Gamma
        ``(k, theta)`` and random-I/O Normal ``(mu, sigma)`` parameters.
        """
        rows = []
        for itype in self.catalog:
            seq = self.measure("seq_io", itype.name)
            rand = self.measure("rand_io", itype.name)
            seq_fit = fit_gamma(seq.samples.samples)
            rand_fit = fit_normal(rand.samples.samples)
            rows.append(
                {
                    "instance_type": itype.name,
                    "seq_io_k": seq_fit.distribution.k,
                    "seq_io_theta": seq_fit.distribution.theta,
                    "rand_io_mu": rand_fit.distribution.mu,
                    "rand_io_sigma": rand_fit.distribution.sigma,
                    "seq_io_family": seq.fit.family,
                    "rand_io_family": rand.fit.family,
                }
            )
        return rows
