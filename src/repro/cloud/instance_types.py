"""The EC2 instance catalog with the paper's calibrated distributions.

Table 2 of the paper gives, per instance type, the fitted distribution
of sequential I/O bandwidth (Gamma, MB/s) and random I/O throughput
(Normal, IOPS on 512 B reads).  Section 6.2 reports that network
bandwidth follows a Normal distribution whose variance shrinks for
larger types (m1.medium varies up to 50%, m1.large much less); the
Normal parameters here are chosen to reproduce those figures.

Prices are the 2014 on-demand rates for the two regions the paper uses;
the Singapore premium on m1.small is the 33% quoted in Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.common.errors import ValidationError
from repro.distributions.base import Distribution
from repro.distributions.parametric import GammaDistribution, NormalDistribution

__all__ = ["InstanceType", "Region", "Catalog", "ec2_catalog", "EC2_REGIONS"]

MB_PER_S = 1_000_000.0  # bandwidths are stored in bytes/second


@dataclass(frozen=True)
class InstanceType:
    """One VM type and its performance model.

    Attributes
    ----------
    name:
        EC2-style type name, e.g. ``"m1.small"``.
    cpu_speed:
        Relative CPU speed factor; a task's CPU component is
        ``runtime_ref / cpu_speed`` (the paper's scaling factor).
    vcpus / mem_gb:
        Capacity facts exported to WLog's ``import(cloud)``.
    seq_io / rand_io / network:
        Performance distributions.  ``seq_io`` and ``network`` are in
        bytes/second; ``rand_io`` in IOPS.
    """

    name: str
    cpu_speed: float
    vcpus: int
    mem_gb: float
    seq_io: Distribution
    rand_io: Distribution
    network: Distribution

    def __post_init__(self):
        if not self.name:
            raise ValidationError("instance type name must be non-empty")
        if self.cpu_speed <= 0:
            raise ValidationError(f"{self.name}: cpu_speed must be > 0")
        if self.vcpus < 1:
            raise ValidationError(f"{self.name}: vcpus must be >= 1")


@dataclass(frozen=True)
class Region:
    """A cloud region (data center) with its own price list.

    ``prices`` maps instance-type name to $/hour;
    ``transfer_out_per_gb`` is the egress price ($/GB) applied to
    cross-region migrations (``K_mn`` in the paper's Eq. 9).
    """

    name: str
    prices: Mapping[str, float]
    transfer_out_per_gb: float = 0.09

    def __post_init__(self):
        object.__setattr__(self, "prices", dict(self.prices))
        for t, p in self.prices.items():
            if p <= 0:
                raise ValidationError(f"region {self.name}: price of {t} must be > 0, got {p}")
        if self.transfer_out_per_gb < 0:
            raise ValidationError(f"region {self.name}: negative egress price")

    def price(self, type_name: str) -> float:
        """$/hour for ``type_name``; raises for unknown types."""
        try:
            return self.prices[type_name]
        except KeyError:
            raise ValidationError(
                f"region {self.name!r} has no price for instance type {type_name!r}"
            ) from None


class Catalog:
    """The instance-type catalog plus the regions offering them.

    Index-based access (``catalog[j]``) gives the dense type ordering
    the array-based solver uses: types are sorted by ``default_region``
    price ascending, so "promote" always moves to a higher index.
    """

    def __init__(self, types: Iterable[InstanceType], regions: Iterable[Region], default_region: str):
        self._types: dict[str, InstanceType] = {}
        for t in types:
            if t.name in self._types:
                raise ValidationError(f"duplicate instance type {t.name!r}")
            self._types[t.name] = t
        if not self._types:
            raise ValidationError("catalog must define at least one instance type")
        self._regions: dict[str, Region] = {}
        for r in regions:
            if r.name in self._regions:
                raise ValidationError(f"duplicate region {r.name!r}")
            missing = set(self._types) - set(r.prices)
            if missing:
                raise ValidationError(f"region {r.name!r} missing prices for {sorted(missing)}")
            self._regions[r.name] = r
        if default_region not in self._regions:
            raise ValidationError(f"default region {default_region!r} not defined")
        self.default_region = default_region
        ref = self._regions[default_region]
        self._order = tuple(sorted(self._types, key=lambda n: (ref.prices[n], n)))
        self._type_index = {n: i for i, n in enumerate(self._order)}

    # Types ---------------------------------------------------------------

    @property
    def type_names(self) -> tuple[str, ...]:
        """Type names sorted by default-region price, ascending."""
        return self._order

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[InstanceType]:
        return (self._types[n] for n in self._order)

    def __getitem__(self, index: int) -> InstanceType:
        return self._types[self._order[index]]

    def type(self, name: str) -> InstanceType:
        try:
            return self._types[name]
        except KeyError:
            raise ValidationError(f"unknown instance type {name!r}") from None

    def index_of(self, name: str) -> int:
        """Dense index of a type (0 = cheapest in the default region)."""
        try:
            return self._type_index[name]
        except KeyError:
            raise ValidationError(f"unknown instance type {name!r}") from None

    def cheapest(self) -> InstanceType:
        return self[0]

    def fastest(self) -> InstanceType:
        return max(self, key=lambda t: t.cpu_speed)

    # Regions -------------------------------------------------------------

    @property
    def region_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._regions))

    def region(self, name: str | None = None) -> Region:
        name = name or self.default_region
        try:
            return self._regions[name]
        except KeyError:
            raise ValidationError(f"unknown region {name!r}") from None

    def price(self, type_name: str, region: str | None = None) -> float:
        """$/hour of ``type_name`` in ``region`` (default region if None)."""
        return self.region(region).price(type_name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Catalog(types={list(self._order)}, regions={list(self._regions)})"


#: Price lists for the two EC2 regions the paper's Section 6 uses
#: (2014 on-demand rates; Singapore ~33% above US East, cf. Section 3.3).
EC2_REGIONS = {
    "us-east-1": {
        "m1.small": 0.044,
        "m1.medium": 0.087,
        "m1.large": 0.175,
        "m1.xlarge": 0.350,
    },
    "ap-southeast-1": {
        "m1.small": 0.058,
        "m1.medium": 0.117,
        "m1.large": 0.233,
        "m1.xlarge": 0.467,
    },
}


def ec2_catalog(default_region: str = "us-east-1") -> Catalog:
    """The paper's four-type EC2 catalog with Table 2 distributions.

    Sequential I/O: Gamma (MB/s).  Random I/O: Normal (IOPS).  Network:
    Normal (MB/s) with variance decreasing in instance size, calibrated
    to Section 6.2's observations (m1.medium varies up to ~50%).
    """
    mbps = MB_PER_S
    types = [
        InstanceType(
            name="m1.small",
            cpu_speed=1.0,
            vcpus=1,
            mem_gb=1.7,
            seq_io=GammaDistribution(129.3, 0.79 * mbps),
            rand_io=NormalDistribution(150.3, 50.0),
            network=NormalDistribution(55.0 * mbps, 12.0 * mbps),
        ),
        InstanceType(
            name="m1.medium",
            cpu_speed=2.0,
            vcpus=1,
            mem_gb=3.75,
            seq_io=GammaDistribution(127.1, 0.80 * mbps),
            rand_io=NormalDistribution(128.9, 8.4),
            network=NormalDistribution(80.0 * mbps, 16.0 * mbps),
        ),
        InstanceType(
            name="m1.large",
            cpu_speed=4.0,
            vcpus=2,
            mem_gb=7.5,
            seq_io=GammaDistribution(376.6, 0.28 * mbps),
            rand_io=NormalDistribution(172.9, 34.8),
            network=NormalDistribution(100.0 * mbps, 8.0 * mbps),
        ),
        InstanceType(
            name="m1.xlarge",
            cpu_speed=8.0,
            vcpus=4,
            mem_gb=15.0,
            seq_io=GammaDistribution(408.1, 0.26 * mbps),
            rand_io=NormalDistribution(1034.0, 146.4),
            network=NormalDistribution(110.0 * mbps, 6.0 * mbps),
        ),
    ]
    regions = [Region(name, prices) for name, prices in EC2_REGIONS.items()]
    return Catalog(types, regions, default_region=default_region)
