"""Pairwise network bandwidth model.

The paper measures bandwidth between every pair of instance types with
Iperf (Fig. 7: the m1.large <-> m1.large link is faster and tighter than
m1.medium <-> m1.large).  We model a link as being limited by its slower
endpoint: the link distribution between types A and B is A's network
distribution "min-combined" with B's.  For sampling this is the exact
elementwise minimum; for the analytic distribution we approximate with
the smaller-mean endpoint's distribution, which reproduces Fig. 7's
ordering.

Cross-region links (``Band_mn`` in Eq. 10) are modeled with a dedicated,
slower WAN distribution.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.distributions.base import Distribution
from repro.distributions.parametric import NormalDistribution
from repro.cloud.instance_types import Catalog, MB_PER_S

__all__ = ["NetworkModel"]


class NetworkModel:
    """Bandwidth lookups/sampling between instances and regions."""

    #: Default WAN link between two regions: ~25 MB/s with high variance
    #: (trans-Pacific link between the paper's US East and Singapore).
    DEFAULT_WAN = NormalDistribution(25.0 * MB_PER_S, 8.0 * MB_PER_S)

    def __init__(self, catalog: Catalog, wan: Distribution | None = None):
        self.catalog = catalog
        self.wan = wan or self.DEFAULT_WAN

    def link_distribution(self, type_a: str, type_b: str) -> Distribution:
        """Analytic intra-region link model: the slower endpoint dominates."""
        a = self.catalog.type(type_a)
        b = self.catalog.type(type_b)
        return a.network if a.network.mean() <= b.network.mean() else b.network

    def sample_link(
        self,
        type_a: str,
        type_b: str,
        rng: np.random.Generator,
        size: int | None = None,
    ):
        """Sample intra-region link bandwidth: elementwise min of endpoints."""
        a = self.catalog.type(type_a).network.sample(rng, size)
        b = self.catalog.type(type_b).network.sample(rng, size)
        out = np.minimum(a, b)
        out = np.maximum(out, 1e3)  # floor: a link is never fully dead
        return float(out) if size is None else out

    def cross_region_distribution(self, region_a: str, region_b: str) -> Distribution:
        """Link model between two regions (the WAN for distinct regions)."""
        self.catalog.region(region_a)
        self.catalog.region(region_b)
        if region_a == region_b:
            raise ValidationError(
                "cross_region_distribution called with identical regions; "
                "use link_distribution for intra-region links"
            )
        return self.wan

    def sample_cross_region(
        self, region_a: str, region_b: str, rng: np.random.Generator, size: int | None = None
    ):
        """Sample WAN bandwidth between two distinct regions."""
        dist = self.cross_region_distribution(region_a, region_b)
        out = np.maximum(np.asarray(dist.sample(rng, 1 if size is None else size)), 1e3)
        return float(out[0]) if size is None else out

    def mean_bandwidth(self, type_a: str, type_b: str) -> float:
        """Mean intra-region link bandwidth (bytes/s)."""
        return self.link_distribution(type_a, type_b).mean()

    def mean_cross_region_bandwidth(self, region_a: str, region_b: str) -> float:
        """Mean WAN bandwidth (bytes/s); Eq. 10's ``Band_mn``."""
        return self.cross_region_distribution(region_a, region_b).mean()
