"""Command-line interface: run experiments and one-off optimizations.

Usage::

    python -m repro list
    python -m repro run fig01 [--seed 7] [--samples 100] [--evals 800]
    python -m repro run all --workers 4
    python -m repro schedule --app montage --degrees 1 --deadline medium \
        --percentile 96 [--no-incremental] [--no-analytic-screen]
    python -m repro schedule --backend analytic --app montage --degrees 4
    python -m repro schedule --dax workflow.xml --deadline 36000
    python -m repro schedule --faults --failure-rate 0.1 --execute
    python -m repro bench parallel [--workers 4] [--runs 100] [--out PATH]
    python -m repro bench solver [--backend gpu|cpu|analytic] [--no-analytic-screen] \
        [--no-dominance-mask]
    python -m repro bench faults [--failure-rate 0.12] [--mtbf 36000]
    python -m repro lint program.wlog [--format json|sarif] [--strict]
    python -m repro lint --bundled
    python -m repro lint --explain
    python -m repro analyze program.wlog [--format json|sarif] [--strict]
    python -m repro analyze --bundled
    python -m repro calibrate

``run`` regenerates a paper table/figure through the same drivers the
benchmark harness uses and prints the table; ``schedule`` runs one Deco
optimization and prints the plan; ``bench`` emits the machine-readable
benchmark JSON files (``BENCH_parallel.json`` / ``BENCH_solver.json``);
``lint`` runs the WLog static analyzer (:mod:`repro.wlog.analysis`)
over program files or the bundled templates; ``analyze`` runs the
lint checks *plus* the semantic pass framework (:mod:`repro.analysis`:
interval feasibility proofs, dead-rule elimination) in one diagnostic
stream; ``calibrate`` reproduces Table 2.

``--workers N`` (or the ``REPRO_WORKERS`` environment variable) fans
the embarrassingly parallel stages -- simulation replications and
per-member solves -- over N processes; outputs are bit-identical for
any worker count.

Exit codes: 0 success, 1 infeasible plan / lint findings, 2 usage error
(unknown experiment, unreadable file, bad argument).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.common.errors import DecoError, ValidationError

__all__ = ["main", "EXPERIMENTS"]

#: Experiment id -> title.  Ids mirror the paper's numbering; drivers
#: live in :mod:`repro.bench` and are imported lazily so `repro lint`
#: and `repro schedule` do not pay the benchmark-harness import cost.
EXPERIMENTS: dict[str, str] = {
    "fig01": "Figure 1: Montage cost per configuration",
    "fig02": "Figure 2: normalized makespan quantiles",
    "table2": "Table 2: I/O performance distributions",
    "fig06": "Figure 6: m1.medium network dynamics",
    "fig07": "Figure 7: pairwise link histograms",
    "fig08": "Figure 8: probabilistic deadline sweep",
    "fig09": "Figure 9: ensemble scores (Deco vs SPSS)",
    "fig10": "Figure 10: follow-the-cost",
    "fig11": "Figure 11: deadline sensitivity",
    "speedup": "Solver speedup: vectorized vs scalar",
    "overhead": "Optimization overhead per task",
    "ablation-prob": "Ablation: probabilistic vs deterministic",
    "ablation-mc": "Ablation: Monte Carlo iterations",
    "ablation-astar": "Ablation: A* pruning",
    "ablation-seeds": "Ablation: warm-start seeds",
}


def _experiment_driver(name: str):
    """Resolve an experiment id to its driver (imports the harness)."""
    from repro import bench

    def run_fig06(config):
        return [bench.fig06_network_dynamics(config)]

    def run_fig10(config):
        out = bench.fig10_follow_the_cost(config)
        return out["by_size"] + out["by_threshold"]

    drivers = {
        "fig01": bench.fig01_instance_configs,
        "fig02": bench.fig02_runtime_variance,
        "table2": bench.table2_io_distributions,
        "fig06": run_fig06,
        "fig07": bench.fig07_network_histograms,
        "fig08": bench.fig08_probabilistic_deadline_sweep,
        "fig09": bench.fig09_ensemble_scores,
        "fig10": run_fig10,
        "fig11": bench.fig11_deadline_sensitivity,
        "speedup": bench.solver_speedup,
        "overhead": bench.optimization_overhead,
        "ablation-prob": bench.ablation_probabilistic_vs_deterministic,
        "ablation-mc": bench.ablation_mc_iterations,
        "ablation-astar": bench.ablation_astar_pruning,
        "ablation-seeds": bench.ablation_search_seeds,
    }
    return drivers[name]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deco reproduction: experiments and one-off optimizations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    workers_help = (
        "worker processes for parallel fan-out "
        "(default: REPRO_WORKERS, serial when unset)"
    )

    run = sub.add_parser("run", help="regenerate a paper table/figure")
    run.add_argument("experiment", help="experiment id (see 'repro list') or 'all'")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--samples", type=int, default=100, help="Monte Carlo samples per state")
    run.add_argument("--evals", type=int, default=800, help="search evaluation budget")
    run.add_argument("--runs", type=int, default=8, help="simulated runs per plan")
    run.add_argument("--workers", default=None, metavar="N", help=workers_help)

    sched = sub.add_parser("schedule", help="optimize one workflow with Deco")
    sched.add_argument("--app", choices=("montage", "ligo", "epigenomics", "cybershake"),
                       default="montage")
    sched.add_argument("--dax", default=None, metavar="PATH",
                       help="schedule a DAX workflow file instead of a generated --app")
    sched.add_argument("--degrees", type=float, default=1.0, help="montage mosaic size")
    sched.add_argument("--tasks", type=int, default=100, help="task count for non-montage apps")
    sched.add_argument("--deadline", default="medium",
                       help="tight|medium|loose or seconds")
    sched.add_argument("--percentile", type=float, default=96.0)
    sched.add_argument("--seed", type=int, default=7)
    sched.add_argument("--samples", type=int, default=150)
    sched.add_argument("--evals", type=int, default=1500)
    sched.add_argument("--no-incremental", action="store_true",
                       help="disable the incremental evaluation engine (delta "
                            "propagation + fidelity screening); slower, plans "
                            "are identical either way")
    sched.add_argument("--backend", default="gpu", metavar="NAME",
                       help="evaluation backend: gpu (vectorized Monte Carlo, "
                            "default), cpu (scalar reference), or analytic "
                            "(moment propagation, no sampling)")
    sched.add_argument("--no-analytic-screen", action="store_true",
                       help="disable tier 0 of the screening cascade (analytic "
                            "classification); slower on large workflows, plans "
                            "are identical either way")
    sched.add_argument("--no-arena", action="store_true",
                       help="disable the shared-memory tensor plane for the "
                            "distributed solve (workers > 1): broadcast pickled "
                            "prologues instead of zero-copy segment keys; plans "
                            "are identical either way")
    sched.add_argument("--no-adaptive-sharding", action="store_true",
                       help="disable cost-model weighted shard partitioning and "
                            "work stealing (workers > 1): chunk candidate "
                            "batches evenly; plans are identical either way")
    sched.add_argument("--no-dominance-mask", action="store_true",
                       help="disable the dominance analysis (futile-promote "
                            "settling); plans are identical either way")
    sched.add_argument("--solve-deadline", type=float, default=None, metavar="SECONDS",
                       help="wall-clock watchdog for the solve: return the best "
                            "incumbent (timed_out flagged) instead of running the "
                            "evaluation budget dry")
    sched.add_argument("--execute", action="store_true",
                       help="also execute the plan on the simulator")
    sched.add_argument("--workers", default=None, metavar="N", help=workers_help)
    sched.add_argument("--faults", action="store_true",
                       help="solve and execute under the declared fault model")
    sched.add_argument("--failure-rate", type=float, default=0.05, metavar="F",
                       help="per-attempt task failure probability (with --faults)")
    sched.add_argument("--mtbf", type=float, default=None, metavar="SECONDS",
                       help="instance mean time between crashes (with --faults)")
    sched.add_argument("--on-abort", default="record", metavar="MODE",
                       help="raise|skip|record for aborted --execute runs")

    serve = sub.add_parser("serve", help="run the Deco job service (HTTP JSON API)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--journal", default="deco-jobs.jsonl", metavar="PATH",
                       help="write-ahead job journal (replayed on startup)")
    serve.add_argument("--workers", default=None, metavar="N",
                       help="warm solver worker processes (default: 2)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--samples", type=int, default=150,
                       help="Monte Carlo samples per state (worker engines)")
    serve.add_argument("--evals", type=int, default=1500,
                       help="search evaluation budget (worker engines)")
    serve.add_argument("--degrade-depth", type=int, default=8, metavar="N",
                       help="queue depth at which new jobs are load-shed to "
                            "the analytic backend")
    serve.add_argument("--reject-depth", type=int, default=16, metavar="N",
                       help="queue depth at which new jobs are refused (429)")
    serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="crash retries per job before dead-lettering")
    serve.add_argument("--hang-after", type=float, default=600.0, metavar="SECONDS",
                       help="kill and retry a job running longer than this")

    submit = sub.add_parser("submit", help="submit a solve job to a running service")
    submit.add_argument("--url", default="http://127.0.0.1:8642",
                        help="service base URL (see 'repro serve')")
    submit.add_argument("--app", choices=("montage", "ligo", "epigenomics", "cybershake"),
                        default="montage")
    submit.add_argument("--dax", default=None, metavar="PATH",
                        help="submit a DAX workflow file instead of a generated --app")
    submit.add_argument("--degrees", type=float, default=1.0, help="montage mosaic size")
    submit.add_argument("--tasks", type=int, default=100,
                        help="task count for non-montage apps")
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument("--deadline", default="medium",
                        help="tight|medium|loose or seconds")
    submit.add_argument("--percentile", type=float, default=96.0)
    submit.add_argument("--backend", default="gpu", metavar="NAME",
                        help="requested evaluation backend (gpu|cpu|analytic); "
                             "the service may downgrade to analytic under load")
    submit.add_argument("--wlog", default=None, metavar="PATH",
                        help="WLog program file to solve against the workflow")
    submit.add_argument("--solve-deadline", type=float, default=None, metavar="SECONDS",
                        help="wall-clock solve watchdog for this job")
    submit.add_argument("--priority", choices=("interactive", "standard", "batch"),
                        default="standard")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job is terminal and print the result")
    submit.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                        help="how long --wait polls before giving up")

    bench = sub.add_parser("bench", help="emit machine-readable benchmark JSON")
    bench.add_argument("target", choices=("parallel", "solver", "faults", "service"),
                       help="which benchmark to run")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="output path (default: BENCH_<target>.json)")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--samples", type=int, default=150)
    bench.add_argument("--evals", type=int, default=1500)
    bench.add_argument("--runs", type=int, default=100,
                       help="replications for the run_many site (parallel/faults bench)")
    bench.add_argument("--degrees", type=float, default=4.0,
                       help="montage scale (parallel/faults bench)")
    bench.add_argument("--workers", default=None, metavar="N",
                       help="worker count to compare against serial "
                            "(default: min(4, host CPUs))")
    bench.add_argument("--failure-rate", type=float, default=0.12, metavar="F",
                       help="injected task failure probability (faults bench)")
    bench.add_argument("--mtbf", type=float, default=None, metavar="SECONDS",
                       help="injected instance MTBF (faults bench; default: no crashes)")
    bench.add_argument("--no-incremental", action="store_true",
                       help="skip the incremental-engine section of the solver "
                            "bench (and its on/off plan-identity gate)")
    bench.add_argument("--backend", default="gpu", metavar="NAME",
                       help="evaluation backend for the solver bench's search "
                            "sections (gpu|cpu|analytic; default gpu)")
    bench.add_argument("--no-analytic-screen", action="store_true",
                       help="skip the analytic-cascade section of the solver "
                            "bench (and its on/off plan-identity + error-bound "
                            "gates)")
    bench.add_argument("--no-dominance-mask", action="store_true",
                       help="skip the dominance-mask section of the solver "
                            "bench (and its on/off plan-identity gate)")
    bench.add_argument("--no-arena", action="store_true",
                       help="skip the shared-memory arena section of the solver "
                            "bench (and its plan-identity + broadcast-bytes "
                            "reduction gates)")
    bench.add_argument("--no-adaptive-sharding", action="store_true",
                       help="skip the adaptive-sharding section of the solver "
                            "bench (and its on/off plan-identity gate)")
    bench.add_argument("--repeat", type=int, default=2, metavar="N",
                       help="timing repetitions for the distributed solver "
                            "bench: solve_s is the median of N with min/max "
                            "spread recorded (default 2)")
    bench.add_argument("--jobs", type=int, default=8,
                       help="batch size for the service bench's latency/cache "
                            "sections")

    lint = sub.add_parser("lint", help="statically analyze WLog program files")
    analyze = sub.add_parser(
        "analyze",
        help="lint + semantic passes (feasibility proofs, dead rules)",
    )
    for cmd in (lint, analyze):
        cmd.add_argument("files", nargs="*", metavar="FILE",
                         help="WLog program files ('-' for stdin)")
        cmd.add_argument("--bundled", action="store_true",
                         help="check the bundled library templates instead of files")
        cmd.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                         help="diagnostic output format")
        cmd.add_argument("--strict", action="store_true",
                         help="treat warnings as errors for the exit code")
        cmd.add_argument("--assume", action="append", default=[], metavar="PRED/ARITY",
                         help="declare an externally-supplied fact family "
                              "(repeatable, e.g. --assume wscore/2)")
    lint.add_argument("--explain", action="store_true",
                      help="print the check catalog (docs/checks.md source) and exit")

    sub.add_parser("calibrate", help="run the calibration campaign (Table 2)")
    return parser


def _usage_error(out, message: str) -> int:
    print(f"error: {message}", file=out)
    return 2


def _workers_arg(args) -> int | None:
    """Validate ``--workers`` / ``REPRO_WORKERS``; ``None`` = not requested.

    Raises :class:`ValidationError` (one-line error, exit code 2 via the
    main handler) on non-positive or non-integer values.
    """
    raw = getattr(args, "workers", None)
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            raise ValidationError(
                f"--workers must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ValidationError(f"--workers must be a positive integer, got {value}")
        return value
    if os.environ.get("REPRO_WORKERS", "").strip():
        from repro.parallel import workers_from_env

        return workers_from_env()
    return None


def _fault_args(args):
    """Validate ``--failure-rate`` / ``--mtbf``; returns ``(rate, mtbf)``.

    Raises :class:`ValidationError` (one-line error, exit code 2 via the
    main handler) on out-of-range values, mirroring ``--workers``.
    """
    rate = args.failure_rate
    if not 0.0 <= rate < 1.0:
        raise ValidationError(f"--failure-rate must be in [0, 1), got {rate:g}")
    mtbf = float("inf") if args.mtbf is None else float(args.mtbf)
    if not mtbf > 0:
        raise ValidationError(f"--mtbf must be > 0 seconds, got {args.mtbf:g}")
    return rate, mtbf


def _config(args):
    from repro.bench import BenchConfig

    kwargs = dict(
        seed=args.seed,
        num_samples=args.samples,
        max_evaluations=args.evals,
        runs_per_plan=getattr(args, "runs", 8),
    )
    workers = _workers_arg(args)
    if workers is not None:
        kwargs["workers"] = workers
    return BenchConfig(**kwargs)


def _cmd_list(out) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, title in EXPERIMENTS.items():
        print(f"  {key.ljust(width)}  {title}", file=out)
    return 0


def _cmd_run(args, out) -> int:
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        return _usage_error(
            out,
            f"unknown experiment {args.experiment!r}; "
            f"run 'repro list' to see the available ids",
        )
    from repro.bench import format_table

    config = _config(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        rows = _experiment_driver(name)(config)
        print(format_table(rows, EXPERIMENTS[name]), file=out)
        print(file=out)
    return 0


def _cmd_schedule(args, out) -> int:
    from repro.cloud import CloudSimulator, ec2_catalog
    from repro.common.rng import RngService
    from repro.engine import Deco
    from repro.workflow import generators, parse_dax

    from repro.solver import BACKEND_NAMES

    if not 0 < args.percentile <= 100:
        return _usage_error(out, f"--percentile must be in (0, 100], got {args.percentile:g}")
    if args.on_abort not in ("raise", "skip", "record"):
        return _usage_error(
            out, f"--on-abort must be raise|skip|record, got {args.on_abort!r}"
        )
    if args.backend not in BACKEND_NAMES:
        return _usage_error(
            out,
            f"--backend must be one of {'|'.join(BACKEND_NAMES)}, got {args.backend!r}",
        )
    if args.solve_deadline is not None and not args.solve_deadline > 0:
        return _usage_error(
            out, f"--solve-deadline must be > 0 seconds, got {args.solve_deadline:g}"
        )
    workers = _workers_arg(args)
    faults = recovery = None
    if args.faults:
        from repro.faults import FaultModel, RecoveryPolicy

        rate, mtbf = _fault_args(args)
        faults = FaultModel(task_failure_rate=rate, instance_mtbf=mtbf)
        recovery = RecoveryPolicy()

    catalog = ec2_catalog()
    if args.dax is not None:
        path = Path(args.dax)
        if not path.is_file():
            return _usage_error(out, f"DAX file not found: {path}")
        try:
            workflow = parse_dax(path)
        except (DecoError, OSError, ValueError) as exc:
            return _usage_error(out, f"cannot parse DAX file {path}: {exc}")
    elif args.app == "montage":
        workflow = generators.montage(degrees=args.degrees, seed=args.seed)
    else:
        workflow = getattr(generators, args.app)(num_tasks=args.tasks, seed=args.seed)

    deco = Deco(catalog, seed=args.seed, num_samples=args.samples,
                max_evaluations=args.evals,
                backend=args.backend,
                incremental=not args.no_incremental,
                analytic_screen=not args.no_analytic_screen,
                dominance_mask=not args.no_dominance_mask,
                workers=workers,
                solve_deadline_s=args.solve_deadline,
                arena=not args.no_arena,
                adaptive_sharding=not args.no_adaptive_sharding)
    try:
        deadline: float | str = float(args.deadline)
    except ValueError:
        deadline = args.deadline
        if deadline not in ("tight", "medium", "loose"):
            return _usage_error(
                out, f"--deadline must be tight|medium|loose or seconds, got {deadline!r}"
            )
    try:
        plan = deco.schedule(
            workflow,
            deadline,
            deadline_percentile=args.percentile,
            faults=faults,
            recovery=recovery,
        )
    finally:
        deco.close()

    print(f"workflow:        {workflow.name} ({len(workflow)} tasks)", file=out)
    print(f"backend:         {deco.backend.name}", file=out)
    if deco.workers > 1:
        result = deco.last_result
        print(f"workers:         {deco.workers} beam shards "
              f"({result.speculated} speculative expansions, "
              f"{result.speculation_hits} consumed)", file=out)
    if faults is not None:
        print(f"fault model:     {faults.describe()}", file=out)
    print(f"deadline:        {plan.deadline:.0f} s @ {plan.deadline_percentile:.1f}%", file=out)
    if plan.timed_out:
        print(f"timed out:       best incumbent at the {args.solve_deadline:g} s "
              "solve watchdog (not converged)", file=out)
    print(f"feasible:        {plan.feasible}", file=out)
    print(f"P(mk <= D):      {plan.probability:.3f}", file=out)
    print(f"expected cost:   ${plan.expected_cost:.4f}", file=out)
    print(f"instance mix:    {plan.type_counts()}", file=out)
    print(f"solve time:      {plan.solve_seconds * 1000:.0f} ms "
          f"({plan.overhead_ms_per_task():.2f} ms/task, "
          f"{plan.evaluations} evaluations)", file=out)

    if args.execute:
        sim = CloudSimulator(catalog, RngService(args.seed + 1), deco.runtime_model)
        results = sim.run_many(
            workflow,
            dict(plan.assignment),
            10,
            faults=faults,
            recovery=recovery,
            on_abort=args.on_abort,
            workers=workers,
        )
        summary = sim.summarize(results)
        aborted = int(summary.get("num_aborted", 0))
        note = f", {aborted} aborted" if aborted else ""
        print(f"measured (10 runs): ${summary['mean_cost']:.2f}, "
              f"{summary['mean_makespan']:.0f} s mean makespan{note}", file=out)
    return 0 if plan.feasible else 1


def _parse_assumes(specs: list[str], out) -> set[tuple[str, int]] | int:
    assumes: set[tuple[str, int]] = set()
    for spec in specs:
        name, sep, arity = spec.partition("/")
        if not sep or not name or not arity.isdigit():
            return _usage_error(out, f"--assume expects PRED/ARITY, got {spec!r}")
        assumes.add((name, int(arity)))
    return assumes


def _collect_targets(args, out, verb: str):
    """``(filename, source, extra_assumes)`` triples for lint/analyze.

    Returns the list, or an ``int`` exit code on a usage error.
    """
    from repro.wlog.library import bundled_programs

    assumes = _parse_assumes(args.assume, out)
    if isinstance(assumes, int):
        return assumes

    targets: list[tuple[str, str, set[tuple[str, int]]]] = []
    if args.bundled:
        for name, (source, extra) in bundled_programs().items():
            targets.append((f"<bundled:{name}>", source, set(extra) | assumes))
    if args.files and args.bundled:
        return _usage_error(out, "pass either FILE arguments or --bundled, not both")
    if not args.files and not args.bundled:
        return _usage_error(out, f"nothing to {verb}: pass WLog files or --bundled")
    for file in args.files:
        if file == "-":
            targets.append(("<stdin>", sys.stdin.read(), set(assumes)))
            continue
        path = Path(file)
        if not path.is_file():
            return _usage_error(out, f"no such file: {path}")
        try:
            targets.append((str(path), path.read_text(), set(assumes)))
        except (OSError, UnicodeDecodeError) as exc:
            return _usage_error(out, f"cannot read {path}: {exc}")
    return targets


def _emit_findings(args, out, targets, findings) -> int:
    """Render ``(filename, diagnostic)`` findings in the chosen format.

    ``lint`` and ``analyze`` share this emitter, so text, JSON, and
    SARIF output are shaped identically for both commands.  Returns the
    exit code (1 when any finding is fatal under ``--strict`` rules).
    """
    from repro.analysis.sarif import to_sarif
    from repro.wlog.diagnostics import render_diagnostic

    sources = {filename: source for filename, source, _ in targets}
    total_errors = sum(
        1 for _, diag in findings if diag.is_error or args.strict
    )
    total_warnings = len(findings) - total_errors
    if args.format == "sarif":
        print(json.dumps(to_sarif(findings), indent=2), file=out)
    elif args.format == "json":
        print(
            json.dumps(
                [{"file": f, **diag.to_dict()} for f, diag in findings], indent=2
            ),
            file=out,
        )
    else:
        for filename, diag in findings:
            print(render_diagnostic(diag, sources.get(filename), filename), file=out)
        checked = len(targets)
        noun = "program" if checked == 1 else "programs"
        print(
            f"{checked} {noun} checked: {total_errors} error(s), "
            f"{total_warnings} warning(s)",
            file=out,
        )
    return 1 if total_errors else 0


def _syntactic_findings(filename: str, source: str, extra):
    """The linter's diagnostics for one program, syntax errors included."""
    from repro.common.errors import WLogError, WLogSyntaxError
    from repro.wlog.analysis import analyze_program
    from repro.wlog.diagnostics import Diagnostic, Span

    try:
        return list(analyze_program(source, extra_predicates=extra))
    except WLogSyntaxError as exc:
        span = Span(exc.line, exc.column) if exc.line else None
        return [Diagnostic("E101", "error", exc.base_message, span=span)]
    except WLogError as exc:
        return [Diagnostic("E101", "error", str(exc))]


def _cmd_lint(args, out) -> int:
    if args.explain:
        from repro.wlog.diagnostics import checks_markdown

        print(checks_markdown(), file=out, end="")
        return 0
    targets = _collect_targets(args, out, "lint")
    if isinstance(targets, int):
        return targets
    findings = [
        (filename, diag)
        for filename, source, extra in targets
        for diag in _syntactic_findings(filename, source, extra)
    ]
    return _emit_findings(args, out, targets, findings)


def _default_analyze_registry():
    """The import registry ``repro analyze`` binds program imports against.

    Mirrors what the bundled templates import: the EC2 catalog as
    ``amazonec2`` plus the four workflow generators at their default
    sizes.  Programs importing other names still get the full
    syntactic analysis; the semantic passes simply skip what they
    cannot resolve.
    """
    from repro.cloud import ec2_catalog
    from repro.wlog.imports import ImportRegistry
    from repro.workflow import generators

    registry = ImportRegistry()
    registry.register_cloud("amazonec2", ec2_catalog())
    registry.register_workflow("montage", generators.montage(degrees=1.0))
    registry.register_workflow("ligo", generators.ligo(num_tasks=100))
    registry.register_workflow("epigenomics", generators.epigenomics(num_tasks=100))
    registry.register_workflow("cybershake", generators.cybershake(num_tasks=100))
    return registry


def _cmd_analyze(args, out) -> int:
    from repro.analysis import analyze_semantics

    targets = _collect_targets(args, out, "analyze")
    if isinstance(targets, int):
        return targets
    registry = _default_analyze_registry()
    findings = []
    for filename, source, extra in targets:
        diagnostics = _syntactic_findings(filename, source, extra)
        # Semantic passes need a parseable program; on syntax errors the
        # E101 above is the whole story.
        if not any(d.check == "E101" for d in diagnostics):
            report = analyze_semantics(source, registry=registry, filename=filename)
            diagnostics.extend(report.diagnostics)
        findings.extend(
            (filename, diag)
            for diag in sorted(diagnostics, key=lambda d: d.sort_key())
        )
    return _emit_findings(args, out, targets, findings)


def _cmd_bench(args, out) -> int:
    if args.runs < 1:
        return _usage_error(out, f"--runs must be >= 1, got {args.runs}")
    workers = _workers_arg(args)
    from repro.bench import BenchConfig, format_table

    # --runs sizes the run_many replication site, not the per-plan
    # repetition count of the driver site -- keep the harness default.
    config = BenchConfig(
        seed=args.seed, num_samples=args.samples, max_evaluations=args.evals
    )
    if args.target == "parallel":
        from repro.bench.parallel import bench_parallel, write_bench_parallel_json

        rows = bench_parallel(config, workers=workers, runs=args.runs, degrees=args.degrees)
        path = Path(args.out or "BENCH_parallel.json")
        payload = write_bench_parallel_json(path, rows=rows)
        print(format_table(rows, "Parallel runtime: serial vs multi-worker"), file=out)
        print(
            f"\nwrote {path} (workers={payload['workers']}, "
            f"cpus={payload['host_cpu_count']}, "
            f"run_many speedup={payload['speedup']:.2f}x, "
            f"identical={payload['identical']})",
            file=out,
        )
        return 0 if payload["identical"] else 1
    if args.target == "service":
        from repro.bench.service import write_bench_service_json

        path = Path(args.out or "BENCH_service.json")
        payload = write_bench_service_json(
            path, config, jobs=args.jobs, workers=(workers or 2)
        )
        lat = payload["latency"]
        print(
            f"service bench: {payload['jobs']} jobs on {payload['workers']} workers\n"
            f"  latency p50={lat['p50_s']:.3f}s p99={lat['p99_s']:.3f}s "
            f"throughput={lat['throughput_jobs_per_s']:.2f} jobs/s\n"
            f"  cache hit rate={payload['cache']['hit_rate']:.2f} "
            f"degraded={payload['degradation']['degraded_jobs']}/"
            f"{payload['degradation']['burst']}\n"
            f"  recovery after SIGKILL={payload['recovery']['recovery_s']:.3f}s "
            f"(state={payload['recovery']['terminal_state']})",
            file=out,
        )
        print(f"\nwrote {path} (ok={payload['ok']})", file=out)
        return 0 if payload["ok"] else 1
    if args.target == "faults":
        from repro.bench.faults import bench_faults, write_bench_faults_json

        rate, mtbf = _fault_args(args)
        rows = bench_faults(
            config,
            workers=workers,
            runs=args.runs,
            degrees=args.degrees,
            failure_rate=rate,
            mtbf=mtbf,
        )
        path = Path(args.out or "BENCH_faults.json")
        payload = write_bench_faults_json(path, rows=rows)
        print(format_table(rows, "Fault ablation: oblivious vs fault-aware"), file=out)
        print(
            f"\nwrote {path} (P(deadline) oblivious="
            f"{payload['p_deadline_oblivious']:.2f} vs aware="
            f"{payload['p_deadline_aware']:.2f}, "
            f"identical={payload['identical']})",
            file=out,
        )
        return 0 if payload["identical"] else 1
    if args.repeat < 1:
        return _usage_error(out, f"--repeat must be >= 1, got {args.repeat}")
    from repro.bench import (
        analytic_accuracy,
        analytic_speedup,
        cascade_search,
        distributed_search,
        dominance_search,
        incremental_search,
        incremental_speedup,
        write_bench_solver_json,
    )
    from repro.bench.perf import (
        ANALYTIC_PROB_ERROR_BOUND,
        adaptive_sharding_bench,
        arena_bench,
    )
    from repro.solver import BACKEND_NAMES

    if args.backend not in BACKEND_NAMES:
        return _usage_error(
            out,
            f"--backend must be one of {'|'.join(BACKEND_NAMES)}, got {args.backend!r}",
        )
    path = Path(args.out or "BENCH_solver.json")
    skipped = []
    # The per-state kernel comparison runs FIRST, on a cold heap: a real
    # solve compiles its tensors into fresh memory, and the MC gather
    # kernel measures ~2x faster when its arrays land in pages recycled
    # from earlier bench sections -- a regime no single solve ever sees.
    # (The analytic kernel's pooled working set is cache-sized either
    # way, so ordering only affects the MC baseline's honesty.)
    if args.no_analytic_screen:
        an_rows: list[dict] = []
        acc_rows: list[dict] = []
        cascade_rows: list[dict] = []
        skipped.append("analytic")
    else:
        an_rows = analytic_speedup(config)
    if args.no_incremental:
        inc_rows: list[dict] = []
        search_rows: list[dict] = []
        skipped.append("incremental")
    else:
        inc_rows = incremental_speedup(config)
        search_rows = incremental_search(config, backend=args.backend)
    if not args.no_analytic_screen:
        acc_rows = analytic_accuracy(config)
        cascade_rows = cascade_search(config, backend=args.backend)
    if args.no_dominance_mask:
        dominance_rows: list[dict] = []
        skipped.append("dominance")
    else:
        dominance_rows = dominance_search(config, backend=args.backend)
    # Distributed beam solve: an explicit --workers N measures the
    # (1, N) pair -- how CI pins its quick profile -- while the default
    # sweeps the standard widths.
    if workers is not None:
        counts = (1,) if workers == 1 else (1, workers)
    else:
        counts = (1, 2, 4)
    distributed_rows = distributed_search(
        config, worker_counts=counts, repeats=args.repeat
    )
    # Arena + adaptive sharding run at the sharded width CI pins (or 2):
    # both compare a multi-worker engine against itself with the
    # optimization off, so a width of 1 would measure nothing.
    shard_width = workers if workers and workers > 1 else 2
    if args.no_arena:
        arena_rows: list[dict] = []
        skipped.append("arena")
    else:
        arena_rows = arena_bench(config, workers=shard_width)
    if args.no_adaptive_sharding:
        adaptive_rows: list[dict] = []
        skipped.append("adaptive-sharding")
    else:
        adaptive_rows = adaptive_sharding_bench(config, workers=shard_width)
    payload = write_bench_solver_json(
        path,
        config,
        incremental_rows=inc_rows,
        incremental_search_rows=search_rows,
        analytic_rows=an_rows,
        analytic_accuracy_rows=acc_rows,
        cascade_rows=cascade_rows,
        dominance_rows=dominance_rows,
        distributed_rows=distributed_rows,
        arena_rows=arena_rows,
        adaptive_rows=adaptive_rows,
    )
    print(format_table(payload["solver_speedup"], "Solver speedup"), file=out)
    if inc_rows:
        print(
            format_table(inc_rows, "Incremental evaluation: delta vs full kernel"),
            file=out,
        )
        print(
            format_table(search_rows, "Incremental search: engine on vs off"),
            file=out,
        )
    if an_rows:
        print(
            format_table(an_rows, "Analytic evaluation: moments vs MC delta kernel"),
            file=out,
        )
        print(format_table(acc_rows, "Analytic accuracy vs full Monte Carlo"), file=out)
        print(format_table(cascade_rows, "Screening cascade: tier 0 on vs off"), file=out)
    if dominance_rows:
        print(format_table(dominance_rows, "Dominance mask: on vs off"), file=out)
    print(
        format_table(distributed_rows, "Distributed beam solve: per worker count"),
        file=out,
    )
    if arena_rows:
        print(
            format_table(arena_rows, "Shared-memory arena: zero-copy vs pickled"),
            file=out,
        )
    if adaptive_rows:
        print(
            format_table(adaptive_rows, "Adaptive sharding: cost model vs even"),
            file=out,
        )
    # Neither optimization may ever change a decision: fail the bench
    # (exit 1) on any plan/sample divergence, or on an analytic error
    # above the documented bound.
    identical = all(
        r["identical"]
        for r in inc_rows + search_rows + cascade_rows + dominance_rows
        + distributed_rows + arena_rows + adaptive_rows
    )
    max_err = max((r["max_abs_prob_error"] for r in acc_rows), default=0.0)
    within_bound = max_err <= ANALYTIC_PROB_ERROR_BOUND
    # The arena's headline claim: where shared memory works, the
    # begin-solve broadcast must shrink >= 10x vs the pickled prologue.
    # Fallback environments (arena_used=False) measured pickling against
    # itself, so the gate is waived there (the JSON still records it).
    arena_gate = all(
        r["broadcast_reduction_x"] >= 10.0
        for r in arena_rows
        if r["arena_used"]
    )
    note = f" ({', '.join(skipped)} section skipped)" if skipped else ""
    print(
        f"\nwrote {path} (identical={identical}, "
        f"max analytic prob error={max_err:.3f} "
        f"<= bound {ANALYTIC_PROB_ERROR_BOUND:g}: {within_bound}, "
        f"arena broadcast gate={arena_gate}){note}",
        file=out,
    )
    return 0 if identical and within_bound and arena_gate else 1


def _cmd_serve(args, out) -> int:
    workers = _workers_arg(args)
    for name, value in (("--degrade-depth", args.degrade_depth),
                        ("--reject-depth", args.reject_depth),
                        ("--max-attempts", args.max_attempts)):
        if value < 1:
            return _usage_error(out, f"{name} must be >= 1, got {value}")
    if args.hang_after <= 0:
        return _usage_error(out, f"--hang-after must be > 0, got {args.hang_after}")
    from repro.service import DecoService, ServiceConfig
    from repro.service.http import ServiceServer

    config = ServiceConfig(
        journal_path=args.journal,
        workers=workers or 2,
        degrade_depth=args.degrade_depth,
        reject_depth=args.reject_depth,
        max_attempts=args.max_attempts,
        hang_after_s=args.hang_after,
        engine={
            "seed": args.seed,
            "num_samples": args.samples,
            "max_evaluations": args.evals,
        },
    )
    service = DecoService(config)
    recovered = service.queue.recovered_inflight
    server = ServiceServer(service, host=args.host, port=args.port)
    print(f"deco service listening on {server.url}", file=out)
    print(f"journal: {args.journal} "
          f"({len(service.queue.jobs())} jobs replayed, "
          f"{recovered} in-flight re-queued)", file=out)
    out.flush()
    server.serve_forever()
    return 0


def _cmd_submit(args, out) -> int:
    if args.backend not in ("gpu", "cpu", "analytic"):
        return _usage_error(
            out, f"--backend must be gpu|cpu|analytic, got {args.backend!r}"
        )
    if args.solve_deadline is not None and args.solve_deadline <= 0:
        return _usage_error(
            out, f"--solve-deadline must be > 0 seconds, got {args.solve_deadline:g}"
        )
    from repro.service.http import ServiceClient

    if args.dax:
        workflow: dict = {"dax": args.dax}
    elif args.app == "montage":
        workflow = {"app": "montage", "degrees": args.degrees, "seed": args.seed}
    else:
        workflow = {"app": args.app, "tasks": args.tasks, "seed": args.seed}
    payload: dict = {
        "workflow": workflow,
        "deadline": _parse_deadline_arg(args.deadline),
        "percentile": args.percentile,
        "backend": args.backend,
    }
    if args.solve_deadline is not None:
        payload["solve_deadline_s"] = args.solve_deadline
    if args.wlog:
        path = Path(args.wlog)
        if not path.exists():
            return _usage_error(out, f"WLog program not found: {args.wlog}")
        payload["wlog"] = path.read_text()
    client = ServiceClient(args.url)
    try:
        code, doc = client.submit(payload, tenant=args.tenant, priority=args.priority)
    except OSError as exc:
        print(f"error: cannot reach service at {args.url}: {exc}", file=out)
        return 2
    if code == 429:
        print(f"rejected: {doc.get('error')} "
              f"(retry after {doc.get('retry_after_s')}s)", file=out)
        return 1
    if code not in (200, 202):
        print(f"error: service returned {code}: {doc.get('error')}", file=out)
        return 2
    job_id = doc["job_id"]
    print(f"job accepted: {job_id}", file=out)
    if not args.wait:
        print(f"poll with: GET {args.url}/v1/jobs/{job_id}", file=out)
        return 0
    try:
        status = client.wait(job_id, timeout_s=args.timeout)
    except TimeoutError as exc:
        print(f"error: {exc}", file=out)
        return 1
    state = status["state"]
    print(f"state: {state}", file=out)
    if status.get("degraded"):
        print(f"degraded: {status.get('degrade_reason')} "
              "(best-effort result, see probability_error_bound)", file=out)
    if status.get("cache_hit"):
        print("served from plan cache", file=out)
    result = status.get("result") or {}
    plan = result.get("plan") or {}
    if plan:
        print(f"expected cost: ${plan['expected_cost']:.4f}  "
              f"P(deadline): {plan['probability']:.3f}  "
              f"feasible: {plan['feasible']}", file=out)
    if state == "dead_lettered":
        err = status.get("error") or {}
        print(f"dead-lettered after {err.get('attempts')} attempt(s): "
              f"{err.get('type')}: {err.get('message')}", file=out)
        return 1
    return 0


def _parse_deadline_arg(value: str):
    """``tight|medium|loose`` stay strings; anything else must be seconds."""
    if value in ("tight", "medium", "loose"):
        return value
    try:
        return float(value)
    except ValueError:
        return value  # let server-side validation produce the message


def _cmd_calibrate(out) -> int:
    from repro.bench import BenchConfig, format_table, table2_io_distributions

    config = BenchConfig()
    print(format_table(table2_io_distributions(config),
                       "Table 2: I/O performance distributions"), file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "schedule":
            return _cmd_schedule(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "submit":
            return _cmd_submit(args, out)
        if args.command == "bench":
            return _cmd_bench(args, out)
        if args.command == "lint":
            return _cmd_lint(args, out)
        if args.command == "analyze":
            return _cmd_analyze(args, out)
        if args.command == "calibrate":
            return _cmd_calibrate(out)
    except DecoError as exc:
        first_line = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
        print(f"error: {first_line}", file=out)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
