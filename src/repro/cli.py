"""Command-line interface: run experiments and one-off optimizations.

Usage::

    python -m repro list
    python -m repro run fig01 [--seed 7] [--samples 100] [--evals 800]
    python -m repro run all
    python -m repro schedule --app montage --degrees 1 --deadline medium \
        --percentile 96
    python -m repro calibrate

``run`` regenerates a paper table/figure through the same drivers the
benchmark harness uses and prints the table; ``schedule`` runs one
Deco optimization and prints the plan; ``calibrate`` reproduces Table 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.bench import (
    BenchConfig,
    ablation_astar_pruning,
    ablation_mc_iterations,
    ablation_probabilistic_vs_deterministic,
    ablation_search_seeds,
    fig01_instance_configs,
    fig02_runtime_variance,
    fig06_network_dynamics,
    fig07_network_histograms,
    fig08_probabilistic_deadline_sweep,
    fig09_ensemble_scores,
    fig10_follow_the_cost,
    fig11_deadline_sensitivity,
    format_table,
    optimization_overhead,
    solver_speedup,
    table2_io_distributions,
)

__all__ = ["main", "EXPERIMENTS"]


def _run_fig06(config: BenchConfig) -> list[dict]:
    return [fig06_network_dynamics(config)]


def _run_fig10(config: BenchConfig) -> list[dict]:
    out = fig10_follow_the_cost(config)
    return out["by_size"] + out["by_threshold"]


#: Experiment id -> (driver, title).  Ids mirror the paper's numbering.
EXPERIMENTS: dict[str, tuple[Callable[[BenchConfig], list[dict]], str]] = {
    "fig01": (fig01_instance_configs, "Figure 1: Montage cost per configuration"),
    "fig02": (fig02_runtime_variance, "Figure 2: normalized makespan quantiles"),
    "table2": (table2_io_distributions, "Table 2: I/O performance distributions"),
    "fig06": (_run_fig06, "Figure 6: m1.medium network dynamics"),
    "fig07": (fig07_network_histograms, "Figure 7: pairwise link histograms"),
    "fig08": (fig08_probabilistic_deadline_sweep, "Figure 8: probabilistic deadline sweep"),
    "fig09": (fig09_ensemble_scores, "Figure 9: ensemble scores (Deco vs SPSS)"),
    "fig10": (_run_fig10, "Figure 10: follow-the-cost"),
    "fig11": (fig11_deadline_sensitivity, "Figure 11: deadline sensitivity"),
    "speedup": (solver_speedup, "Solver speedup: vectorized vs scalar"),
    "overhead": (optimization_overhead, "Optimization overhead per task"),
    "ablation-prob": (
        ablation_probabilistic_vs_deterministic,
        "Ablation: probabilistic vs deterministic",
    ),
    "ablation-mc": (ablation_mc_iterations, "Ablation: Monte Carlo iterations"),
    "ablation-astar": (ablation_astar_pruning, "Ablation: A* pruning"),
    "ablation-seeds": (ablation_search_seeds, "Ablation: warm-start seeds"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deco reproduction: experiments and one-off optimizations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="regenerate a paper table/figure")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--samples", type=int, default=100, help="Monte Carlo samples per state")
    run.add_argument("--evals", type=int, default=800, help="search evaluation budget")
    run.add_argument("--runs", type=int, default=8, help="simulated runs per plan")

    sched = sub.add_parser("schedule", help="optimize one workflow with Deco")
    sched.add_argument("--app", choices=("montage", "ligo", "epigenomics", "cybershake"),
                       default="montage")
    sched.add_argument("--degrees", type=float, default=1.0, help="montage mosaic size")
    sched.add_argument("--tasks", type=int, default=100, help="task count for non-montage apps")
    sched.add_argument("--deadline", default="medium",
                       help="tight|medium|loose or seconds")
    sched.add_argument("--percentile", type=float, default=96.0)
    sched.add_argument("--seed", type=int, default=7)
    sched.add_argument("--samples", type=int, default=150)
    sched.add_argument("--evals", type=int, default=1500)
    sched.add_argument("--execute", action="store_true",
                       help="also execute the plan on the simulator")

    sub.add_parser("calibrate", help="run the calibration campaign (Table 2)")
    return parser


def _config(args) -> BenchConfig:
    return BenchConfig(
        seed=args.seed,
        num_samples=args.samples,
        max_evaluations=args.evals,
        runs_per_plan=getattr(args, "runs", 8),
    )


def _cmd_list(out) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, (_, title) in EXPERIMENTS.items():
        print(f"  {key.ljust(width)}  {title}", file=out)
    return 0


def _cmd_run(args, out) -> int:
    config = _config(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        driver, title = EXPERIMENTS[name]
        rows = driver(config)
        print(format_table(rows, title), file=out)
        print(file=out)
    return 0


def _cmd_schedule(args, out) -> int:
    from repro.cloud import CloudSimulator, ec2_catalog
    from repro.common.rng import RngService
    from repro.engine import Deco
    from repro.workflow import generators

    catalog = ec2_catalog()
    if args.app == "montage":
        workflow = generators.montage(degrees=args.degrees, seed=args.seed)
    else:
        workflow = getattr(generators, args.app)(num_tasks=args.tasks, seed=args.seed)

    deco = Deco(catalog, seed=args.seed, num_samples=args.samples,
                max_evaluations=args.evals)
    try:
        deadline: float | str = float(args.deadline)
    except ValueError:
        deadline = args.deadline
    plan = deco.schedule(workflow, deadline, deadline_percentile=args.percentile)

    print(f"workflow:        {workflow.name} ({len(workflow)} tasks)", file=out)
    print(f"deadline:        {plan.deadline:.0f} s @ {plan.deadline_percentile:.1f}%", file=out)
    print(f"feasible:        {plan.feasible}", file=out)
    print(f"P(mk <= D):      {plan.probability:.3f}", file=out)
    print(f"expected cost:   ${plan.expected_cost:.4f}", file=out)
    print(f"instance mix:    {plan.type_counts()}", file=out)
    print(f"solve time:      {plan.solve_seconds * 1000:.0f} ms "
          f"({plan.overhead_ms_per_task():.2f} ms/task, "
          f"{plan.evaluations} evaluations)", file=out)

    if args.execute:
        sim = CloudSimulator(catalog, RngService(args.seed + 1), deco.runtime_model)
        summary = sim.summarize(sim.run_many(workflow, dict(plan.assignment), 10))
        print(f"measured (10 runs): ${summary['mean_cost']:.2f}, "
              f"{summary['mean_makespan']:.0f} s mean makespan", file=out)
    return 0 if plan.feasible else 1


def _cmd_calibrate(out) -> int:
    config = BenchConfig()
    print(format_table(table2_io_distributions(config),
                       "Table 2: I/O performance distributions"), file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "schedule":
        return _cmd_schedule(args, out)
    if args.command == "calibrate":
        return _cmd_calibrate(out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
