"""The :class:`Distribution` protocol.

Everything downstream (cloud dynamics, runtime model, probabilistic IR)
talks to distributions through this minimal interface so parametric
families, empirical samples, and discretized histograms are
interchangeable.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Distribution"]


class Distribution(abc.ABC):
    """A one-dimensional probability distribution.

    Implementations must be immutable; sampling state lives in the
    caller-provided :class:`numpy.random.Generator` (see
    :mod:`repro.common.rng`), never in the distribution object.
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ``size`` i.i.d. samples (a float when ``size is None``)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """The expectation E[X]."""

    @abc.abstractmethod
    def std(self) -> float:
        """The standard deviation of X."""

    @abc.abstractmethod
    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, ``q`` in [0, 100]."""

    def variance(self) -> float:
        """Var[X]; default derives from :meth:`std`."""
        return self.std() ** 2

    def coefficient_of_variation(self) -> float:
        """std/mean -- the paper's headline measure of cloud dynamics."""
        m = self.mean()
        if m == 0:
            raise ZeroDivisionError("coefficient of variation of zero-mean distribution")
        return self.std() / abs(m)

    # Convenience -------------------------------------------------------

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Like :meth:`sample` but guaranteed to return an ndarray."""
        out = self.sample(rng, size)
        return np.asarray(out, dtype=float)
