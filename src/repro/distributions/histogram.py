"""Discretized distributions (histograms) and their arithmetic.

The paper stores calibrated performance distributions as histograms in
the metadata store; each histogram bin becomes one probabilistic fact of
the WLog intermediate representation (``p_j : exetime(Tid, Vid, T_j)``).
Propagating task-time histograms through a DAG needs two operations:

* ``a + b`` -- distribution of the *sum* of two independent quantities
  (sequential tasks on a path): a discrete convolution;
* ``Histogram.maximum(a, b)`` -- distribution of the *max* (joining
  branches): the product-of-CDFs rule.

Both are exact on the discretized support (up to re-binning), which is
what makes histogram propagation a useful analytic cross-check of the
Monte Carlo evaluator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.distributions.base import Distribution

__all__ = ["Histogram"]

_MERGE_TOL = 1e-9


class Histogram(Distribution):
    """A finite discrete distribution: support ``values`` with ``probs``.

    ``values`` are bin centers (strictly increasing); ``probs`` are
    non-negative and sum to 1.  This is the "histogram" of the paper --
    we keep bin centers rather than edges because the probabilistic IR
    instantiates one fact per (value, probability) pair.
    """

    __slots__ = ("_values", "_probs")

    def __init__(self, values: Sequence[float], probs: Sequence[float]):
        v = np.asarray(values, dtype=float).ravel()
        p = np.asarray(probs, dtype=float).ravel()
        if v.size == 0:
            raise ValidationError("histogram needs at least one bin")
        if v.size != p.size:
            raise ValidationError(f"values/probs length mismatch: {v.size} != {p.size}")
        if not np.all(np.isfinite(v)) or not np.all(np.isfinite(p)):
            raise ValidationError("histogram entries must be finite")
        if np.any(p < -_MERGE_TOL):
            raise ValidationError("probabilities must be non-negative")
        p = np.clip(p, 0.0, None)
        total = p.sum()
        if total <= 0:
            raise ValidationError("probabilities must not all be zero")
        p = p / total
        order = np.argsort(v, kind="stable")
        v, p = v[order], p[order]
        # Merge (numerically) duplicate support points; merged bins take the
        # mass-weighted center so the mean is preserved exactly.
        keep_v: list[float] = []
        keep_p: list[float] = []
        for vi, pi in zip(v, p):
            if keep_v and abs(vi - keep_v[-1]) <= _MERGE_TOL * max(1.0, abs(vi)):
                total_p = keep_p[-1] + pi
                keep_v[-1] = (keep_v[-1] * keep_p[-1] + vi * pi) / total_p
                keep_p[-1] = total_p
            else:
                keep_v.append(float(vi))
                keep_p.append(float(pi))
        self._values = np.asarray(keep_v)
        self._probs = np.asarray(keep_p)
        self._values.setflags(write=False)
        self._probs.setflags(write=False)

    # Constructors ------------------------------------------------------

    @classmethod
    def point(cls, value: float) -> "Histogram":
        """A point mass (deterministic value) as a 1-bin histogram."""
        return cls([value], [1.0])

    @classmethod
    def from_samples(cls, samples: Iterable[float], bins: int = 20) -> "Histogram":
        """Discretize raw samples into ``bins`` equal-width bins.

        This is the calibration step: measurements -> histogram metadata.
        """
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValidationError("no samples to discretize")
        if bins < 1:
            raise ValidationError(f"bins must be >= 1, got {bins}")
        counts, edges = np.histogram(arr, bins=bins)
        centers = (edges[:-1] + edges[1:]) / 2.0
        mask = counts > 0
        return cls(centers[mask], counts[mask].astype(float))

    @classmethod
    def from_distribution(
        cls,
        dist: Distribution,
        bins: int = 20,
        q_lo: float = 0.1,
        q_hi: float = 99.9,
    ) -> "Histogram":
        """Discretize a continuous distribution over its central mass.

        Bin centers are evenly spaced between the ``q_lo`` and ``q_hi``
        percentiles; bin probabilities come from percentile inversion on
        a dense grid, which avoids needing an explicit pdf.
        """
        if isinstance(dist, Histogram):
            return dist
        lo = dist.percentile(q_lo)
        hi = dist.percentile(q_hi)
        if hi <= lo:  # degenerate (zero-variance) distribution
            return cls.point(dist.mean())
        edges = np.linspace(lo, hi, bins + 1)
        centers = (edges[:-1] + edges[1:]) / 2.0
        # CDF via bisection on percentile(): evaluate the quantile function
        # on a fine grid once and interpolate the inverse.
        qs = np.linspace(0.0, 100.0, 4001)
        xs = np.asarray([dist.percentile(q) for q in qs])
        cdf_at_edges = np.interp(edges, xs, qs / 100.0, left=0.0, right=1.0)
        probs = np.diff(cdf_at_edges)
        probs[0] += cdf_at_edges[0]        # tail mass below the first edge
        probs[-1] += 1.0 - cdf_at_edges[-1]  # tail mass above the last edge
        return cls(centers, probs)

    # Distribution protocol ---------------------------------------------

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def probs(self) -> np.ndarray:
        return self._probs

    def __len__(self) -> int:
        return int(self._values.size)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        idx = rng.choice(self._values.size, size=1 if size is None else size, p=self._probs)
        out = self._values[idx]
        return float(out[0]) if size is None else out

    def mean(self) -> float:
        return float(np.dot(self._values, self._probs))

    def std(self) -> float:
        m = self.mean()
        return float(np.sqrt(np.dot((self._values - m) ** 2, self._probs)))

    def percentile(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValidationError(f"percentile must be in [0, 100], got {q}")
        cdf = np.cumsum(self._probs)
        idx = int(np.searchsorted(cdf, q / 100.0, side="left"))
        idx = min(idx, self._values.size - 1)
        return float(self._values[idx])

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        return float(self._probs[self._values <= x].sum())

    # Arithmetic --------------------------------------------------------

    def rebinned(self, max_bins: int) -> "Histogram":
        """Coarsen to at most ``max_bins`` bins (keeps total mass).

        Sums of histograms grow multiplicatively in support size; the
        propagation code calls this after every operation to keep the
        representation bounded, exactly as a fixed-width GPU buffer would.
        """
        if len(self) <= max_bins:
            return self
        lo, hi = self._values[0], self._values[-1]
        edges = np.linspace(lo, hi, max_bins + 1)
        idx = np.clip(np.searchsorted(edges, self._values, side="right") - 1, 0, max_bins - 1)
        probs = np.bincount(idx, weights=self._probs, minlength=max_bins)
        # Mass-weighted bin centers preserve the mean exactly.
        sums = np.bincount(idx, weights=self._probs * self._values, minlength=max_bins)
        mask = probs > 0
        centers = sums[mask] / probs[mask]
        return Histogram(centers, probs[mask])

    def __add__(self, other) -> "Histogram":
        """Distribution of X + Y for independent X, Y (convolution)."""
        if isinstance(other, (int, float)):
            return self.shift(float(other))
        if not isinstance(other, Histogram):
            return NotImplemented
        vv = self._values[:, None] + other._values[None, :]
        pp = self._probs[:, None] * other._probs[None, :]
        return Histogram(vv.ravel(), pp.ravel())

    __radd__ = __add__

    def shift(self, delta: float) -> "Histogram":
        """Distribution of X + delta."""
        return Histogram(self._values + delta, self._probs)

    def scale(self, factor: float) -> "Histogram":
        """Distribution of factor * X (factor > 0)."""
        if factor <= 0:
            raise ValidationError(f"scale factor must be > 0, got {factor}")
        return Histogram(self._values * factor, self._probs)

    @staticmethod
    def maximum(a: "Histogram", b: "Histogram") -> "Histogram":
        """Distribution of max(X, Y) for independent X, Y.

        P(max <= v) = P(X <= v) * P(Y <= v); differencing the product CDF
        on the merged support yields the pmf.
        """
        support = np.union1d(a._values, b._values)
        cdf_a = np.cumsum(a._probs)
        cdf_b = np.cumsum(b._probs)
        ia = np.searchsorted(a._values, support, side="right") - 1
        ib = np.searchsorted(b._values, support, side="right") - 1
        fa = np.where(ia >= 0, cdf_a[np.clip(ia, 0, None)], 0.0)
        fb = np.where(ib >= 0, cdf_b[np.clip(ib, 0, None)], 0.0)
        prod = fa * fb
        pmf = np.diff(np.concatenate([[0.0], prod]))
        mask = pmf > 0
        if not mask.any():  # numerical corner: all mass collapsed
            return Histogram.point(float(support[-1]))
        return Histogram(support[mask], pmf[mask])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self._values.size == other._values.size
            and np.allclose(self._values, other._values)
            and np.allclose(self._probs, other._probs)
        )

    def __hash__(self):
        return hash((self._values.tobytes(), self._probs.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram(bins={len(self)}, mean={self.mean():.4g}, std={self.std():.4g})"
