"""Parametric distribution families used by the calibration model.

The paper's Table 2 models sequential I/O bandwidth with Gamma(k, theta)
and random I/O / network bandwidth with Normal(mu, sigma).  Performance
quantities are physically non-negative, so the Normal family here is
complemented by :class:`TruncatedNormal` for simulation use, while plain
:class:`NormalDistribution` keeps the exact moments the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.common.errors import ValidationError
from repro.distributions.base import Distribution

__all__ = [
    "Deterministic",
    "NormalDistribution",
    "TruncatedNormal",
    "GammaDistribution",
    "UniformDistribution",
    "Empirical",
]


@dataclass(frozen=True)
class Deterministic(Distribution):
    """A point mass at ``value`` -- the degenerate case used when the
    engine runs in deterministic mode (follow-the-cost use case)."""

    value: float

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return float(self.value)
        return np.full(size, self.value, dtype=float)

    def mean(self) -> float:
        return float(self.value)

    def std(self) -> float:
        return 0.0

    def percentile(self, q: float) -> float:
        _check_q(q)
        return float(self.value)


@dataclass(frozen=True)
class NormalDistribution(Distribution):
    """Normal(mu, sigma); the paper's model for random I/O and network."""

    mu: float
    sigma: float

    def __post_init__(self):
        if self.sigma < 0:
            raise ValidationError(f"sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.normal(self.mu, self.sigma, size=size)

    def mean(self) -> float:
        return float(self.mu)

    def std(self) -> float:
        return float(self.sigma)

    def percentile(self, q: float) -> float:
        _check_q(q)
        return float(stats.norm.ppf(q / 100.0, loc=self.mu, scale=self.sigma))


@dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Normal(mu, sigma) truncated to [lower, +inf).

    Used by the cloud simulator for bandwidths: the calibration tables
    are Normal, but a sampled bandwidth must stay positive.  ``lower``
    defaults to a small positive floor rather than 0 so downstream
    divisions (time = bytes / bandwidth) are safe.
    """

    mu: float
    sigma: float
    lower: float = 1e-9

    def __post_init__(self):
        if self.sigma < 0:
            raise ValidationError(f"sigma must be >= 0, got {self.sigma}")

    @property
    def _frozen(self):
        if self.sigma == 0:
            return None
        a = (self.lower - self.mu) / self.sigma
        return stats.truncnorm(a, np.inf, loc=self.mu, scale=self.sigma)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if self.sigma == 0:
            value = max(self.mu, self.lower)
            return value if size is None else np.full(size, value)
        frozen = self._frozen
        out = frozen.rvs(size=1 if size is None else size, random_state=rng)
        return float(out[0]) if size is None else out

    def mean(self) -> float:
        if self.sigma == 0:
            return max(self.mu, self.lower)
        return float(self._frozen.mean())

    def std(self) -> float:
        if self.sigma == 0:
            return 0.0
        return float(self._frozen.std())

    def percentile(self, q: float) -> float:
        _check_q(q)
        if self.sigma == 0:
            return max(self.mu, self.lower)
        return float(self._frozen.ppf(q / 100.0))


@dataclass(frozen=True)
class GammaDistribution(Distribution):
    """Gamma with shape ``k`` and scale ``theta`` (paper's seq-I/O model).

    Mean = k * theta, Var = k * theta^2, matching Table 2's
    parameterization (e.g. m1.small: k = 129.3, theta = 0.79).
    """

    k: float
    theta: float

    def __post_init__(self):
        if self.k <= 0 or self.theta <= 0:
            raise ValidationError(f"k and theta must be > 0, got k={self.k}, theta={self.theta}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.gamma(self.k, self.theta, size=size)

    def mean(self) -> float:
        return float(self.k * self.theta)

    def std(self) -> float:
        return float(np.sqrt(self.k) * self.theta)

    def percentile(self, q: float) -> float:
        _check_q(q)
        return float(stats.gamma.ppf(q / 100.0, a=self.k, scale=self.theta))


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform on [low, high]."""

    low: float
    high: float

    def __post_init__(self):
        if self.high < self.low:
            raise ValidationError(f"high < low: [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self.low, self.high, size=size)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def std(self) -> float:
        return (self.high - self.low) / np.sqrt(12.0)

    def percentile(self, q: float) -> float:
        _check_q(q)
        return self.low + (self.high - self.low) * q / 100.0


class Empirical(Distribution):
    """The empirical distribution of a sample (calibration raw data).

    Sampling is bootstrap resampling; percentiles use the linear
    interpolation convention of :func:`numpy.percentile`.
    """

    def __init__(self, samples):
        arr = np.asarray(samples, dtype=float).ravel()
        if arr.size == 0:
            raise ValidationError("Empirical distribution needs at least one sample")
        if not np.all(np.isfinite(arr)):
            raise ValidationError("Empirical samples must be finite")
        self._samples = np.sort(arr)
        self._samples.setflags(write=False)

    @property
    def samples(self) -> np.ndarray:
        """The (sorted, read-only) underlying sample."""
        return self._samples

    def __len__(self) -> int:
        return int(self._samples.size)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        out = rng.choice(self._samples, size=1 if size is None else size, replace=True)
        return float(out[0]) if size is None else out

    def mean(self) -> float:
        return float(self._samples.mean())

    def std(self) -> float:
        return float(self._samples.std())

    def percentile(self, q: float) -> float:
        _check_q(q)
        return float(np.percentile(self._samples, q))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Empirical(n={len(self)}, mean={self.mean():.4g}, std={self.std():.4g})"


def _check_q(q: float) -> None:
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile must be in [0, 100], got {q}")
