"""Probabilistic performance modeling.

The paper models dynamic cloud performance (I/O bandwidth, network
bandwidth) with parametric probability distributions calibrated from
measurements (Table 2: Gamma for sequential I/O, Normal for random I/O
and network), then *discretizes* each distribution into a histogram whose
bins become the probabilistic facts of the WLog intermediate
representation (``p_j : exetime(Tid, Vid, T_j)``).

This package provides:

* a small :class:`Distribution` protocol (:mod:`~repro.distributions.base`),
* the parametric families the paper uses
  (:mod:`~repro.distributions.parametric`),
* histogram discretization and arithmetic -- the convolution-style ``sum``
  and ``max`` operations used to propagate task-time distributions
  through a DAG (:mod:`~repro.distributions.histogram`),
* fitting and goodness-of-fit testing, reproducing the calibration step
  (:mod:`~repro.distributions.fitting`).
"""

from repro.distributions.base import Distribution
from repro.distributions.parametric import (
    Deterministic,
    Empirical,
    GammaDistribution,
    NormalDistribution,
    TruncatedNormal,
    UniformDistribution,
)
from repro.distributions.histogram import Histogram
from repro.distributions.fitting import (
    FitResult,
    fit_gamma,
    fit_normal,
    goodness_of_fit,
    best_fit,
)

__all__ = [
    "Distribution",
    "Deterministic",
    "Empirical",
    "GammaDistribution",
    "NormalDistribution",
    "TruncatedNormal",
    "UniformDistribution",
    "Histogram",
    "FitResult",
    "fit_gamma",
    "fit_normal",
    "goodness_of_fit",
    "best_fit",
]
