"""State-of-the-art comparison algorithms (paper Section 6.1).

* :mod:`~repro.baselines.autoscaling` -- Mao & Humphrey's Auto-scaling
  (SC'11): deadline assignment over workflow levels + cheapest-feasible
  type per task.  The comparison baseline of use case 1.
* :mod:`~repro.baselines.spss` -- Malawski et al.'s SPSS (SC'12):
  static provisioning / static scheduling for workflow ensembles, the
  comparison baseline of use case 2.
* :mod:`~repro.baselines.static` -- the single-instance-type and Random
  schedulers of Fig. 1 (Random is also Pegasus's default site selector).

The follow-the-cost *Heuristic* baseline is the ``policy="heuristic"``
mode of :class:`repro.engine.followcost.FollowCostDriver` (it shares
the runtime simulation with Deco's policy by construction, as in the
paper's evaluation).
"""

from repro.baselines.autoscaling import autoscaling_plan, autoscaling_plan_calibrated
from repro.baselines.spss import spss_decide, SpssDecision
from repro.baselines.static import single_type_plan, random_plan

__all__ = [
    "autoscaling_plan",
    "autoscaling_plan_calibrated",
    "spss_decide",
    "SpssDecision",
    "single_type_plan",
    "random_plan",
]
