"""The Auto-scaling baseline (Mao & Humphrey, SC'11; paper ref. [25]).

Minimizes monetary cost under a (deterministic) deadline with a chain
of heuristics; we implement the two that carry the algorithm:

1. **Deadline assignment** -- partition the workflow into levels
   (depth classes) and distribute the workflow deadline over levels in
   proportion to each level's minimum achievable duration (its longest
   task on the fastest type).
2. **Instance-type selection** -- for every task pick the *cheapest*
   type whose expected execution time fits the task's level deadline
   (falling back to the fastest type when none fits).

The consolidation/scaling heuristics of the original system map onto
the simulator's instance-reuse policy, which both Deco and this
baseline share, so the comparison isolates plan quality -- as in the
paper.  Note the static nature the paper criticizes: the plan is built
from *mean* times, so under cloud dynamics it tends to miss tight
probabilistic deadlines and to over-spend under loose ones.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.cloud.instance_types import Catalog
from repro.workflow.critical_path import task_levels
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["autoscaling_plan"]


def autoscaling_plan(
    workflow: Workflow,
    catalog: Catalog,
    deadline: float,
    runtime_model: RuntimeModel | None = None,
) -> dict[str, str]:
    """Compute the Auto-scaling instance assignment.

    Returns task id -> instance type name.  ``deadline`` is the
    deterministic deadline; for a probabilistic requirement of p%, the
    paper sets this to the same D the probabilistic constraint uses.
    """
    if deadline <= 0:
        raise ValidationError(f"deadline must be > 0, got {deadline}")
    model = runtime_model or RuntimeModel(catalog)
    levels = task_levels(workflow)
    num_levels = max(levels.values(), default=-1) + 1
    if num_levels == 0:
        return {}

    fastest = catalog.fastest().name
    type_names = catalog.type_names  # cheapest -> priciest

    # Step 1: deadline assignment.  A level's floor duration is its
    # longest task on the fastest type (tasks within a level run in
    # parallel); the workflow deadline is split proportionally.
    floor = [0.0] * num_levels
    for tid in workflow.task_ids:
        t = model.mean(workflow.task(tid), fastest)
        lv = levels[tid]
        if t > floor[lv]:
            floor[lv] = t
    total_floor = sum(floor) or 1.0
    level_deadline = [deadline * f / total_floor for f in floor]
    # Degenerate levels (all-zero tasks) still get an even share.
    for lv in range(num_levels):
        if level_deadline[lv] <= 0:
            level_deadline[lv] = deadline / num_levels

    # Step 2: cheapest type fitting each task's level deadline.
    plan: dict[str, str] = {}
    for tid in workflow.task_ids:
        budget_t = level_deadline[levels[tid]]
        chosen = fastest
        for name in type_names:
            if model.mean(workflow.task(tid), name) <= budget_t:
                chosen = name
                break
        plan[tid] = chosen
    return plan


def autoscaling_plan_calibrated(
    workflow: Workflow,
    catalog: Catalog,
    deadline: float,
    percentile: float = 96.0,
    runtime_model: RuntimeModel | None = None,
    num_samples: int = 200,
    seed: int = 0,
    shrink: float = 0.92,
    max_rounds: int = 30,
) -> dict[str, str]:
    """Auto-scaling tuned to meet a *probabilistic* deadline requirement.

    The paper's fair-comparison protocol (Section 6.1): when the user
    requires P(makespan <= D) >= p%, the deterministic baseline is given
    the tighter deadline that makes its plan's p-th execution-time
    percentile land within D.  Since Auto-scaling only understands a
    single deterministic deadline, we shrink its input deadline
    geometrically until Monte Carlo evaluation of the resulting plan
    meets the requirement (or the plan saturates at the fastest type).
    This uniform over-provisioning is exactly the slack a
    distribution-aware optimizer can reclaim.
    """
    from repro.solver.backends import CompiledProblem, VectorizedBackend

    model = runtime_model or RuntimeModel(catalog)
    problem = CompiledProblem.compile(
        workflow,
        catalog,
        deadline=deadline,
        percentile=percentile,
        num_samples=num_samples,
        seed=seed,
        runtime_model=model,
    )
    backend = VectorizedBackend()
    fastest = catalog.fastest().name
    target = deadline
    plan = autoscaling_plan(workflow, catalog, target, model)
    for _ in range(max_rounds):
        ev = backend.evaluate(problem, problem.state_from_assignment(plan))
        if ev.feasible or all(t == fastest for t in plan.values()):
            break
        target *= shrink
        plan = autoscaling_plan(workflow, catalog, target, model)
    return plan
