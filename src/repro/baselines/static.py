"""Static schedulers: single-instance-type and Random (paper Fig. 1).

``random_plan`` is also the behaviour of Pegasus's default *Random*
site selector the paper mentions in Section 2.
"""

from __future__ import annotations

from repro.common.rng import spawn_rng
from repro.cloud.instance_types import Catalog
from repro.workflow.dag import Workflow

__all__ = ["single_type_plan", "random_plan"]


def single_type_plan(workflow: Workflow, type_name: str, catalog: Catalog) -> dict[str, str]:
    """Every task on one instance type (the m1.* bars of Fig. 1)."""
    catalog.type(type_name)  # validate
    return {tid: type_name for tid in workflow.task_ids}


def random_plan(workflow: Workflow, catalog: Catalog, seed: int = 0) -> dict[str, str]:
    """Each task on an independently uniformly random type."""
    rng = spawn_rng(seed, f"baseline/random/{workflow.name}")
    names = catalog.type_names
    return {tid: names[int(rng.integers(0, len(names)))] for tid in workflow.task_ids}
