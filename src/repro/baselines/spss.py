"""The SPSS baseline (Malawski et al., SC'12; paper ref. [24]).

Static Provisioning, Static Scheduling for workflow ensembles: an
offline pass admits workflows in priority order, each planned with a
deterministic (mean-time) scheduling heuristic, as long as the
cumulative cost stays within the ensemble budget and the member's
deadline is met *in expectation*.

Two properties drive the paper's comparison results:

* SPSS plans per workflow with a single heuristic (cheapest uniform
  instance type whose mean critical path fits the deadline) rather
  than per-task type mixing, so each admitted workflow costs more and
  fewer fit the budget;
* feasibility is checked on mean times only (the deterministic notion
  the paper argues against), so under cloud dynamics some admitted
  workflows miss their *probabilistic* deadline and score zero while
  their cost is still spent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.units import SECONDS_PER_HOUR
from repro.cloud.instance_types import Catalog
from repro.workflow.critical_path import static_makespan
from repro.workflow.dag import Workflow
from repro.workflow.ensembles import Ensemble
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["SpssDecision", "spss_decide", "spss_member_plan"]


@dataclass(frozen=True)
class SpssDecision:
    """SPSS's admission outcome for one ensemble."""

    ensemble_name: str
    admitted_priorities: tuple[int, ...]
    plans: dict[int, dict[str, str]]           # priority -> task assignment
    costs: dict[int, float]                    # priority -> expected cost
    total_cost: float
    budget: float

    @property
    def num_admitted(self) -> int:
        return len(self.admitted_priorities)

    def planned_score(self) -> float:
        """Score assuming every admitted workflow completes (Eq. 4)."""
        return float(sum(2.0 ** (-p) for p in self.admitted_priorities))


#: SPSS's planning slack: a plan is admitted when its mean critical path
#: fits within this fraction of the deadline.  The original system plans
#: with ~10% headroom against runtime estimation error; without it every
#: mean-tight plan would fail under cloud dynamics.
SPSS_SLACK = 0.9


def spss_member_plan(
    workflow: Workflow,
    catalog: Catalog,
    deadline: float,
    model: RuntimeModel,
    slack: float = SPSS_SLACK,
) -> tuple[dict[str, str], float] | None:
    """Cheapest uniform-type plan whose mean critical path fits.

    Returns ``(assignment, expected_cost)`` or None when even the
    fastest type cannot meet the deadline in expectation.
    """
    for name in catalog.type_names:  # cheapest first
        times = {t: model.mean(workflow.task(t), name) for t in workflow.task_ids}
        if static_makespan(workflow, times) <= deadline * slack:
            price = catalog.price(name)
            cost = sum(times.values()) / SECONDS_PER_HOUR * price
            return ({tid: name for tid in workflow.task_ids}, cost)
    return None


def spss_decide(
    ensemble: Ensemble,
    catalog: Catalog,
    runtime_model: RuntimeModel | None = None,
) -> SpssDecision:
    """Run SPSS's offline admission over an ensemble."""
    if ensemble.budget == float("inf"):
        raise ValidationError("SPSS needs a finite ensemble budget")
    model = runtime_model or RuntimeModel(catalog)
    admitted: list[int] = []
    plans: dict[int, dict[str, str]] = {}
    costs: dict[int, float] = {}
    spent = 0.0
    for member in ensemble.by_priority():
        planned = spss_member_plan(member.workflow, catalog, member.deadline, model)
        if planned is None:
            continue
        assignment, cost = planned
        if spent + cost > ensemble.budget + 1e-12:
            continue
        spent += cost
        admitted.append(member.priority)
        plans[member.priority] = assignment
        costs[member.priority] = cost
    return SpssDecision(
        ensemble_name=ensemble.name,
        admitted_priorities=tuple(admitted),
        plans=plans,
        costs=costs,
        total_cost=spent,
        budget=ensemble.budget,
    )
