"""Stdlib HTTP front end for :class:`~.runtime.DecoService`.

No framework, no new dependencies: a ``ThreadingHTTPServer`` handler
translating a small JSON API onto the in-process service, plus a
``urllib``-based client used by ``repro submit`` and the CI smoke test.

API::

    POST /v1/jobs            {"payload": {...}, "tenant": ..., "priority": ...}
                             -> 202 {"job_id": ...}   (201-like accept)
                             -> 429 {"error": ..., "retry_after_s": ...}
                             -> 400 on malformed payloads
    GET  /v1/jobs/<id>       -> 200 status document | 404
    GET  /v1/stats           -> 200 service counters (worker pids included)
    GET  /healthz            -> 200/503 liveness
    GET  /readyz             -> 200/503 readiness (503 while load-shedding
                                is one step from rejection)
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.common.errors import (
    AdmissionError,
    JobNotFound,
    ValidationError,
)

from .runtime import DecoService

__all__ = ["ServiceServer", "ServiceClient", "serve"]

_MAX_BODY = 4 * 1024 * 1024  # a WLog program + workflow ref, with headroom


def _make_handler(service: DecoService):
    class Handler(BaseHTTPRequestHandler):
        # Quiet by default; the service keeps its own counters.
        def log_message(self, fmt, *args):  # pragma: no cover
            pass

        def _send(self, code: int, doc: dict) -> None:
            body = json.dumps(doc).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if "retry_after_s" in doc:
                self.send_header("Retry-After", str(max(1, int(doc["retry_after_s"] + 0.5))))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            try:
                if self.path == "/healthz":
                    doc = service.healthy()
                    self._send(200 if doc["ok"] else 503, doc)
                elif self.path == "/readyz":
                    doc = service.ready()
                    self._send(200 if doc["ok"] else 503, doc)
                elif self.path == "/v1/stats":
                    self._send(200, service.stats())
                elif self.path.startswith("/v1/jobs/"):
                    job_id = self.path[len("/v1/jobs/"):]
                    self._send(200, service.job_status(job_id))
                else:
                    self._send(404, {"error": f"no such route: {self.path}"})
            except JobNotFound as exc:
                self._send(404, {"error": str(exc), "job_id": exc.job_id})
            except Exception as exc:  # never kill the connection thread
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

        def do_POST(self) -> None:
            try:
                if self.path != "/v1/jobs":
                    self._send(404, {"error": f"no such route: {self.path}"})
                    return
                length = int(self.headers.get("Content-Length", 0))
                if length > _MAX_BODY:
                    self._send(413, {"error": f"body exceeds {_MAX_BODY} bytes"})
                    return
                try:
                    doc = json.loads(self.rfile.read(length) or b"{}")
                except ValueError as exc:
                    self._send(400, {"error": f"invalid JSON body: {exc}"})
                    return
                job = service.submit(
                    doc.get("payload", {}),
                    tenant=str(doc.get("tenant", "default")),
                    priority=str(doc.get("priority", "standard")),
                )
                self._send(202, {"job_id": job.job_id, "state": job.state})
            except AdmissionError as exc:
                self._send(
                    429,
                    {
                        "error": str(exc),
                        "reason": exc.reason,
                        "retry_after_s": exc.retry_after_s,
                    },
                )
            except ValidationError as exc:
                self._send(400, {"error": str(exc)})
            except Exception as exc:
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    return Handler


class ServiceServer:
    """One service + one threading HTTP server, lifecycle-tied."""

    def __init__(self, service: DecoService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(service))
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start the dispatcher and the HTTP listener (idempotent)."""
        self.service.start()
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="deco-service-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Foreground mode (the ``repro serve`` entrypoint)."""
        self.service.start()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Idempotent: HTTP listener, dispatcher, workers, journal."""
        try:
            self._httpd.shutdown()
        except Exception:
            pass
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServiceClient:
    """Minimal urllib client for the JSON API (used by ``repro submit``)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str, doc: dict | None = None) -> tuple[int, dict]:
        req = urllib.request.Request(
            self.base_url + path,
            data=None if doc is None else json.dumps(doc).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                return exc.code, json.loads(exc.read() or b"{}")
            except ValueError:
                return exc.code, {"error": str(exc)}

    def submit(self, payload: dict, *, tenant: str = "default", priority: str = "standard") -> tuple[int, dict]:
        return self._request(
            "POST", "/v1/jobs", {"payload": payload, "tenant": tenant, "priority": priority}
        )

    def status(self, job_id: str) -> tuple[int, dict]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")[1]

    def wait(self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.2) -> dict:
        """Poll until the job is terminal; returns its status document."""
        import time

        t_end = time.monotonic() + timeout_s
        while True:
            code, doc = self.status(job_id)
            if code == 200 and doc.get("state") in ("completed", "degraded", "dead_lettered"):
                return doc
            if time.monotonic() > t_end:
                raise TimeoutError(f"job {job_id} not terminal after {timeout_s:g}s: {doc}")
            time.sleep(poll_s)


def serve(config: Any = None, host: str = "127.0.0.1", port: int = 8642) -> ServiceServer:
    """Convenience: build a service and a (not yet started) server."""
    service = DecoService(config)
    return ServiceServer(service, host=host, port=port)
