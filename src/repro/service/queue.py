"""Durable priority queue with admission control.

:class:`DurableQueue` pairs the in-memory dispatch structures (priority
heaps, backoff timers) with the write-ahead :class:`~.journal.JobJournal`:
every state transition is journaled *before* it takes effect in memory,
so a crash at any instant leaves a journal whose replay reconstructs a
queue that owes clients exactly what the dead process owed them.

Admission control lives here too:

* **bounded depth** -- beyond ``reject_depth`` pending jobs the queue
  refuses new work with a structured retry-after;
* **per-tenant token buckets** -- a tenant submitting faster than its
  refill rate is rate-limited without affecting other tenants.

The load-shedding *ladder* (degrade before reject) is runtime policy and
lives in :mod:`repro.service.runtime`; the queue only exposes the
measurements (``depth``) and the hard backstop (``reject_depth``).
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Callable

from repro.common.errors import AdmissionError, JobNotFound, ServiceError, ValidationError

from .jobs import JobRecord, new_job_id, validate_payload
from .journal import JobJournal

__all__ = ["TokenBucket", "DurableQueue"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, bursting to ``capacity``."""

    def __init__(self, rate: float, capacity: float, *, clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or capacity <= 0:
            raise ValidationError(f"token bucket needs rate > 0 and capacity > 0, got {rate}, {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.capacity, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns 0.0 on success, else the
        seconds to wait until the bucket could satisfy the request."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


class DurableQueue:
    """Journal-backed priority queue of :class:`JobRecord`\\ s."""

    def __init__(
        self,
        journal: JobJournal,
        *,
        reject_depth: int = 64,
        tenant_rate: float = 10.0,
        tenant_burst: float = 20.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if reject_depth < 1:
            raise ValidationError(f"reject_depth must be >= 1, got {reject_depth}")
        self.journal = journal
        self.reject_depth = int(reject_depth)
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = float(tenant_burst)
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        # (priority_rank, sequence, job_id); sequence keeps FIFO within a class.
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0
        # job_id -> monotonic not-before stamp (exponential backoff after crash).
        self._not_before: dict[str, float] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self.rejected = 0
        self.rate_limited = 0
        self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal: terminal jobs keep their results, non-terminal
        jobs (queued, or running when the process died) re-enter the heap."""
        self.recovered_inflight = 0
        for job in self.journal.replay().values():
            self._jobs[job.job_id] = job
            if not job.terminal:
                if job.attempts:
                    self.recovered_inflight += 1
                self._push(job)

    # -- internals ---------------------------------------------------------

    def _push(self, job: JobRecord) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (job.priority_rank, self._seq, job.job_id))

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.tenant_rate, self.tenant_burst, clock=self._clock
            )
        return bucket

    # -- admission + submission --------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs accepted but not yet terminal (queued + running)."""
        with self._lock:
            return sum(1 for j in self._jobs.values() if not j.terminal)

    def admit(self, tenant: str) -> None:
        """Raise :class:`AdmissionError` if this submission must be refused.

        Checked *before* anything is journaled: a rejected job was never
        accepted, so the exactly-once-terminal invariant does not apply
        to it.
        """
        with self._lock:
            if self.depth >= self.reject_depth:
                self.rejected += 1
                raise AdmissionError(
                    f"queue full ({self.depth} jobs in flight, limit {self.reject_depth}); "
                    "retry later",
                    reason="queue_full",
                    retry_after_s=5.0,
                )
            wait = self._bucket(tenant).try_take()
            if wait > 0.0:
                self.rate_limited += 1
                raise AdmissionError(
                    f"tenant {tenant!r} exceeded {self.tenant_rate:g} submissions/s; "
                    f"retry in {wait:.2f}s",
                    reason="rate_limited",
                    retry_after_s=round(wait, 3),
                )

    def submit(
        self,
        payload: dict,
        *,
        tenant: str = "default",
        priority: str = "standard",
        degraded: bool = False,
        degrade_reason: str = "",
        skip_admission: bool = False,
    ) -> JobRecord:
        """Validate, admit, journal, and enqueue one job.

        The journal append happens before the job is visible in memory;
        once this returns, the job is accepted and will reach a terminal
        state exactly once even across crashes.  ``skip_admission`` is
        for submissions that consume no solver capacity (plan-cache
        hits): they are journaled like any accepted job but bypass the
        depth/rate gates.
        """
        payload = validate_payload(payload)
        with self._lock:
            if not skip_admission:
                self.admit(tenant)
            job = JobRecord(
                job_id=new_job_id(),
                tenant=tenant,
                priority=priority,
                payload=payload,
                submitted_at=time.time(),
                degraded=degraded,
                degrade_reason=degrade_reason,
            )
            self.journal.append("submitted", ts=job.submitted_at, job=job.to_dict())
            self._jobs[job.job_id] = job
            self._push(job)
            return job

    # -- dispatch ----------------------------------------------------------

    def claim(self) -> JobRecord | None:
        """Pop the highest-priority dispatchable job and mark it running.

        Jobs under a backoff timer are skipped (left in the heap) until
        their ``not_before`` stamp passes.  Returns ``None`` when nothing
        is dispatchable right now.
        """
        with self._lock:
            now = self._clock()
            deferred: list[tuple[int, int, str]] = []
            claimed: JobRecord | None = None
            while self._heap:
                rank, seq, job_id = heapq.heappop(self._heap)
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue  # stale heap entry (job finished via cache, etc.)
                if self._not_before.get(job_id, 0.0) > now:
                    deferred.append((rank, seq, job_id))
                    continue
                claimed = job
                break
            for entry in deferred:
                heapq.heappush(self._heap, entry)
            if claimed is None:
                return None
            claimed.attempts += 1
            claimed.started_at = time.time()
            claimed.state = "running"
            self.journal.append(
                "started", ts=claimed.started_at, job_id=claimed.job_id, attempts=claimed.attempts
            )
            return claimed

    def requeue(self, job_id: str, *, backoff_s: float = 0.0) -> None:
        """Return a crashed job to the queue, optionally after a delay."""
        with self._lock:
            job = self._require(job_id)
            if job.terminal:
                raise ServiceError(
                    f"cannot requeue job {job_id}: already terminal ({job.state})"
                )
            self.journal.append("requeued", ts=time.time(), job_id=job_id, backoff_s=backoff_s)
            job.state = "queued"
            if backoff_s > 0.0:
                self._not_before[job_id] = self._clock() + backoff_s
            self._push(job)

    def finish(
        self,
        job_id: str,
        state: str,
        *,
        result: dict | None = None,
        error: dict | None = None,
        degraded: bool | None = None,
        degrade_reason: str | None = None,
        cache_hit: bool = False,
    ) -> JobRecord:
        """Commit a job's single terminal transition.

        Raises :class:`ServiceError` on a second terminal attempt -- the
        in-memory guard mirrors the journal-replay invariant so the bug
        is caught at the source, not at the next restart.
        """
        with self._lock:
            job = self._require(job_id)
            if job.terminal:
                raise ServiceError(
                    f"job {job_id} already terminal ({job.state}); "
                    f"refusing second terminal transition to {state!r}"
                )
            extra: dict[str, Any] = {}
            if degraded is not None:
                job.degraded = degraded
                extra["degraded"] = degraded
            if degrade_reason is not None:
                job.degrade_reason = degrade_reason
                extra["degrade_reason"] = degrade_reason
            if cache_hit:
                job.cache_hit = True
                extra["cache_hit"] = True
            if result is not None:
                extra["result"] = result
            if error is not None:
                extra["error"] = error
            ts = time.time()
            self.journal.append(state, ts=ts, job_id=job_id, **extra)
            job.state = state  # validated by the journal event whitelist
            job.finished_at = ts
            job.result = result
            job.error = error
            self._not_before.pop(job_id, None)
            return job

    # -- queries -----------------------------------------------------------

    def _require(self, job_id: str) -> JobRecord:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"no such job: {job_id}", job_id=job_id)
        return job

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._require(job_id)

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        with self._lock:
            out: dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out
