"""Deco-as-a-service: a crash-safe solve-job runtime (DESIGN.md §14).

Layers, bottom up:

* :mod:`~repro.service.journal` -- fsync'd append-only JSONL write-ahead
  log; replay reconstructs every accepted job after a crash.
* :mod:`~repro.service.queue` -- durable priority queue with per-tenant
  token-bucket rate limits and bounded depth.
* :mod:`~repro.service.cache` -- plan-result cache keyed by a canonical
  problem hash.
* :mod:`~repro.service.pool` / :mod:`~repro.service.worker` -- warm Deco
  workers (one engine per backend per process) with explicit
  crash/hang reporting.
* :mod:`~repro.service.runtime` -- admission ladder (cache -> accept ->
  degrade-to-analytic -> reject), dispatcher, retry/backoff/dead-letter.
* :mod:`~repro.service.http` -- stdlib JSON API (``repro serve``) and
  client (``repro submit``).
"""

from repro.service.cache import PlanCache, canonical_key
from repro.service.http import ServiceClient, ServiceServer, serve
from repro.service.jobs import PRIORITY_CLASSES, TERMINAL_STATES, JobRecord
from repro.service.journal import JobJournal, fold_events, replay_events
from repro.service.pool import WarmWorkerPool
from repro.service.queue import DurableQueue, TokenBucket
from repro.service.runtime import DecoService, ServiceConfig

__all__ = [
    "PRIORITY_CLASSES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobJournal",
    "fold_events",
    "replay_events",
    "DurableQueue",
    "TokenBucket",
    "PlanCache",
    "canonical_key",
    "WarmWorkerPool",
    "DecoService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceServer",
    "serve",
]
