"""Job records and the service state machine.

A job moves through exactly one path of::

    queued -> running -> completed            (full-fidelity plan)
                      -> degraded             (best-effort: load-shed to the
                                               analytic backend, or the solve
                                               watchdog returned an incumbent)
                      -> dead_lettered        (attempt budget exhausted, or a
                                               deterministic solver error)
           \\-> (crash) -> queued              (re-queued with backoff)

``completed``, ``degraded`` and ``dead_lettered`` are *terminal*: the
service guarantees every accepted job reaches exactly one of them
exactly once (the chaos harness's core invariant), and the durable
queue refuses a second terminal transition.

Payload shape (everything JSON, everything journalable)::

    {
      "workflow": {"app": "montage", "degrees": 4.0, "seed": 7}   # or
                  {"app": "ligo", "tasks": 100, "seed": 7}        # or
                  {"dax": "path/to/workflow.xml"},
      "wlog": "<optional WLog source solved against the workflow>",
      "deadline": "medium" | <seconds>,
      "percentile": 96.0,
      "backend": "gpu" | "cpu" | "analytic",
      "solve_deadline_s": <optional wall-clock watchdog>,
      "faults": {"task_failure_rate": 0.05, "instance_mtbf": 36000.0} | null,
      "inject": "<chaos-test hook: exit | raise | sleep:<s>>"
    }
"""

from __future__ import annotations

import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.common.errors import ValidationError

__all__ = [
    "PRIORITY_CLASSES",
    "TERMINAL_STATES",
    "JobRecord",
    "new_job_id",
    "validate_payload",
]

#: Priority class -> dispatch rank (lower dispatches first).  Within a
#: class the queue is FIFO by submission sequence.
PRIORITY_CLASSES: dict[str, int] = {"interactive": 0, "standard": 1, "batch": 2}

#: States a job can never leave (and must reach exactly once).
TERMINAL_STATES = frozenset({"completed", "degraded", "dead_lettered"})

_ALL_STATES = frozenset({"queued", "running"}) | TERMINAL_STATES


def new_job_id() -> str:
    """A journal-unique job id (time-sortable prefix + random suffix)."""
    return f"job-{time.strftime('%Y%m%dT%H%M%S')}-{uuid.uuid4().hex[:10]}"


def validate_payload(payload: Mapping[str, Any]) -> dict:
    """Normalize and validate a job payload; raises :class:`ValidationError`.

    Validation happens at admission so a malformed job is rejected with
    a clear message instead of dead-lettering after a queue round trip.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(f"job payload must be an object, got {type(payload).__name__}")
    data = dict(payload)
    wf = data.get("workflow")
    if not isinstance(wf, Mapping) or not ({"app", "dax"} & set(wf)):
        raise ValidationError(
            "payload.workflow must name a generator app "
            '({"app": ..., "degrees"/"tasks": ..., "seed": ...}) or a DAX file ({"dax": path})'
        )
    if "app" in wf and wf["app"] not in ("montage", "ligo", "epigenomics", "cybershake"):
        raise ValidationError(f"unknown workflow app {wf['app']!r}")
    backend = data.setdefault("backend", "gpu")
    if backend not in ("gpu", "cpu", "analytic"):
        raise ValidationError(f"payload.backend must be gpu|cpu|analytic, got {backend!r}")
    deadline = data.setdefault("deadline", "medium")
    if isinstance(deadline, str):
        if deadline not in ("tight", "medium", "loose"):
            raise ValidationError(
                f"payload.deadline must be tight|medium|loose or seconds, got {deadline!r}"
            )
    elif not isinstance(deadline, (int, float)) or not deadline > 0:
        raise ValidationError(f"payload.deadline must be > 0 seconds, got {deadline!r}")
    percentile = data.setdefault("percentile", 96.0)
    if not isinstance(percentile, (int, float)) or not 0 < percentile <= 100:
        raise ValidationError(f"payload.percentile must be in (0, 100], got {percentile!r}")
    sd = data.get("solve_deadline_s")
    if sd is not None and (not isinstance(sd, (int, float)) or not sd > 0):
        raise ValidationError(f"payload.solve_deadline_s must be > 0, got {sd!r}")
    return data


@dataclass
class JobRecord:
    """One job's full lifecycle, as the queue and the journal see it."""

    job_id: str
    tenant: str = "default"
    priority: str = "standard"
    payload: dict = field(default_factory=dict)
    state: str = "queued"
    submitted_at: float = 0.0      # wall clock (journal timestamps)
    started_at: float = 0.0
    finished_at: float = 0.0
    attempts: int = 0              # dispatch attempts consumed so far
    degraded: bool = False         # admission downgraded the backend
    degrade_reason: str = ""       # "load_shed" | "solve_timeout" | ""
    cache_hit: bool = False
    result: dict | None = None     # terminal envelope (plan, counters)
    error: dict | None = None      # dead-letter record {type, message, attempts}

    def __post_init__(self):
        if self.priority not in PRIORITY_CLASSES:
            raise ValidationError(
                f"priority must be one of {sorted(PRIORITY_CLASSES)}, got {self.priority!r}"
            )
        if self.state not in _ALL_STATES:
            raise ValidationError(f"unknown job state {self.state!r}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def priority_rank(self) -> int:
        return PRIORITY_CLASSES[self.priority]

    def latency_s(self) -> float | None:
        """Submit-to-terminal wall-clock latency, once terminal."""
        if not self.terminal or not self.finished_at:
            return None
        return max(0.0, self.finished_at - self.submitted_at)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in dict(data).items() if k in known})
