"""Append-only write-ahead journal for the job service.

The journal is the service's only durable state: one JSONL file, one
event per line, appended with ``write + flush + fsync`` so an event
acknowledged to a client survives a process crash.  Recovery is pure
replay -- fold the events in order and the final per-job states fall
out.  There is no compaction or in-place mutation; a fresh service
pointed at an old journal reconstructs every job it ever accepted.

Event shape::

    {"event": "submitted" | "started" | "requeued" | "completed"
              | "degraded" | "dead_lettered",
     "ts": <wall clock>, "job": {...full JobRecord...}}       # submitted
    {"event": ..., "ts": ..., "job_id": ..., ...delta fields}  # the rest

Crash tolerance contract (enforced by :func:`replay`):

* a **torn final line** (no trailing newline, or undecodable JSON) is
  what a crash mid-append leaves behind -- it is dropped with a
  :class:`RuntimeWarning` and replay proceeds;
* an undecodable line anywhere **before** the tail cannot be explained
  by a crash and raises :class:`~repro.common.errors.JournalCorrupt`
  rather than silently losing accepted jobs.
"""

from __future__ import annotations

import io
import json
import os
import threading
import warnings
import weakref
from pathlib import Path
from typing import Any, Iterator

from repro.common.errors import JournalCorrupt, ValidationError

from .jobs import TERMINAL_STATES, JobRecord

__all__ = ["JobJournal", "replay_events", "fold_events"]

#: Events that carry a full job record (vs. a job_id + delta).
_FULL_RECORD_EVENTS = frozenset({"submitted"})

_EVENTS = frozenset(
    {"submitted", "started", "requeued", "completed", "degraded", "dead_lettered"}
)

#: event name -> terminal job state it commits (identity mapping today,
#: kept explicit so the exactly-once check reads off the journal alone).
TERMINAL_EVENTS = {state: state for state in TERMINAL_STATES}


def _close_quiet(fh) -> None:
    """Finalizer: close an abandoned journal handle without raising."""
    try:
        if not fh.closed:
            fh.close()
    except Exception:
        pass


class JobJournal:
    """Durable append-only event log with crash-consistent appends."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh: io.TextIOWrapper | None = None
        self.appends = 0

    # -- writing -----------------------------------------------------------

    def _handle(self) -> io.TextIOWrapper:
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a", encoding="utf-8")
            # Interpreter-exit safety: a journal abandoned without
            # close() must not leak its handle (ResourceWarning) at
            # teardown.  The callback closes over the handle, not self.
            weakref.finalize(self, _close_quiet, self._fh)
        return self._fh

    def append(self, event: str, **fields: Any) -> dict:
        """Durably append one event; returns the record as written.

        The record only counts as accepted once ``fsync`` returns: the
        service acknowledges a submission to the client strictly after
        this call, which is what makes "accepted jobs survive crashes"
        true rather than probabilistic.
        """
        if event not in _EVENTS:
            raise ValidationError(f"unknown journal event {event!r}")
        record = {"event": event, **fields}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if "\n" in line:  # defense in depth; json.dumps never emits newlines
            raise ValidationError("journal records must be single-line JSON")
        with self._lock:
            fh = self._handle()
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
            self.appends += 1
        return record

    def close(self) -> None:
        """Idempotent: safe to call twice or on a never-written journal."""
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ------------------------------------------------------------

    def replay(self) -> dict[str, JobRecord]:
        """Reconstruct per-job state from the journal (see :func:`fold_events`)."""
        return fold_events(replay_events(self.path))


def replay_events(path: str | os.PathLike) -> Iterator[dict]:
    """Yield journal events in append order, tolerating only a torn tail."""
    path = Path(path)
    if not path.exists():
        return
    raw = path.read_bytes()
    if not raw:
        return
    lines = raw.split(b"\n")
    # A complete journal ends with a newline, so the final split element
    # is empty; anything else is a torn tail candidate.
    torn_tail_possible = lines[-1] != b""
    if lines[-1] == b"":
        lines.pop()
    last = len(lines) - 1
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError("journal record is not an event object")
        except ValueError as exc:
            if i == last and torn_tail_possible:
                warnings.warn(
                    f"journal {path}: dropping torn final record "
                    f"(crash mid-append): {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
            raise JournalCorrupt(
                f"journal {path} is corrupt at line {i + 1} "
                f"(not the tail, so not a torn append): {exc}",
                path=str(path),
                line_number=i + 1,
            ) from exc
        yield record


def fold_events(events: Iterator[dict]) -> dict[str, JobRecord]:
    """Fold an event stream into final job states.

    Enforces the exactly-once terminal invariant structurally: a second
    terminal event for the same job id raises :class:`JournalCorrupt`,
    because a correct service can never write one.  Jobs whose last
    event leaves them ``running`` were in flight when the process died;
    the fold re-queues them so replay never strands an accepted job.
    """
    jobs: dict[str, JobRecord] = {}
    for record in events:
        event = record["event"]
        if event in _FULL_RECORD_EVENTS:
            job = JobRecord.from_dict(record["job"])
            jobs[job.job_id] = job
            continue
        job_id = record.get("job_id", "")
        job = jobs.get(job_id)
        if job is None:
            raise JournalCorrupt(
                f"journal event {event!r} references unknown job {job_id!r} "
                "(no prior 'submitted' record)"
            )
        if job.terminal:
            raise JournalCorrupt(
                f"job {job_id} received {event!r} after already reaching "
                f"terminal state {job.state!r} -- exactly-once violated"
            )
        if event == "started":
            job.state = "running"
            job.started_at = record.get("ts", 0.0)
            job.attempts = record.get("attempts", job.attempts + 1)
        elif event == "requeued":
            job.state = "queued"
        elif event in TERMINAL_EVENTS:
            job.state = TERMINAL_EVENTS[event]
            job.finished_at = record.get("ts", 0.0)
            job.degraded = record.get("degraded", job.degraded)
            job.degrade_reason = record.get("degrade_reason", job.degrade_reason)
            job.cache_hit = record.get("cache_hit", job.cache_hit)
            if "result" in record:
                job.result = record["result"]
            if "error" in record:
                job.error = record["error"]
    for job in jobs.values():
        if job.state == "running":
            # In flight at crash time: give it back to the queue.  The
            # attempt that died still counts against the budget.
            job.state = "queued"
    return jobs
