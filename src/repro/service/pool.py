"""Warm worker pool: the service's process-level execution substrate.

Layers on :class:`~repro.parallel.executor.ShardPool` -- one dedicated
single-process executor per slot, rebuilt from ``Deco.spec()`` by
:func:`~.worker.init_service_worker` -- but with the *opposite* crash
policy: where the beam solve transparently re-runs a dead shard's chunk
in-process (pure math, safe to repeat anywhere), the service treats a
worker death as a **job event**: the job is reported ``crashed`` so the
dispatcher can journal the retry, apply backoff, and eventually
dead-letter it.  Nothing here ever re-runs a job silently.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Mapping

try:  # BrokenProcessPool only exists where process pools do
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    class BrokenProcessPool(RuntimeError):  # type: ignore[no-redef]
        pass

from repro.common.errors import DecoError
from repro.parallel.executor import ShardPool

from .worker import init_service_worker, ping_job, solve_job

__all__ = ["ActiveJob", "WarmWorkerPool"]


class ActiveJob:
    """One job in flight on one worker slot."""

    __slots__ = ("job_id", "slot", "shard_job", "started_monotonic", "hang_after_s")

    def __init__(self, job_id: str, slot: int, shard_job, hang_after_s: float):
        self.job_id = job_id
        self.slot = slot
        self.shard_job = shard_job
        self.started_monotonic = time.monotonic()
        self.hang_after_s = hang_after_s

    @property
    def age_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    @property
    def hung(self) -> bool:
        return self.age_s > self.hang_after_s


class WarmWorkerPool:
    """Slot-addressed pool of warm Deco workers with explicit crash reporting."""

    def __init__(self, spec: Mapping[str, Any], workers: int = 2):
        self._pool = ShardPool(
            workers, initializer=init_service_worker, initargs=(spec,)
        )
        self.workers = self._pool.workers
        self._busy: dict[int, ActiveJob] = {}
        self.respawns = 0

    # -- introspection -----------------------------------------------------

    @property
    def is_serial(self) -> bool:
        """True when the environment downgraded to in-process execution."""
        return self._pool.is_serial

    def idle_slots(self) -> list[int]:
        return [slot for slot in range(self.workers) if slot not in self._busy]

    def active(self) -> list[ActiveJob]:
        return list(self._busy.values())

    def worker_pids(self) -> list[int | None]:
        """Live worker pid per slot (chaos tooling kills by these)."""
        return self._pool.worker_pids()

    def heartbeat(self, slot: int, timeout_s: float = 10.0) -> int | None:
        """Ping an *idle* slot's worker; returns its pid, or ``None`` if the
        worker is dead/unresponsive (after respawning it for next use).

        Only meaningful for idle slots: a slot's executor is single-
        process, so a ping behind a running job would just queue.
        """
        if slot in self._busy:
            raise ValueError(f"slot {slot} is busy; heartbeat only probes idle slots")
        job = self._pool.submit(slot, ping_job, None)
        try:
            if job.future is not None:
                return job.future.result(timeout=timeout_s)["pid"]
            if job.error is not None:
                raise job.error
            return job.value["pid"] if job.value else None
        except (BrokenProcessPool, FutureTimeout, OSError):
            self.respawn(slot)
            return None

    # -- dispatch / poll ---------------------------------------------------

    def dispatch(
        self,
        job_id: str,
        slot: int,
        payload: dict,
        *,
        hang_after_s: float = 600.0,
        extras: Mapping[str, Any] | None = None,
    ) -> ActiveJob:
        """Start ``payload`` on ``slot``; never blocks.

        ``extras`` are dispatch-time annotations (e.g. the shared-memory
        problem-store key) merged into a *copy* of the payload -- the
        journaled payload stays exactly what the client submitted, and a
        retried job recomputes its extras at its next dispatch.
        """
        if slot in self._busy:
            raise ValueError(f"slot {slot} already has job {self._busy[slot].job_id}")
        if extras:
            payload = {**payload, **extras}
        shard_job = self._pool.submit(slot, solve_job, payload)
        active = ActiveJob(job_id, slot, shard_job, hang_after_s)
        self._busy[slot] = active
        return active

    def poll(self, active: ActiveJob) -> tuple[str, Any]:
        """Non-blocking status: ``("pending", None)`` | ``("done", envelope)``
        | ``("failed", exc)`` | ``("crashed", exc)``.

        ``failed`` is a deterministic Python-level error (infeasible
        deadline, bad payload) -- retrying cannot help.  ``crashed`` is
        a worker-process death -- the job may have been unlucky
        (OOM, chaos kill) and retrying on a fresh worker is sound.  A
        hung job (past ``hang_after_s``) is forcibly converted into a
        crash by respawning its worker.
        """
        sj = active.shard_job
        if sj.future is None:
            # Serial/fallback path, or dispatch-time crash: resolved inline.
            outcome = self._resolve_inline(sj)
        elif sj.future.done():
            try:
                outcome = ("done", sj.future.result())
            except BrokenProcessPool as exc:
                outcome = ("crashed", exc)
            except DecoError as exc:
                outcome = ("failed", exc)
            except Exception as exc:  # non-Deco worker bug: also terminal
                outcome = ("failed", exc)
        elif active.hung:
            outcome = ("crashed", TimeoutError(
                f"job {active.job_id} exceeded the {active.hang_after_s:g}s hang "
                f"watchdog on worker slot {active.slot}; worker respawned"
            ))
        else:
            return ("pending", None)
        if outcome[0] == "crashed":
            self.respawn(active.slot)
        self._busy.pop(active.slot, None)
        return outcome

    def _resolve_inline(self, sj) -> tuple[str, Any]:
        if sj.error is not None:
            return ("failed", sj.error)
        if sj.done:
            return ("done", sj.value)
        # Dispatch-time BrokenProcessPool left the job unresolved; report
        # it as the crash it was instead of silently re-running locally.
        return ("crashed", BrokenProcessPool("worker died at dispatch"))

    def respawn(self, slot: int) -> None:
        """Tear down and lazily recreate one slot's worker process.

        SIGKILLs the current worker first: ``shutdown(wait=False)``
        alone lets a *hung* worker linger until its job returns, which
        is exactly what the hang watchdog exists to prevent.
        """
        try:
            pid = self._pool.worker_pids()[slot]
            if pid is not None:
                os.kill(pid, signal.SIGKILL)
        except (OSError, IndexError):
            pass
        self._pool.respawn(slot)
        self._busy.pop(slot, None)
        self.respawns += 1

    def close(self) -> None:
        """Idempotent: releases every worker process."""
        self._busy.clear()
        self._pool.close()

    def __enter__(self) -> "WarmWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
