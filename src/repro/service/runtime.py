"""The Deco job service: admission ladder, dispatcher, degradation.

:class:`DecoService` glues the durable pieces together::

    submit -> [cache] -> [admission ladder] -> DurableQueue (journaled)
                                                    |
            dispatcher step():  claim -> WarmWorkerPool slot
                                    poll -> completed | degraded
                                            | crashed -> backoff requeue
                                                         -> dead_letter
                                            | failed  -> dead_letter

The **load-shedding ladder** runs at admission, cheapest remedy first:

1. plan cache hit -- serve the stored full-fidelity envelope, zero work;
2. queue healthy -- accept at full fidelity;
3. queue at/over ``degrade_depth`` -- accept, but downgraded to the
   analytic backend (milliseconds per solve, envelope carries the
   probability error bound) so the service sheds load before refusing it;
4. queue at ``reject_depth`` or tenant over its token budget -- refuse
   with a structured ``retry_after_s``.

Every accepted job reaches exactly one terminal state exactly once --
``completed``, ``degraded`` (load-shed or solve-watchdog incumbent) or
``dead_lettered`` -- enforced in memory by the queue and structurally by
journal replay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ValidationError

from .cache import PlanCache, canonical_key, problem_store_key
from .jobs import JobRecord, validate_payload
from .journal import JobJournal
from .pool import WarmWorkerPool
from .queue import DurableQueue

__all__ = ["ServiceConfig", "DecoService"]


@dataclass
class ServiceConfig:
    """Tunables for one service instance (all have working defaults)."""

    journal_path: str = "deco-jobs.jsonl"
    workers: int = 2
    #: Queue depth at which new jobs are downgraded to the analytic backend.
    degrade_depth: int = 8
    #: Queue depth at which new jobs are refused outright.
    reject_depth: int = 16
    tenant_rate: float = 10.0
    tenant_burst: float = 20.0
    #: Dispatch attempts per job before dead-lettering (crashes only).
    max_attempts: int = 3
    #: First crash-retry backoff; doubles per subsequent attempt.
    backoff_base_s: float = 0.05
    #: A job running longer than this is treated as hung (worker killed).
    hang_after_s: float = 600.0
    cache_capacity: int = 128
    #: Dispatcher idle sleep between step()s in the background thread.
    poll_interval_s: float = 0.02
    #: Share compiled problems across jobs and workers through the
    #: shared-memory arena (DESIGN.md §15): dispatch stamps each solve
    #: job with a content-addressed store key, the first worker to
    #: compile a workflow publishes its tensors, and every later job on
    #: the same workflow -- any worker, any deadline/backend/faults --
    #: attaches them zero-copy instead of recompiling.  Disable for
    #: environments without ``/dev/shm`` (workers also degrade to plain
    #: compilation on their own if shared memory fails at runtime).
    arena: bool = True
    #: Deco constructor overrides for the worker engines (seed,
    #: num_samples, max_evaluations, beam_width...).
    engine: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.degrade_depth > self.reject_depth:
            raise ValidationError(
                f"degrade_depth ({self.degrade_depth}) must be <= "
                f"reject_depth ({self.reject_depth}): the ladder degrades before it rejects"
            )
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")


def _engine_spec(engine_overrides: dict) -> dict:
    """The picklable worker-engine spec (a cold Deco's :meth:`~repro.engine.deco.Deco.spec`)."""
    from repro.cloud import ec2_catalog
    from repro.engine.deco import Deco

    probe = Deco(ec2_catalog(), **engine_overrides)
    try:
        return probe.spec()
    finally:
        probe.close()


class DecoService:
    """Crash-safe solve-job runtime over a durable queue and warm workers."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.journal = JobJournal(self.config.journal_path)
        self.queue = DurableQueue(
            self.journal,
            reject_depth=self.config.reject_depth,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
        )
        self.cache = PlanCache(self.config.cache_capacity)
        self._spec = _engine_spec(dict(self.config.engine))
        if self.config.arena:
            # Probe (and start the resource tracker) in the parent BEFORE
            # any worker forks -- a worker-private tracker would unlink
            # store segments when that worker dies (see arena docs).
            from repro.parallel.arena import arena_available

            arena_available()
        self.pool = WarmWorkerPool(self._spec, workers=self.config.workers)
        self.started_at = time.time()
        self.degrade_admissions = 0
        # Problem-store bookkeeping: every key this dispatcher issued
        # (unlinked at close -- workers publish, the service owns the
        # namespace) and the lifetime attach/publish tallies.
        self._store_keys: set[str] = set()
        self._store_counters = {"hits": 0, "publishes": 0, "errors": 0}
        self._closed = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Replayed in-flight jobs (accepted before a crash) count as
        # recoveries; they are already back in the queue.
        self.recoveries = self.queue.recovered_inflight

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        payload: dict,
        *,
        tenant: str = "default",
        priority: str = "standard",
    ) -> JobRecord:
        """Run the admission ladder and accept (or refuse) one job.

        Raises :class:`~repro.common.errors.ValidationError` on a
        malformed payload and :class:`~repro.common.errors.AdmissionError`
        (with ``retry_after_s``) when the ladder's last rung is reached.
        """
        if self._closed:
            raise ValidationError("service is closed")
        payload = validate_payload(payload)
        key = canonical_key(payload, engine_config=self.config.engine)
        cached = self.cache.get(key)
        if cached is not None:
            # Rung 1: serve from cache.  Zero solver work, so admission
            # control does not apply -- but the job is still journaled
            # (accepted => exactly-once terminal holds for it too).
            job = self.queue.submit(
                payload, tenant=tenant, priority=priority, skip_admission=True
            )
            envelope = dict(cached)
            envelope["cache_hit"] = True
            return self.queue.finish(
                job.job_id, "completed", result=envelope, cache_hit=True
            )
        degraded = False
        reason = ""
        if (
            self.queue.depth >= self.config.degrade_depth
            and payload.get("backend") != "analytic"
        ):
            # Rung 3: shed load -- downgrade to the analytic backend
            # instead of refusing.  The envelope will carry the analytic
            # probability error bound so clients know what they got.
            payload = dict(payload)
            payload["backend"] = "analytic"
            degraded = True
            reason = "load_shed"
            self.degrade_admissions += 1
        job = self.queue.submit(
            payload,
            tenant=tenant,
            priority=priority,
            degraded=degraded,
            degrade_reason=reason,
        )
        job._cache_key = key  # type: ignore[attr-defined]
        return job

    # -- dispatcher --------------------------------------------------------

    def step(self) -> int:
        """One dispatcher turn: harvest finished jobs, dispatch queued ones.

        Returns the number of state transitions made (0 == idle turn).
        Single-threaded by design: only the dispatcher thread (or a test
        driving the service synchronously) may call it.
        """
        transitions = 0
        for active in self.pool.active():
            status, value = self.pool.poll(active)
            if status == "pending":
                continue
            transitions += 1
            if status == "done":
                self._finish_solved(active.job_id, value)
            elif status == "failed":
                self._dead_letter(active.job_id, value, retryable=False)
            else:  # crashed
                self._handle_crash(active.job_id, value)
        for slot in self.pool.idle_slots():
            job = self.queue.claim()
            if job is None:
                break
            hang = self.config.hang_after_s
            sd = job.payload.get("solve_deadline_s")
            if sd:
                # A watchdogged solve should finish within its budget
                # plus slack; a generous multiple still beats the global
                # hang limit for interactive jobs.
                hang = min(hang, float(sd) * 10.0 + 30.0)
            extras = None
            if (
                self.config.arena
                and job.payload.get("workflow")
                and not job.payload.get("wlog")
            ):
                skey = problem_store_key(job.payload, engine_spec=self._spec)
                self._store_keys.add(skey)
                extras = {"_problem_store": {"key": skey}}
            self.pool.dispatch(
                job.job_id, slot, job.payload, hang_after_s=hang, extras=extras
            )
            transitions += 1
        return transitions

    def _finish_solved(self, job_id: str, envelope: dict) -> None:
        job = self.queue.get(job_id)
        store = envelope.get("problem_store")
        if store:
            event = store.get("event")
            if event in ("hit", "race"):
                self._store_counters["hits"] += 1
            elif event == "publish":
                self._store_counters["publishes"] += 1
            elif event == "error":
                self._store_counters["errors"] += 1
        timed_out = bool(envelope.get("timed_out"))
        if job.degraded or timed_out:
            reason = job.degrade_reason or ("solve_timeout" if timed_out else "")
            self.queue.finish(
                job_id, "degraded", result=envelope,
                degraded=True, degrade_reason=reason,
            )
            return
        self.queue.finish(job_id, "completed", result=envelope)
        # Only full-fidelity, converged results are worth replaying.
        key = getattr(job, "_cache_key", None) or canonical_key(
            job.payload, engine_config=self.config.engine
        )
        self.cache.put(key, envelope)

    def _dead_letter(self, job_id: str, exc: BaseException, *, retryable: bool) -> None:
        job = self.queue.get(job_id)
        self.queue.finish(
            job_id,
            "dead_lettered",
            error={
                "type": type(exc).__name__,
                "message": str(exc),
                "attempts": job.attempts,
                "retryable": retryable,
            },
        )

    def _handle_crash(self, job_id: str, exc: BaseException) -> None:
        job = self.queue.get(job_id)
        self.recoveries += 1
        if job.attempts >= self.config.max_attempts:
            self._dead_letter(job_id, exc, retryable=True)
            return
        backoff = self.config.backoff_base_s * (2 ** (job.attempts - 1))
        self.queue.requeue(job_id, backoff_s=backoff)

    # -- lifecycle ---------------------------------------------------------

    def run_until_idle(self, timeout_s: float = 300.0) -> None:
        """Drive :meth:`step` until no job is queued or running.

        The synchronous way to consume the queue (tests, batch mode);
        the background thread does the same thing forever.
        """
        t_end = time.monotonic() + timeout_s
        while self.queue.depth > 0:
            if time.monotonic() > t_end:
                raise TimeoutError(
                    f"service not idle after {timeout_s:g}s "
                    f"({self.queue.depth} jobs still in flight)"
                )
            if self.step() == 0:
                time.sleep(self.config.poll_interval_s)

    def start(self) -> None:
        """Run the dispatcher in a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="deco-service-dispatcher", daemon=True
        )
        self._thread.start()

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                if self.step() == 0:
                    self._stop.wait(self.config.poll_interval_s)
            except Exception:
                # The dispatcher must survive any single job's weirdness;
                # the job itself was dead-lettered or will hit the hang
                # watchdog.  Pause briefly so a persistent fault cannot
                # spin the CPU.
                self._stop.wait(0.2)

    def stop(self) -> None:
        """Stop the dispatcher thread (idempotent; jobs stay queued)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def close(self) -> None:
        """Idempotent full shutdown: dispatcher, workers, journal."""
        if self._closed:
            return
        self._closed = True
        self.stop()
        self.pool.close()
        # The workers published under keys this dispatcher issued; with
        # the workers gone, unlink the names so nothing persists in
        # /dev/shm past the service (POSIX drops the backing pages once
        # the last mapping -- if any -- goes away).
        if self._store_keys:
            try:
                from repro.parallel.arena import unlink_segment

                for skey in self._store_keys:
                    unlink_segment(skey)
            except Exception:
                pass
            self._store_keys.clear()
        self.journal.close()

    def __enter__(self) -> "DecoService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- probes ------------------------------------------------------------

    def healthy(self) -> dict:
        """Liveness: the process is up and the journal is writable."""
        return {
            "ok": not self._closed,
            "uptime_s": round(time.time() - self.started_at, 3),
            "journal_appends": self.journal.appends,
        }

    def ready(self) -> dict:
        """Readiness: accepting jobs at full fidelity right now?

        ``degraded_mode`` flags the ladder's analytic rung being active
        -- still accepting, but load-shedding.
        """
        depth = self.queue.depth
        return {
            "ok": not self._closed and depth < self.config.reject_depth,
            "depth": depth,
            "degraded_mode": depth >= self.config.degrade_depth,
            "workers": self.pool.workers,
        }

    def stats(self) -> dict:
        counts = self.queue.counts()
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "depth": self.queue.depth,
            "jobs": counts,
            "rejected": self.queue.rejected,
            "rate_limited": self.queue.rate_limited,
            "degrade_admissions": self.degrade_admissions,
            "recoveries": self.recoveries,
            "worker_respawns": self.pool.respawns,
            "worker_pids": self.pool.worker_pids(),
            "serial_fallback": self.pool.is_serial,
            "cache": self.cache.stats(),
            "problem_store": {
                "enabled": self.config.arena,
                "keys": len(self._store_keys),
                **self._store_counters,
            },
            "journal_appends": self.journal.appends,
        }

    # -- queries -----------------------------------------------------------

    def job_status(self, job_id: str) -> dict:
        """The client-facing status document for one job."""
        job = self.queue.get(job_id)
        doc: dict[str, Any] = {
            "job_id": job.job_id,
            "state": job.state,
            "tenant": job.tenant,
            "priority": job.priority,
            "attempts": job.attempts,
            "degraded": job.degraded,
            "degrade_reason": job.degrade_reason,
            "cache_hit": job.cache_hit,
            "submitted_at": job.submitted_at,
        }
        if job.terminal:
            doc["finished_at"] = job.finished_at
            doc["latency_s"] = job.latency_s()
            if job.result is not None:
                doc["result"] = job.result
            if job.error is not None:
                doc["error"] = job.error
        return doc
