"""Worker-process side of the job service.

Follows the :mod:`repro.parallel.workers` idiom: module-level functions
(picklable by reference) operating on worker-resident singletons that
the initializer rebuilds from a small spec.  A service worker keeps one
Deco engine *per backend* alive -- the degradation ladder downgrades
jobs to the analytic backend, and a downgraded job must not evict the
warm full-fidelity engine the next normal job needs.

Chaos hooks: a payload may carry ``"inject"`` (``"exit"`` -- die like a
SIGKILL'd process, ``"raise"`` -- fail deterministically, ``"sleep:N"``
-- stall to trip the hang watchdog).  They exist for the chaos harness
and the CI smoke test; production payloads simply omit the key.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Mapping

from repro.common.errors import ValidationError

if TYPE_CHECKING:
    from repro.engine.deco import Deco
    from repro.workflow.dag import Workflow

__all__ = ["init_service_worker", "ping_job", "solve_job", "build_workflow"]

_SPEC: dict | None = None
_ENGINES: "dict[str, Deco]" = {}


def init_service_worker(spec: Mapping[str, object]) -> None:
    """Remember the engine spec; engines are built lazily per backend."""
    global _SPEC
    _SPEC = dict(spec)
    _ENGINES.clear()


def _engine(backend: str) -> "Deco":
    """This worker's resident engine for ``backend`` (built on first use)."""
    if _SPEC is None:
        raise RuntimeError("service worker used before init_service_worker")
    engine = _ENGINES.get(backend)
    if engine is None:
        from repro.engine.deco import Deco

        spec = dict(_SPEC)
        spec["backend"] = backend
        engine = _ENGINES[backend] = Deco.from_spec(spec)
    return engine


def build_workflow(ref: Mapping[str, Any]) -> "Workflow":
    """Materialize the workflow a payload references.

    ``{"app": ...}`` runs the named synthetic generator (montage takes
    ``degrees`` or ``tasks``, the others ``tasks``); ``{"dax": path}``
    parses a Pegasus DAX file.  Deterministic: the same ref always
    yields the same workflow, which is what makes the plan cache sound.
    """
    if "dax" in ref:
        from repro.workflow import parse_dax

        return parse_dax(ref["dax"])
    from repro.workflow import generators

    app = ref["app"]
    seed = int(ref.get("seed", 0))
    if app == "montage":
        if "degrees" in ref:
            return generators.montage(degrees=float(ref["degrees"]), seed=seed)
        return generators.montage(num_tasks=int(ref.get("tasks", 50)), seed=seed)
    generator = getattr(generators, app, None)
    if generator is None:
        raise ValidationError(f"unknown workflow app {app!r}")
    return generator(num_tasks=int(ref.get("tasks", 100)), seed=seed)


def _build_faults(config: Mapping[str, Any] | None):
    if not config:
        return None
    from repro.faults.model import FaultModel

    return FaultModel(**dict(config))


def _run_injection(inject: str) -> None:
    if inject == "exit":
        # Simulate a hard worker death (OOM-kill, segfault): no Python
        # cleanup, no exception crossing the pool -- the parent sees a
        # BrokenProcessPool, exactly like a real crash.
        os._exit(1)
    elif inject == "raise":
        raise ValidationError("chaos injection: deterministic job failure")
    elif inject.startswith("sleep:"):
        time.sleep(float(inject.split(":", 1)[1]))
    else:
        raise ValidationError(f"unknown chaos injection {inject!r}")


def ping_job(_payload: object = None) -> dict:
    """Heartbeat: proves the worker is alive and reports its pid."""
    return {"pid": os.getpid(), "engines": sorted(_ENGINES)}


def solve_job(payload: dict) -> dict:
    """Solve one job payload; returns a JSON-ready result envelope.

    The envelope carries the full plan plus the provenance a client
    needs to judge it: which backend actually solved it, whether the
    solve watchdog fired, and -- for analytic-backend (degraded) plans
    -- the backend's probability-estimate error bound.
    """
    inject = payload.get("inject")
    if inject:
        _run_injection(str(inject))
    backend = payload.get("backend", "gpu")
    engine = _engine(backend)
    workflow = build_workflow(payload["workflow"])
    faults = _build_faults(payload.get("faults"))
    t0 = time.monotonic()
    if payload.get("wlog"):
        from repro.wlog.imports import ImportRegistry

        registry = ImportRegistry()
        registry.register_cloud("amazonec2", engine.catalog)
        app = payload["workflow"].get("app", "workflow")
        registry.register_workflow(app, workflow)
        registry.register_workflow("workflow", workflow)
        plan = engine.solve_program(payload["wlog"], registry)
    else:
        plan = engine.schedule(
            workflow,
            payload.get("deadline", "medium"),
            deadline_percentile=float(payload.get("percentile", 96.0)),
            faults=faults,
            solve_deadline_s=payload.get("solve_deadline_s"),
        )
    envelope = {
        "plan": plan.decision_dict(),
        "timed_out": plan.timed_out,
        "solve_seconds": round(time.monotonic() - t0, 6),
        "type_counts": plan.type_counts(),
        "workflow_tasks": len(plan.assignment),
        "worker_pid": os.getpid(),
    }
    if backend == "analytic":
        from repro.bench.perf import ANALYTIC_PROB_ERROR_BOUND

        envelope["probability_error_bound"] = ANALYTIC_PROB_ERROR_BOUND
    return envelope
