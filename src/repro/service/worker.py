"""Worker-process side of the job service.

Follows the :mod:`repro.parallel.workers` idiom: module-level functions
(picklable by reference) operating on worker-resident singletons that
the initializer rebuilds from a small spec.  A service worker keeps one
Deco engine *per backend* alive -- the degradation ladder downgrades
jobs to the analytic backend, and a downgraded job must not evict the
warm full-fidelity engine the next normal job needs.

Chaos hooks: a payload may carry ``"inject"`` (``"exit"`` -- die like a
SIGKILL'd process, ``"raise"`` -- fail deterministically, ``"sleep:N"``
-- stall to trip the hang watchdog).  They exist for the chaos harness
and the CI smoke test; production payloads simply omit the key.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Mapping

from repro.common.errors import ValidationError

if TYPE_CHECKING:
    from repro.engine.deco import Deco
    from repro.workflow.dag import Workflow

__all__ = ["init_service_worker", "ping_job", "solve_job", "build_workflow"]

_SPEC: dict | None = None
_ENGINES: "dict[str, Deco]" = {}
# Shared-memory problem store (worker side): store key -> (segment or
# owning handle, base CompiledProblem).  Holding the mapping keeps the
# zero-copy arrays valid; dropping an entry lets its finalizer close the
# mapping lazily once no solve aliases it.
_STORE: "OrderedDict[str, tuple[object, object]]" = OrderedDict()
_STORE_LIMIT = 4


def init_service_worker(spec: Mapping[str, object]) -> None:
    """Remember the engine spec; engines are built lazily per backend."""
    global _SPEC
    _SPEC = dict(spec)
    _ENGINES.clear()
    _STORE.clear()


def _engine(backend: str) -> "Deco":
    """This worker's resident engine for ``backend`` (built on first use)."""
    if _SPEC is None:
        raise RuntimeError("service worker used before init_service_worker")
    engine = _ENGINES.get(backend)
    if engine is None:
        from repro.engine.deco import Deco

        spec = dict(_SPEC)
        spec["backend"] = backend
        engine = _ENGINES[backend] = Deco.from_spec(spec)
    return engine


def build_workflow(ref: Mapping[str, Any]) -> "Workflow":
    """Materialize the workflow a payload references.

    ``{"app": ...}`` runs the named synthetic generator (montage takes
    ``degrees`` or ``tasks``, the others ``tasks``); ``{"dax": path}``
    parses a Pegasus DAX file.  Deterministic: the same ref always
    yields the same workflow, which is what makes the plan cache sound.
    """
    if "dax" in ref:
        from repro.workflow import parse_dax

        return parse_dax(ref["dax"])
    from repro.workflow import generators

    app = ref["app"]
    seed = int(ref.get("seed", 0))
    if app == "montage":
        if "degrees" in ref:
            return generators.montage(degrees=float(ref["degrees"]), seed=seed)
        return generators.montage(num_tasks=int(ref.get("tasks", 50)), seed=seed)
    generator = getattr(generators, app, None)
    if generator is None:
        raise ValidationError(f"unknown workflow app {app!r}")
    return generator(num_tasks=int(ref.get("tasks", 100)), seed=seed)


def _build_faults(config: Mapping[str, Any] | None):
    if not config:
        return None
    from repro.faults.model import FaultModel

    return FaultModel(**dict(config))


def _run_injection(inject: str) -> None:
    if inject == "exit":
        # Simulate a hard worker death (OOM-kill, segfault): no Python
        # cleanup, no exception crossing the pool -- the parent sees a
        # BrokenProcessPool, exactly like a real crash.
        os._exit(1)
    elif inject == "raise":
        raise ValidationError("chaos injection: deterministic job failure")
    elif inject.startswith("sleep:"):
        time.sleep(float(inject.split(":", 1)[1]))
    else:
        raise ValidationError(f"unknown chaos injection {inject!r}")


def _store_remember(skey: str, handle: object, problem: object) -> None:
    _STORE[skey] = (handle, problem)
    _STORE.move_to_end(skey)
    while len(_STORE) > _STORE_LIMIT:
        _STORE.popitem(last=False)


def _adopt_stored_problem(engine: "Deco", workflow: "Workflow", skey: str) -> str:
    """Attach (or remember to publish) the job's base compiled problem.

    Returns the event for the result envelope: ``"hit"`` -- the base
    problem was mapped zero-copy from the store and compilation is
    skipped; ``"publish"`` -- nobody has compiled this key yet, so this
    worker will publish its compilation after the solve (the caller
    invokes :func:`_publish_stored_problem`); ``"off"`` -- shared
    memory is unavailable here.  Any arena hiccup degrades to a plain
    compile -- the store is purely an optimization.
    """
    from repro.engine.compiler import problem_from_segment
    from repro.parallel.arena import ArenaError, arena_available, attach_segment

    if not arena_available():
        return "off"
    cached = _STORE.get(skey)
    if cached is not None:
        _STORE.move_to_end(skey)
        engine.adopt_problem(workflow, cached[1])
        return "hit"
    try:
        segment = attach_segment(skey)
    except ArenaError:
        return "publish"
    base = problem_from_segment(segment, engine.catalog, workflow=workflow)
    _store_remember(skey, segment, base)
    engine.adopt_problem(workflow, base)
    return "hit"


def _publish_stored_problem(engine: "Deco", workflow: "Workflow", skey: str) -> str:
    """Publish the engine's (now memoized) base compilation under ``skey``.

    Runs after the solve so the compile cost is paid exactly where it
    always was; a concurrent worker winning the publish race just means
    this one attaches next job.  The runtime unlinks every key it issued
    at shutdown, so SIGKILLing this worker leaks nothing persistent.
    """
    from repro.engine.compiler import export_problem_arrays
    from repro.parallel.arena import publish_segment

    base = engine._compiled(workflow, None)
    arrays, meta = export_problem_arrays(base)
    try:
        handle = publish_segment(skey, arrays, meta)
    except FileExistsError:
        return "race"
    except Exception:
        return "error"
    _store_remember(skey, handle, base)
    return "publish"


def ping_job(_payload: object = None) -> dict:
    """Heartbeat: proves the worker is alive and reports its pid."""
    return {"pid": os.getpid(), "engines": sorted(_ENGINES)}


def solve_job(payload: dict) -> dict:
    """Solve one job payload; returns a JSON-ready result envelope.

    The envelope carries the full plan plus the provenance a client
    needs to judge it: which backend actually solved it, whether the
    solve watchdog fired, and -- for analytic-backend (degraded) plans
    -- the backend's probability-estimate error bound.
    """
    inject = payload.get("inject")
    if inject:
        _run_injection(str(inject))
    backend = payload.get("backend", "gpu")
    engine = _engine(backend)
    workflow = build_workflow(payload["workflow"])
    faults = _build_faults(payload.get("faults"))
    store = payload.get("_problem_store")
    store_event = None
    if store and not payload.get("wlog"):
        skey = str(store["key"])
        try:
            store_event = _adopt_stored_problem(engine, workflow, skey)
        except Exception:
            store_event = "error"
    t0 = time.monotonic()
    if payload.get("wlog"):
        from repro.wlog.imports import ImportRegistry

        registry = ImportRegistry()
        registry.register_cloud("amazonec2", engine.catalog)
        app = payload["workflow"].get("app", "workflow")
        registry.register_workflow(app, workflow)
        registry.register_workflow("workflow", workflow)
        plan = engine.solve_program(payload["wlog"], registry)
    else:
        plan = engine.schedule(
            workflow,
            payload.get("deadline", "medium"),
            deadline_percentile=float(payload.get("percentile", 96.0)),
            faults=faults,
            solve_deadline_s=payload.get("solve_deadline_s"),
        )
    if store_event == "publish":
        try:
            store_event = _publish_stored_problem(engine, workflow, skey)
        except Exception:
            store_event = "error"
    envelope = {
        "plan": plan.decision_dict(),
        "timed_out": plan.timed_out,
        "solve_seconds": round(time.monotonic() - t0, 6),
        "type_counts": plan.type_counts(),
        "workflow_tasks": len(plan.assignment),
        "worker_pid": os.getpid(),
    }
    if store_event is not None:
        envelope["problem_store"] = {"key": skey, "event": store_event}
    if backend == "analytic":
        from repro.bench.perf import ANALYTIC_PROB_ERROR_BOUND

        envelope["probability_error_bound"] = ANALYTIC_PROB_ERROR_BOUND
    return envelope
