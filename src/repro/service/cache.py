"""Plan-result cache keyed by a canonical problem hash.

Two submissions describe the same optimization problem iff their
canonical keys match: the key covers everything that influences the
plan -- the WLog program text, the workflow identity (generator app +
parameters + seed, or DAX path), cloud/solver knobs (deadline,
percentile, backend, seeds, evaluation budget) and the faults config.
Wall-clock-only knobs (``solve_deadline_s``) are *excluded*: an ample
watchdog is bit-identical to an unbounded solve, so it must not
fragment the cache, and degraded/timed-out results are never stored in
the first place (only full-fidelity plans are worth replaying).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Mapping

from repro.common.errors import ValidationError

__all__ = ["canonical_key", "problem_store_key", "PlanCache"]

#: Payload fields that affect the resulting plan.  ``solve_deadline_s``
#: and chaos hooks are deliberately absent (wall-clock / test-only).
_KEY_FIELDS = ("workflow", "wlog", "deadline", "percentile", "backend", "faults")


def canonical_key(payload: Mapping[str, Any], *, engine_config: Mapping[str, Any] | None = None) -> str:
    """SHA-256 over the canonical JSON of the plan-determining inputs."""
    material = {field: payload.get(field) for field in _KEY_FIELDS}
    if engine_config:
        material["engine"] = dict(engine_config)
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def problem_store_key(payload: Mapping[str, Any], *, engine_spec: Mapping[str, Any]) -> str:
    """Content key for the shared-memory compiled-problem store.

    Coarser than :func:`canonical_key` on purpose: the store hosts the
    *base* compilation (sample tensors, level schedule -- everything
    upstream of deadline/faults derivation), which depends only on the
    workflow reference and the tensor-generation knobs of the engine
    spec.  Workflow building is deterministic
    (:func:`~repro.service.worker.build_workflow`), so identical keys
    guarantee bitwise-identical tensors -- jobs that differ only in
    deadline, percentile, backend or faults all attach one segment.
    """
    material = {
        "store": "problem-store-v1",
        "workflow": payload.get("workflow"),
        "seed": engine_spec.get("seed", 0),
        "num_samples": engine_spec.get("num_samples"),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class PlanCache:
    """Thread-safe LRU over terminal result envelopes."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValidationError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            # Copy so callers annotating the envelope (cache_hit flags,
            # job ids) do not mutate the cached master.
            return json.loads(json.dumps(entry))

    def put(self, key: str, result: dict) -> None:
        with self._lock:
            self._entries[key] = json.loads(json.dumps(result))
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
