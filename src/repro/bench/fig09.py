"""Figure 9: ensemble scores, Deco vs SPSS, across budgets Bgt1-Bgt5.

The paper builds ensembles of Ligo workflows under five ensemble types,
fixes the deadline at D3, sweeps five budgets between MinBudget (run
the cheapest single workflow) and MaxBudget (run everything), and
compares the achieved score (Eq. 4).  A workflow only *counts* if its
probabilistic deadline is met (Eq. 6) -- the trap for SPSS, whose
mean-based plans can be admitted yet fail the probabilistic check.

Expected shapes: equal scores at Bgt1 and Bgt5 (both algorithms can
only run one / all workflows), Deco >= SPSS in between, and SPSS's
average per-workflow cost above Deco's.
"""

from __future__ import annotations

from repro.baselines.spss import spss_decide
from repro.bench.harness import BenchConfig, is_full_profile
from repro.engine.ensemble import EnsembleDriver
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.workflow.ensembles import ENSEMBLE_TYPES, Ensemble, make_ensemble
from repro.workflow.generators import montage

__all__ = ["fig09_ensemble_scores", "build_bench_ensemble"]


def build_bench_ensemble(
    kind: str,
    config: BenchConfig,
    deadline_level: int = 3,
) -> Ensemble:
    """An ensemble with per-member deadlines at level ``deadline_level``.

    Member deadlines interpolate between each member's Dmin and Dmax
    presets: level k of 5 sits at fraction k/6 of the [tight, loose]
    range (level 3 = the medium-ish default).

    The paper builds Fig. 9 from Ligo ensembles; under our calibration
    Ligo is so CPU-dominant (and the m1 price ladder so linear in CPU
    speed) that Deco and SPSS coincide on it.  The figure therefore uses
    the paper's I/O-bound application (Montage), where per-task type
    mixing and probabilistic feasibility actually differentiate the
    optimizers -- see EXPERIMENTS.md.
    """
    if is_full_profile():
        num, sizes = 30, (20, 100, 1000)
    else:
        num, sizes = 10, (20, 50, 100)
    ensemble = make_ensemble(kind, montage, num, sizes=sizes, seed=config.seed)
    deco = config.deco()

    def deadline_for(member):
        presets = deco.presets(member.workflow)
        frac = deadline_level / 6.0
        return presets.tight + frac * (presets.loose - presets.tight)

    return ensemble.with_constraints(
        budget=float("1e18"),  # replaced per budget point below
        deadline_for=deadline_for,
        deadline_percentile=config.deadline_percentile,
    )


def _completed_score(
    decision_priorities,
    plans_by_priority,
    ensemble: Ensemble,
    config: BenchConfig,
) -> tuple[float, int]:
    """Score counting only members whose probabilistic deadline holds."""
    backend = VectorizedBackend()
    score, completed = 0.0, 0
    members = {m.priority: m for m in ensemble.members}
    for prio in decision_priorities:
        member = members[prio]
        assignment = plans_by_priority[prio]
        problem = CompiledProblem.compile(
            member.workflow,
            config.catalog,
            member.deadline,
            member.deadline_percentile,
            config.num_samples,
            seed=config.seed,
            runtime_model=config.runtime_model,
        )
        ev = backend.evaluate(problem, problem.state_from_assignment(assignment))
        if ev.feasible:
            score += 2.0 ** (-prio)
            completed += 1
    return score, completed


def fig09_ensemble_scores(
    config: BenchConfig | None = None,
    kinds: tuple[str, ...] = ENSEMBLE_TYPES,
    num_budgets: int = 5,
) -> list[dict]:
    """One row per (ensemble type, budget): Deco vs SPSS scores."""
    config = config or BenchConfig()
    rows = []
    for kind in kinds:
        base = build_bench_ensemble(kind, config)
        deco = config.deco(max_evaluations=600)
        driver = EnsembleDriver(deco)
        plans = driver.member_plans(base, workers=config.workers)
        deco_costs = {p: plans[p].expected_cost for p in plans}

        # Budget grid from the baseline's own cost estimates (MinBudget =
        # cheapest single member, MaxBudget = everything), as in the paper.
        probe = spss_decide(
            Ensemble(base.name, base.members, budget=float("1e18")),
            config.catalog,
            config.runtime_model,
        )
        baseline_costs = probe.costs or deco_costs
        min_budget = min(baseline_costs.values())
        max_budget = sum(baseline_costs.values())
        budgets = [
            min_budget + i * (max_budget - min_budget) / (num_budgets - 1)
            for i in range(num_budgets)
        ]

        for i, budget in enumerate(budgets, start=1):
            ens = Ensemble(base.name, base.members, budget=budget)
            deco_dec = driver.decide(ens, plans=plans)
            spss_dec = spss_decide(ens, config.catalog, config.runtime_model)
            deco_score, deco_done = _completed_score(
                deco_dec.admitted_priorities,
                {p: dict(plans[p].assignment) for p in deco_dec.admitted_priorities},
                ens,
                config,
            )
            spss_score, spss_done = _completed_score(
                spss_dec.admitted_priorities, spss_dec.plans, ens, config
            )
            rows.append(
                {
                    "ensemble": kind,
                    "budget_level": f"Bgt{i}",
                    "budget": budget,
                    "deco_score": deco_score,
                    "spss_score": spss_score,
                    "score_norm": (deco_score / spss_score) if spss_score > 0 else float("inf"),
                    "deco_completed": deco_done,
                    "spss_completed": spss_done,
                    "deco_avg_cost": (
                        deco_dec.total_cost / deco_dec.num_admitted
                        if deco_dec.num_admitted
                        else 0.0
                    ),
                    "spss_avg_cost": (
                        spss_dec.total_cost / spss_dec.num_admitted
                        if spss_dec.num_admitted
                        else 0.0
                    ),
                }
            )
    return rows
