"""Experiment harness: regenerates every table and figure of Section 6.

One driver module per experiment; each returns structured rows (lists
of dicts) and can print the same table/series the paper reports.  The
``benchmarks/`` tree wraps these drivers in pytest-benchmark entries.

Scale: drivers default to a *quick* profile (smaller ensembles, fewer
repetitions) so the whole suite runs in minutes; set the environment
variable ``REPRO_BENCH_FULL=1`` for paper-scale parameters.
"""

from repro.bench.harness import BenchConfig, format_table, normalize
from repro.bench.fig01 import fig01_instance_configs
from repro.bench.fig02 import fig02_runtime_variance
from repro.bench.calibration import (
    table2_io_distributions,
    fig06_network_dynamics,
    fig07_network_histograms,
)
from repro.bench.fig08 import fig08_probabilistic_deadline_sweep
from repro.bench.fig09 import fig09_ensemble_scores
from repro.bench.fig10 import fig10_follow_the_cost
from repro.bench.fig11 import fig11_deadline_sensitivity
from repro.bench.parallel import (
    bench_parallel,
    write_bench_parallel_json,
)
from repro.bench.perf import (
    solver_speedup,
    incremental_speedup,
    incremental_search,
    analytic_speedup,
    analytic_accuracy,
    cascade_search,
    dominance_search,
    distributed_search,
    optimization_overhead,
    write_bench_solver_json,
)
from repro.bench.faults import (
    bench_faults,
    write_bench_faults_json,
)
from repro.bench.ablations import (
    ablation_probabilistic_vs_deterministic,
    ablation_mc_iterations,
    ablation_astar_pruning,
    ablation_search_seeds,
    ablation_failure_injection,
)

__all__ = [
    "BenchConfig",
    "format_table",
    "normalize",
    "fig01_instance_configs",
    "fig02_runtime_variance",
    "table2_io_distributions",
    "fig06_network_dynamics",
    "fig07_network_histograms",
    "fig08_probabilistic_deadline_sweep",
    "fig09_ensemble_scores",
    "fig10_follow_the_cost",
    "fig11_deadline_sensitivity",
    "bench_parallel",
    "write_bench_parallel_json",
    "solver_speedup",
    "incremental_speedup",
    "incremental_search",
    "analytic_speedup",
    "analytic_accuracy",
    "cascade_search",
    "dominance_search",
    "distributed_search",
    "optimization_overhead",
    "write_bench_solver_json",
    "bench_faults",
    "write_bench_faults_json",
    "ablation_probabilistic_vs_deterministic",
    "ablation_mc_iterations",
    "ablation_astar_pruning",
    "ablation_search_seeds",
    "ablation_failure_injection",
]
