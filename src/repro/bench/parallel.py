"""Parallel-runtime benchmark: serial vs N-worker wall-clock per fan-out site.

Produces the repo's ``BENCH_parallel.json``.  Three rows, one per hot
fan-out site the :mod:`repro.parallel` runtime covers:

* ``run_many`` -- the Fig.-2 replication loop (100 simulated executions
  of one Deco-optimized Montage plan by default);
* ``member_plans`` -- independent per-member Deco solves of an ensemble;
* ``fig02_driver`` -- a whole bench driver through the shared
  ``BenchConfig.workers`` harness hook (solve + replications end to end).

Every row records serial and parallel wall-clock, speedup, parallel
efficiency (speedup / workers), the worker count and the host CPU count
-- and an ``identical`` flag asserting the parallel results are
bit-identical to the serial ones, which is the determinism contract the
runtime exists to keep.  No minimum speedup is asserted here: a 1-core
host legitimately reports speedup < 1, and the JSON says so honestly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.harness import BenchConfig
from repro.engine.ensemble import EnsembleDriver
from repro.parallel.executor import host_cpu_count, resolve_workers
from repro.workflow.ensembles import make_ensemble
from repro.workflow.generators import montage

__all__ = [
    "bench_parallel",
    "default_bench_workers",
    "host_cpu_count",  # canonical home: repro.parallel.executor
    "write_bench_parallel_json",
]


def default_bench_workers() -> int:
    """Comparison worker count when none is requested: 2-4, host-bounded."""
    return max(2, min(4, host_cpu_count()))


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _row(
    site: str,
    subject: str,
    units: int,
    workers: int,
    serial_seconds: float,
    parallel_seconds: float,
    identical: bool,
) -> dict:
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    cpus = host_cpu_count()
    return {
        "site": site,
        "subject": subject,
        "units": units,
        "workers": workers,
        "host_cpu_count": cpus,
        # Honesty flag for readers of the JSON: with more workers than
        # usable CPUs the processes time-share cores, so speedup < 1 is
        # the host's fault, not a runtime regression.
        "oversubscribed": workers > cpus,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "efficiency": speedup / workers,
        "identical": identical,
    }


def bench_parallel(
    config: BenchConfig | None = None,
    workers: int | None = None,
    runs: int = 100,
    degrees: float = 4.0,
    ensemble_members: int = 6,
) -> list[dict]:
    """One row per fan-out site: serial vs ``workers`` wall-clock."""
    config = config or BenchConfig()
    nworkers = resolve_workers(workers) if workers is not None else default_bench_workers()

    # Site 1: simulation replications (the Fig.-2 / acceptance shape:
    # `runs` executions of one Deco-optimized plan).
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()
    plan = deco.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
    sim = config.simulator()
    serial_results, t_serial = _timed(
        lambda: sim.run_many(wf, plan.assignment, runs, workers=1)
    )
    parallel_results, t_parallel = _timed(
        lambda: sim.run_many(wf, plan.assignment, runs, workers=nworkers)
    )
    rows = [
        _row(
            "run_many",
            wf.name,
            runs,
            nworkers,
            t_serial,
            t_parallel,
            serial_results == parallel_results,
        )
    ]

    # Site 2: independent per-member ensemble solves.
    member_deco = config.deco(max_evaluations=min(600, config.max_evaluations))
    driver = EnsembleDriver(member_deco)
    ensemble = make_ensemble(
        "uniform_unsorted", montage, ensemble_members, sizes=(20, 50), seed=config.seed
    ).with_constraints(
        budget=float("1e18"),
        deadline_for=lambda m: member_deco.presets(m.workflow).medium,
        deadline_percentile=config.deadline_percentile,
    )
    serial_plans, t_serial = _timed(lambda: driver.member_plans(ensemble, workers=1))
    parallel_plans, t_parallel = _timed(
        lambda: driver.member_plans(ensemble, workers=nworkers)
    )
    plans_identical = {p: plan.decision_dict() for p, plan in serial_plans.items()} == {
        p: plan.decision_dict() for p, plan in parallel_plans.items()
    }
    rows.append(
        _row(
            "member_plans",
            ensemble.name,
            len(ensemble.members),
            nworkers,
            t_serial,
            t_parallel,
            plans_identical,
        )
    )

    # Site 3: a whole bench driver through the BenchConfig.workers hook
    # (fig02 = solve once, then replicate; end-to-end wall-clock).
    from repro.bench.fig02 import fig02_runtime_variance

    def driver_config(nw: int) -> BenchConfig:
        return BenchConfig(
            seed=config.seed,
            num_samples=config.num_samples,
            max_evaluations=config.max_evaluations,
            runs_per_plan=config.runs_per_plan,
            deadline_percentile=config.deadline_percentile,
            workers=nw,
        )

    serial_rows, t_serial = _timed(
        lambda: fig02_runtime_variance(driver_config(1), degrees=(1.0,))
    )
    parallel_rows, t_parallel = _timed(
        lambda: fig02_runtime_variance(driver_config(nworkers), degrees=(1.0,))
    )
    rows.append(
        _row(
            "fig02_driver",
            "fig02[montage-1]",
            len(serial_rows),
            nworkers,
            t_serial,
            t_parallel,
            json.dumps(serial_rows, sort_keys=True)
            == json.dumps(parallel_rows, sort_keys=True),
        )
    )
    return rows


def write_bench_parallel_json(
    path: str | Path,
    config: BenchConfig | None = None,
    workers: int | None = None,
    runs: int = 100,
    degrees: float = 4.0,
    rows: list[dict] | None = None,
) -> dict:
    """Write the machine-readable runtime benchmark (``BENCH_parallel.json``).

    The headline ``speedup`` is the ``run_many`` site's (the acceptance
    metric); ``identical`` aggregates the per-site determinism checks.
    Pass precomputed ``rows`` to reuse measurements a caller already made.
    """
    if rows is None:
        rows = bench_parallel(config, workers=workers, runs=runs, degrees=degrees)
    from repro.parallel.arena import arena_available

    payload = {
        "benchmark": "parallel_runtime",
        "unit": "s",
        "host_cpu_count": host_cpu_count(),
        "arena_available": arena_available(),
        "workers": rows[0]["workers"],
        "speedup": rows[0]["speedup"],
        "identical": all(r["identical"] for r in rows),
        "rows": rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=float) + "\n")
    return payload
