"""Fault ablation: fault-oblivious vs fault-aware provisioning.

Produces the repo's ``BENCH_faults.json``.  Both plans are solved for
the same workflow/deadline; the *oblivious* plan assumes a perfect
cloud, the *aware* plan prices candidates under the declared
:class:`~repro.faults.FaultModel` (expected retries inflate the task
time tensor via :meth:`CompiledProblem.with_faults`).  Both plans are
then executed under the *same* injected fault environment and compared
on the paper's acceptance metric, P(makespan <= deadline).

The payload also carries the determinism contract: every fault-injected
``run_many`` batch is repeated with worker processes and must be
bit-identical to the serial batch (``identical`` flags).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.harness import BenchConfig
from repro.bench.parallel import default_bench_workers, host_cpu_count
from repro.cloud.simulator import CloudSimulator, ExecutionResult
from repro.engine.plan import ProvisioningPlan
from repro.faults import FaultModel, RecoveryPolicy
from repro.parallel.executor import resolve_workers
from repro.workflow.dag import Workflow
from repro.workflow.generators import montage

__all__ = ["bench_faults", "write_bench_faults_json"]


def _deadline_fraction(results: list[ExecutionResult], deadline: float) -> float:
    return sum(1 for r in results if r.meets_deadline(deadline)) / len(results)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _plan_row(
    label: str,
    plan: ProvisioningPlan,
    sim: CloudSimulator,
    workflow: Workflow,
    runs: int,
    nworkers: int,
    faults: FaultModel,
    recovery: RecoveryPolicy,
) -> dict:
    def batch(workers: int) -> list[ExecutionResult]:
        return sim.run_many(
            workflow,
            plan.assignment,
            runs,
            faults=faults,
            recovery=recovery,
            on_abort="record",
            workers=workers,
        )

    serial = batch(1)
    parallel = batch(nworkers)
    completed = [r for r in serial if not r.aborted]
    return {
        "plan": label,
        "planned_cost": plan.expected_cost,
        "deadline": plan.deadline,
        "runs": runs,
        "aborted": sum(1 for r in serial if r.aborted),
        "p_deadline": _deadline_fraction(serial, plan.deadline),
        "mean_makespan": _mean([r.makespan for r in completed]),
        "mean_cost": _mean([r.cost for r in completed]),
        "mean_attempts": _mean(
            [float(t.attempts) for r in completed for t in r.task_records]
        ),
        "identical": serial == parallel,
    }


def bench_faults(
    config: BenchConfig | None = None,
    workers: int | None = None,
    runs: int = 60,
    degrees: float = 2.0,
    failure_rate: float = 0.12,
    mtbf: float = float("inf"),
    max_retries: int = 3,
    deadline: float | str = "medium",
) -> list[dict]:
    """Two rows (oblivious/aware): same injected faults, same deadline."""
    config = config or BenchConfig()
    nworkers = resolve_workers(workers) if workers is not None else default_bench_workers()

    faults = FaultModel(task_failure_rate=failure_rate, instance_mtbf=mtbf)
    recovery = RecoveryPolicy(max_retries=max_retries)
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()

    oblivious = deco.schedule(
        wf, deadline, deadline_percentile=config.deadline_percentile
    )
    aware = deco.schedule(
        wf,
        deadline,
        deadline_percentile=config.deadline_percentile,
        faults=faults,
        recovery=recovery,
    )

    sim = config.simulator()
    rows = [
        _plan_row("oblivious", oblivious, sim, wf, runs, nworkers, faults, recovery),
        _plan_row("aware", aware, sim, wf, runs, nworkers, faults, recovery),
    ]
    for row in rows:
        row.update(
            workers=nworkers,
            failure_rate=failure_rate,
            mtbf=mtbf,
            max_retries=max_retries,
        )
    return rows


def write_bench_faults_json(
    path: str | Path,
    config: BenchConfig | None = None,
    workers: int | None = None,
    runs: int = 60,
    degrees: float = 2.0,
    failure_rate: float = 0.12,
    mtbf: float = float("inf"),
    max_retries: int = 3,
    rows: list[dict] | None = None,
) -> dict:
    """Write the machine-readable fault ablation (``BENCH_faults.json``).

    The headline numbers are the two P(deadline met) estimates;
    ``aware_beats_oblivious`` is the acceptance flag and ``identical``
    aggregates the serial-vs-parallel determinism checks.
    """
    if rows is None:
        rows = bench_faults(
            config,
            workers=workers,
            runs=runs,
            degrees=degrees,
            failure_rate=failure_rate,
            mtbf=mtbf,
            max_retries=max_retries,
        )
    by_plan = {row["plan"]: row for row in rows}
    payload = {
        "benchmark": "fault_ablation",
        "host_cpu_count": host_cpu_count(),
        "workers": rows[0]["workers"],
        "failure_rate": rows[0]["failure_rate"],
        "max_retries": rows[0]["max_retries"],
        "p_deadline_oblivious": by_plan["oblivious"]["p_deadline"],
        "p_deadline_aware": by_plan["aware"]["p_deadline"],
        "aware_beats_oblivious": by_plan["aware"]["p_deadline"]
        > by_plan["oblivious"]["p_deadline"],
        "identical": all(row["identical"] for row in rows),
        "rows": rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=float) + "\n")
    return payload
