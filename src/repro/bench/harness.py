"""Shared experiment configuration and table formatting."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cloud.instance_types import Catalog, ec2_catalog
from repro.cloud.simulator import CloudSimulator
from repro.common.rng import RngService
from repro.engine.deco import Deco
from repro.parallel.executor import resolve_workers, workers_from_env
from repro.workflow.runtime_model import RuntimeModel

__all__ = ["BenchConfig", "format_table", "normalize", "is_full_profile"]


def is_full_profile() -> bool:
    """Whether paper-scale parameters were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")


@dataclass
class BenchConfig:
    """One experiment context: catalog, models, solver, simulator.

    Every driver takes a config so experiments are reproducible and
    cheap to re-parameterize.  The quick profile trades repetitions and
    ensemble sizes for runtime; the shapes it produces match the full
    profile's.
    """

    seed: int = 7
    num_samples: int = 150
    max_evaluations: int = 1500
    runs_per_plan: int = field(default_factory=lambda: 40 if is_full_profile() else 12)
    deadline_percentile: float = 96.0
    catalog: Catalog = field(default_factory=ec2_catalog)
    #: Worker processes for the embarrassingly parallel stages (simulation
    #: replications, per-member solves).  Defaults to ``REPRO_WORKERS``
    #: (serial when unset); results are identical for any value.
    workers: int = field(default_factory=workers_from_env)

    def __post_init__(self):
        self.workers = resolve_workers(self.workers)
        self.runtime_model = RuntimeModel(self.catalog)
        self.rngs = RngService(self.seed)

    def deco(self, **overrides) -> Deco:
        kwargs = dict(
            seed=self.seed,
            num_samples=self.num_samples,
            max_evaluations=self.max_evaluations,
        )
        kwargs.update(overrides)
        return Deco(self.catalog, **kwargs)

    def simulator(self) -> CloudSimulator:
        return CloudSimulator(self.catalog, RngService(self.seed + 1), self.runtime_model)


def normalize(rows: Sequence[Mapping[str, object]], key: str, reference: float) -> list[dict]:
    """Divide ``key`` in every row by ``reference`` into ``key + '_norm'``."""
    if reference == 0:
        raise ZeroDivisionError("normalization reference is zero")
    out = []
    for row in rows:
        row = dict(row)
        row[f"{key}_norm"] = float(row[key]) / reference  # type: ignore[arg-type]
        out.append(row)
    return out


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Plain-text table (the form the paper's tables take)."""
    if not rows:
        return f"{title}\n(no rows)"
    cols = list(rows[0].keys())

    def fmt(v) -> str:
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    table = [[fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in table)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
