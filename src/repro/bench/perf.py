"""Solver performance: backend speedup and optimization overhead.

* :func:`solver_speedup` -- two comparisons per workflow scale:

  - the paper's GPU-vs-CPU gap (Sections 6.3.1-6.3.2 report 10x-36x for
    the K40 over a 6-core CPU): vectorized NumPy backend vs the
    deliberately scalar Python backend, identical numerics;
  - the level-parallel fast path vs the pre-optimization per-task
    propagation loop (``VectorizedBackend(level_parallel=False)``),
    measured at a search-shaped batch (Deco's default sample count and
    a frontier-sized state batch), reported as ``taskloop_before_ms`` /
    ``level_after_ms`` / ``level_speedup``.

* :func:`incremental_speedup` -- this PR's before/after: per-state
  delta propagation (dirty-level suffix recompute from the parent's
  cached finish-time frontier) against the full fused level kernel, at
  the search's child-evaluation shape, with bit-identity asserted.

* :func:`incremental_search` -- the end-to-end comparison: one Deco
  solve with the incremental engine (delta propagation + two-stage
  fidelity screening) vs one with ``incremental=False``, reporting
  wall-clock and an ``identical`` flag over the plans' decision dicts.

* :func:`dominance_search` -- the dominance analysis's end-to-end
  comparison: one Deco solve with the op mask (futile-promote settling)
  and one with ``dominance_mask=False``, decision dicts compared byte
  for byte, with the ``pruned_candidates`` counter showing how many
  full evaluations the mask proved away.

* :func:`distributed_search` -- the distributed beam solve's
  end-to-end comparison: one Deco solve per worker count, byte-identical
  decision dicts asserted (the ``distributed.identical`` CI gate),
  wall-clock speedup/efficiency and speculation/shard-cache counters
  reported per width.

* :func:`optimization_overhead` -- the paper's end-to-end figure of
  merit: 4.3-63.17 ms of optimization time per task for 20-1000-task
  workflows.  Rows carry the makespan-cache hit/miss counters of the
  solve, showing how much propagation the memoization avoided.

* :func:`write_bench_solver_json` -- machine-readable dump of the
  tables (the repo's ``BENCH_solver.json``), stamped with git SHA +
  UTC timestamp provenance.
"""

from __future__ import annotations

import datetime
import json
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import BenchConfig
from repro.parallel.executor import host_cpu_count
from repro.solver.analytic_backend import AnalyticBackend
from repro.solver.backends import CompiledProblem, ScalarBackend, VectorizedBackend
from repro.solver.cache import EvalContext
from repro.solver.state import PlanState
from repro.workflow.generators import ligo, montage

__all__ = [
    "ANALYTIC_PROB_ERROR_BOUND",
    "solver_speedup",
    "incremental_speedup",
    "incremental_search",
    "analytic_speedup",
    "analytic_accuracy",
    "cascade_search",
    "dominance_search",
    "distributed_search",
    "arena_bench",
    "adaptive_sharding_bench",
    "optimization_overhead",
    "write_bench_solver_json",
]

#: Documented upper bound on ``analytic_accuracy``'s worst-case absolute
#: deadline-probability deviation (analytic normal CDF vs full Monte
#: Carlo) over the benched workflow catalog.  Measured maxima are ~0.17
#: (montage-1) / ~0.09 (montage-4) / ~0.03 (montage-8); the bound has
#: slack for sampling noise but a genuine propagation regression (wrong
#: variance algebra, broken calibration) lands far above it.  The CI
#: bench gate fails when a measured error exceeds this.
ANALYTIC_PROB_ERROR_BOUND = 0.25


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds (first call warms caches)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _median_spread(fn, repeats: int) -> tuple[float, float, float]:
    """(median, min, max) wall-clock seconds over ``repeats`` calls.

    The CLI's ``--repeat N`` reports this instead of best-of: the median
    resists one lucky (or unlucky) run, and the min/max spread makes
    noisy hosts visible in the recorded JSON instead of hidden by it.
    """
    times = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times)), min(times), max(times)


def solver_speedup(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    batch: int = 4,
    num_samples: int = 50,
    level_batch: int = 32,
    level_samples: int = 200,
    repeats: int = 5,
) -> list[dict]:
    """Per workflow scale: evaluation throughput of the backend variants.

    The scalar comparison runs at a small shape (``batch`` x
    ``num_samples``) because the pure-Python backend is slow by design;
    the level-parallel before/after comparison runs at the shape the
    search actually evaluates (``level_batch`` states x
    ``level_samples`` Monte Carlo realizations, Deco's defaults).
    """
    config = config or BenchConfig()
    gpu, cpu = VectorizedBackend(), ScalarBackend()
    taskloop = VectorizedBackend(level_parallel=False)
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        states = [PlanState.uniform(len(wf), t % problem.num_types) for t in range(batch)]

        t_gpu = _best_of(lambda: gpu.evaluate_batch(problem, states), repeats)
        t0 = time.perf_counter()
        cpu_out = cpu.evaluate_batch(problem, states)
        t_cpu = time.perf_counter() - t0
        gpu_out = gpu.evaluate_batch(problem, states)

        assert all(
            abs(a.cost - b.cost) < 1e-9 and abs(a.mean_makespan - b.mean_makespan) < 1e-6
            for a, b in zip(gpu_out, cpu_out)
        ), "backends disagree"

        # Level-parallel fast path vs the pre-optimization per-task loop,
        # at the search's evaluation shape.
        lvl_problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=level_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        lvl_states = [
            PlanState.uniform(len(wf), t % lvl_problem.num_types)
            for t in range(level_batch)
        ]
        assert np.array_equal(
            gpu.makespan_samples(lvl_problem, lvl_states),
            taskloop.makespan_samples(lvl_problem, lvl_states),
        ), "level-parallel path disagrees with the per-task loop"
        t_level = _best_of(lambda: gpu.makespan_samples(lvl_problem, lvl_states), repeats)
        t_taskloop = _best_of(
            lambda: taskloop.makespan_samples(lvl_problem, lvl_states), repeats
        )

        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "samples": num_samples,
                "batch": batch,
                "vectorized_ms": t_gpu * 1000,
                "scalar_ms": t_cpu * 1000,
                "speedup": t_cpu / t_gpu,
                "level_batch": level_batch,
                "level_samples": level_samples,
                "taskloop_before_ms": t_taskloop * 1000,
                "level_after_ms": t_level * 1000,
                "level_speedup": t_taskloop / t_level,
            }
        )
    return rows


def incremental_speedup(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (8.0,),
    batch: int = 32,
    num_samples: int = 200,
    repeats: int = 5,
) -> list[dict]:
    """Per-state evaluation: delta propagation vs the full level kernel.

    The measured shape is exactly what the search pays per expansion: a
    beam parent's frontier is cached (``ensure_frontier``), then a batch
    of single-task children is evaluated -- once through the full fused
    kernel (the PR-1 level-parallel path) and once through the dirty-
    level delta path.  Both produce bit-identical makespan samples
    (asserted here and by the test suite); ``incremental_speedup`` is
    the full/delta wall-clock ratio per state.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        full = VectorizedBackend()
        delta = VectorizedBackend(eval_context=EvalContext())
        parent = PlanState.uniform(len(wf), 1)
        # One single-task edit per child, spread across the whole DAG --
        # the shape of a search expansion (critical-path promotes plus
        # off-path demotes at every depth), alternating direction.
        children = []
        stride = max(1, len(wf) // batch)
        for j, i in enumerate(range(0, len(wf), stride)):
            child = (
                parent.promote(i, problem.num_types) if j % 2 else parent.demote(i)
            )
            if child is not None:
                children.append(child)
            if len(children) == batch:
                break
        delta.ensure_frontier(problem, parent)

        ref = full.makespan_samples(problem, children, incremental=False)
        inc = delta.makespan_samples(problem, children)
        assert np.array_equal(ref, inc), "delta propagation is not bit-identical"

        t_full = _best_of(
            lambda: full.makespan_samples(problem, children, incremental=False), repeats
        )
        t_delta = _best_of(lambda: delta.makespan_samples(problem, children), repeats)
        stats = delta.delta_stats()
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "batch": len(children),
                "samples": num_samples,
                "full_ms": t_full * 1000,
                "delta_ms": t_delta * 1000,
                "incremental_speedup": t_full / t_delta,
                "identical": True,  # asserted above, on the same operands
                "levels_skipped_frac": (
                    stats["levels_skipped"] / stats["levels_total"]
                    if stats["levels_total"]
                    else 0.0
                ),
                "rows_recomputed_frac": (
                    stats["rows_recomputed"] / stats["rows_total"]
                    if stats["rows_total"]
                    else 0.0
                ),
            }
        )
    return rows


def incremental_search(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (8.0,),
    repeats: int = 3,
    backend: str = "gpu",
) -> list[dict]:
    """End-to-end solve: incremental engine on vs off, same plan either way.

    Runs :meth:`Deco.schedule` twice per workflow -- once with the
    incremental evaluation engine (delta propagation + two-stage
    fidelity screening), once with ``incremental=False`` -- and
    compares the plans' *decision dicts* byte for byte.  ``identical``
    must be True: the incremental engine is a pure evaluation
    optimization, never a search-behaviour change.  Counter columns
    come from the incremental run's :class:`SearchResult`.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)

        # Best-of-``repeats``, fresh engine per solve (cold caches both
        # ways); plans must agree across every repetition.
        deco_off = config.deco(backend=backend, incremental=False)
        plan_off = deco_off.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        t_off = _best_of(
            lambda: config.deco(backend=backend, incremental=False).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        deco_inc = config.deco(backend=backend, incremental=True)
        plan_inc = deco_inc.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        t_inc = _best_of(
            lambda: config.deco(backend=backend, incremental=True).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        result = deco_inc.last_result
        assert result is not None
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "full_s": t_off,
                "incremental_s": t_inc,
                "search_speedup": t_off / t_inc,
                "identical": plan_inc.decision_dict() == plan_off.decision_dict(),
                "evaluations": result.evaluations,
                "exact_evals": result.exact_evals,
                "screen_evals": result.screen_evals,
                "screened_out": result.screened_out,
                "states_incremental": result.states_incremental,
                "levels_skipped": result.levels_skipped,
                "levels_total": result.levels_total,
            }
        )
    return rows


def _search_shaped_children(problem: CompiledProblem, num_tasks: int, batch: int):
    """A parent plus ``batch`` single-task edits (the expansion shape)."""
    parent = PlanState.uniform(num_tasks, 1)
    children = []
    stride = max(1, num_tasks // batch)
    for j, i in enumerate(range(0, num_tasks, stride)):
        child = parent.promote(i, problem.num_types) if j % 2 else parent.demote(i)
        if child is not None:
            children.append(child)
        if len(children) == batch:
            break
    return parent, children


def analytic_speedup(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (8.0,),
    batch: int = 32,
    num_samples: int = 150,
    repeats: int = 5,
) -> list[dict]:
    """Per-state evaluation: moment propagation vs the incremental MC kernel.

    This PR's per-state before/after: the same search-shaped child batch
    evaluated once through the delta-propagation Monte Carlo path (the
    PR-5 fast path, parent frontier pre-cached) and once through the
    analytic moment propagation.  The analytic pass is warmed first so
    the one-off quantile calibration is not billed to the steady state
    (exactly as the search amortizes it).

    Call this before other bench sections in a process: the MC gather
    kernel runs ~2x faster when its sample tensors land in heap pages
    recycled from earlier (freed) allocations, a regime a single solve
    -- which compiles its tensors into fresh memory -- never reaches.
    The analytic kernel's pooled working set is cache-sized either way,
    so a warmed heap only deflates the MC baseline.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        delta = VectorizedBackend(eval_context=EvalContext())
        analytic = AnalyticBackend(pool=delta.pool)
        parent, children = _search_shaped_children(problem, len(wf), batch)
        delta.ensure_frontier(problem, parent)
        analytic.makespan_moments(problem, children)  # calibrate once

        t_delta = _best_of(lambda: delta.makespan_samples(problem, children), repeats)
        t_analytic = _best_of(
            lambda: analytic.makespan_moments(problem, children), repeats
        )
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "batch": len(children),
                "samples": num_samples,
                "quantile_points": analytic.quantile_points,
                "mc_delta_us_per_state": t_delta * 1e6 / len(children),
                "analytic_us_per_state": t_analytic * 1e6 / len(children),
                "analytic_speedup": t_delta / t_analytic,
            }
        )
    return rows


def analytic_accuracy(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    batch: int = 32,
    num_samples: int = 150,
) -> list[dict]:
    """Measured analytic-vs-MC error at the deadline the search uses.

    For a search-shaped state batch at the workflow's ``medium``
    deadline preset: the absolute deviation between the analytic
    deadline probability (normal CDF on propagated moments) and the
    Monte Carlo estimate, plus the relative error of the makespan mean.
    These are the documented error bounds the CI gate holds the backend
    to -- the cascade margins in DESIGN.md §11 are calibrated against
    exactly these distributions.

    ``max_rel_mean_error`` can be large (0.83 on montage-4) on exactly
    one kind of state: all tasks on the slowest type, where a handful
    of Monte Carlo draws sit ~750x above the median and dominate the
    sample mean.  The Q-point midpoint-quantile calibration truncates
    mass beyond the ``1 - 1/(2Q)`` quantile, so the analytic mean
    tracks the median instead.  The *probability* error on the same
    state stays below 0.09: feasibility at the deadline depends on the
    bulk of the distribution, which the grid represents faithfully --
    this is why the CI gate bounds probability error, not mean error.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        deco = config.deco()
        deadline = deco.presets(wf).medium
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=deadline, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        mc = VectorizedBackend()
        analytic = AnalyticBackend(pool=mc.pool)
        _, children = _search_shaped_children(problem, len(wf), batch)
        states = [PlanState.uniform(len(wf), 0), PlanState.uniform(len(wf), 1)] + children

        mc_evals = mc.evaluate_batch(problem, states)
        a_mean, _ = analytic.makespan_moments(problem, states)
        a_prob = analytic.deadline_probabilities(problem, states)
        prob_err = [abs(float(p) - e.probability) for p, e in zip(a_prob, mc_evals)]
        mean_rel = [
            abs(float(m) - e.mean_makespan) / max(e.mean_makespan, 1e-9)
            for m, e in zip(a_mean, mc_evals)
        ]
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "states": len(states),
                "samples": num_samples,
                "max_abs_prob_error": max(prob_err),
                "mean_abs_prob_error": sum(prob_err) / len(prob_err),
                "max_rel_mean_error": max(mean_rel),
            }
        )
    return rows


def cascade_search(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    repeats: int = 3,
    backend: str = "gpu",
) -> list[dict]:
    """End-to-end solve: three-tier cascade on vs off, same plan either way.

    The cascade analogue of :func:`incremental_search`: one
    :meth:`Deco.schedule` per workflow with the analytic tier enabled
    (the default) and one with ``analytic_screen=False``, decision
    dicts compared byte for byte.  ``identical`` must be True -- tier 0
    settles states with closed-form evaluations but never changes which
    plan wins.  Counter columns come from the cascade run's
    :class:`SearchResult`.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)

        plan_off = config.deco(backend=backend, analytic_screen=False).schedule(
            wf, "medium", deadline_percentile=config.deadline_percentile
        )
        t_off = _best_of(
            lambda: config.deco(backend=backend, analytic_screen=False).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        deco_on = config.deco(backend=backend, analytic_screen=True)
        plan_on = deco_on.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        t_on = _best_of(
            lambda: config.deco(backend=backend, analytic_screen=True).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        result = deco_on.last_result
        assert result is not None
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "cascade_off_s": t_off,
                "cascade_on_s": t_on,
                "cascade_speedup": t_off / t_on,
                "identical": plan_on.decision_dict() == plan_off.decision_dict(),
                "evaluations": result.evaluations,
                "analytic_evals": result.analytic_evals,
                "analytic_rejected": result.analytic_screened_out,
                "analytic_accepted": result.analytic_accepted,
                "exact_evals": result.exact_evals,
                "screen_evals": result.screen_evals,
                "pruned_candidates": result.pruned_candidates,
            }
        )
    return rows


def dominance_search(
    config: BenchConfig | None = None,
    repeats: int = 3,
    backend: str = "gpu",
) -> list[dict]:
    """End-to-end solve: dominance mask on vs off, same plan either way.

    One :meth:`Deco.schedule` per case with the op mask enabled (the
    default) and one with ``dominance_mask=False``, decision dicts
    compared byte for byte.  ``identical`` must be True: a masked child
    inherits an evaluation that is provably bitwise what the backend
    would have computed, so the mask can never change which plan wins.

    Two cases probe the two regimes.  Montage runs with the full
    incremental engine -- there the prefix screen already discards the
    hopeless candidates at 32-sample fidelity, so the mask's skip count
    is expected to be ~0 and the row is a pure identity check.  LIGO
    runs with ``incremental=False`` (no screening tiers): its long
    chains make most off-path exploration promotes provably
    never-critical, and the mask is what stands between them and a
    full Monte Carlo evaluation -- ``pruned_candidates`` counts the
    full evaluations it proved away.
    """
    config = config or BenchConfig()
    cases = [
        (montage(degrees=4.0, seed=config.seed), True),
        (ligo(num_tasks=100, seed=config.seed), False),
    ]
    rows = []
    for wf, incremental in cases:
        common = dict(backend=backend, incremental=incremental)

        plan_off = config.deco(dominance_mask=False, **common).schedule(
            wf, "medium", deadline_percentile=config.deadline_percentile
        )
        t_off = _best_of(
            lambda: config.deco(dominance_mask=False, **common).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        deco_on = config.deco(dominance_mask=True, **common)
        plan_on = deco_on.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        t_on = _best_of(
            lambda: config.deco(dominance_mask=True, **common).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        result = deco_on.last_result
        assert result is not None
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "incremental": incremental,
                "mask_off_s": t_off,
                "mask_on_s": t_on,
                "mask_speedup": t_off / t_on,
                "identical": plan_on.decision_dict() == plan_off.decision_dict(),
                "evaluations": result.evaluations,
                "exact_evals": result.exact_evals,
                "pruned_candidates": result.pruned_candidates,
            }
        )
    return rows


def distributed_search(
    config: BenchConfig | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    degrees: tuple[float, ...] = (4.0,),
    repeats: int = 2,
) -> list[dict]:
    """End-to-end solve: sharded beam evaluation, same plan at any width.

    One :meth:`Deco.schedule` per (workflow, worker count): the
    ``workers=1`` row is the serial reference; wider rows shard each
    beam iteration's candidate batch across that many persistent worker
    processes (DESIGN.md §13) and must produce a byte-identical
    decision dict -- ``identical`` is the regression gate, speedup is
    the prize.  ``efficiency`` is speedup per worker; on a single-core
    host (see the payload's ``host_cpu_count``) expect efficiency well
    below 1 -- the workers time-share one CPU and the row documents the
    honest overhead, while the identity gate still binds.

    Timing is median-of-``repeats`` (min/max spread recorded alongside)
    with a fresh engine per solve (cold
    caches, pool spawn included -- the cost a first-time caller pays);
    counters come from one extra measured solve per width.
    ``speculation_hit_rate`` is the fraction of the parent's
    speculative child expansions the next iteration actually consumed;
    ``cache_hit_rate`` aggregates the shard-resident makespan caches.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        reference = None
        t_serial = None
        for workers in worker_counts:
            def solve_once():
                with config.deco(workers=workers) as deco:
                    return deco.schedule(
                        wf, "medium", deadline_percentile=config.deadline_percentile
                    )

            deco = config.deco(workers=workers)
            plan = deco.schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            )
            result = deco.last_result
            deco.close()
            assert result is not None
            t_solve, t_min, t_max = _median_spread(solve_once, repeats)
            if reference is None:
                reference = plan.decision_dict()
                t_serial = t_solve
            hits, misses = result.cache_hits, result.cache_misses
            rows.append(
                {
                    "workflow": wf.name,
                    "tasks": len(wf),
                    "workers": workers,
                    "solve_s": t_solve,
                    "solve_s_min": t_min,
                    "solve_s_max": t_max,
                    "repeats": max(1, repeats),
                    "speedup": t_serial / t_solve,
                    "efficiency": t_serial / t_solve / workers,
                    "identical": plan.decision_dict() == reference,
                    "evaluations": result.evaluations,
                    "speculated": result.speculated,
                    "speculation_hits": result.speculation_hits,
                    "speculation_hit_rate": (
                        result.speculation_hits / result.speculated
                        if result.speculated
                        else 0.0
                    ),
                    "cache_hits": hits,
                    "cache_misses": misses,
                    "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                }
            )
    return rows


def arena_bench(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (8.0,),
    workers: int = 2,
) -> list[dict]:
    """Broadcast bytes + wall-clock: zero-copy arena vs pickled prologue.

    One fresh-engine solve per (workflow, transport).  The arena row
    broadcasts only the content key plus scalar deltas (the tensors ride
    shared memory); the pickled row ships the whole prologue payload.
    ``broadcast_reduction_x`` is the headline -- the ISSUE's >= 10x gate
    on Montage-8 -- and ``identical`` is the regression gate: both
    transports rebuild the same compiled problem, so the plan may not
    move by a byte.  ``arena_used`` distinguishes a real reduction from
    an environment where shared memory is unavailable and the arena
    engine silently fell back to pickling (the gate is waived there).
    """
    from repro.parallel.arena import arena_available

    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        row: dict = {"workflow": wf.name, "tasks": len(wf), "workers": workers}
        plans = {}
        for label, use_arena in (("arena", True), ("pickled", False)):
            t0 = time.perf_counter()
            with config.deco(workers=workers, arena=use_arena) as deco:
                plan = deco.schedule(
                    wf, "medium", deadline_percentile=config.deadline_percentile
                )
                elapsed = time.perf_counter() - t0
                dist = deco.cache_stats().get("distributed", {})
                if label == "arena":
                    # A second solve at another deadline derives from the
                    # same base problem: the segment is reused (a hit),
                    # never re-published.  Outside the timed window and
                    # after the broadcast-bytes snapshot, so both
                    # transports compare exactly one solve.
                    deco.schedule(wf, "medium", deadline_percentile=90.0)
                    sweep = deco.cache_stats().get("distributed", {})
            row[f"{label}_solve_s"] = elapsed
            row[f"{label}_broadcast_bytes"] = int(dist.get("broadcast_bytes", 0))
            if label == "arena":
                row["arena_publishes"] = int(sweep.get("arena_publishes", 0))
                row["arena_hits"] = int(sweep.get("arena_hits", 0))
                row["arena_bytes"] = int(sweep.get("arena_bytes", 0))
            plans[label] = plan.decision_dict()
        on_bytes = row["arena_broadcast_bytes"]
        off_bytes = row["pickled_broadcast_bytes"]
        row["arena_used"] = bool(
            arena_available() and row["arena_publishes"] > 0 and on_bytes < off_bytes
        )
        row["broadcast_reduction_x"] = (off_bytes / on_bytes) if on_bytes else 0.0
        row["identical"] = plans["arena"] == plans["pickled"]
        rows.append(row)
    return rows


def adaptive_sharding_bench(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (4.0,),
    workers: int = 2,
    solves: int = 2,
) -> list[dict]:
    """Cost-model sharding vs even chunking: imbalance, steals, identity.

    ``solves`` back-to-back schedules per engine: the first trains the
    per-shard cost EWMAs (partitions are still even until the model has
    data), later ones run weighted.  ``*_imbalance`` is the mean per
    round of max/mean per-shard elapsed (1.0 == perfect balance);
    ``steals`` counts tail chunks re-routed to early-finishing shards.
    ``identical`` gates that every solve's plan matches the even-chunked
    engine's -- partitioning and stealing only move *where* chunks are
    computed (DESIGN.md §15).
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        row: dict = {
            "workflow": wf.name,
            "tasks": len(wf),
            "workers": workers,
            "solves": solves,
        }
        plans: dict[str, list] = {}
        for label, flag in (("adaptive", True), ("even", False)):
            t0 = time.perf_counter()
            with config.deco(workers=workers, adaptive_sharding=flag) as deco:
                plans[label] = [
                    deco.schedule(
                        wf, "medium", deadline_percentile=config.deadline_percentile
                    ).decision_dict()
                    for _ in range(solves)
                ]
                dist = deco.cache_stats().get("distributed", {})
            row[f"{label}_solve_s"] = time.perf_counter() - t0
            row[f"{label}_imbalance"] = float(dist.get("shard_imbalance", 0.0))
            if label == "adaptive":
                row["steals"] = int(dist.get("steals", 0))
        row["identical"] = plans["adaptive"] == plans["even"]
        rows.append(row)
    return rows


def optimization_overhead(
    config: BenchConfig | None = None,
    sizes: tuple[int, ...] = (20, 100, 1000),
) -> list[dict]:
    """Deco's optimization time per task for 20/100/1000-task workflows."""
    config = config or BenchConfig()
    rows = []
    for size in sizes:
        wf = ligo(num_tasks=size, seed=config.seed)
        deco = config.deco()
        before = deco.cache.counters()
        plan = deco.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        after = deco.cache.counters()
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "solve_seconds": plan.solve_seconds,
                "ms_per_task": plan.overhead_ms_per_task(),
                "evaluations": plan.evaluations,
                "feasible": plan.feasible,
                "cache_hits": after["hits"] - before["hits"],
                "cache_misses": after["misses"] - before["misses"],
            }
        )
    return rows


def _git_provenance() -> dict:
    """Best-effort git SHA of the tree the numbers were measured on."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "git_sha": sha or "unknown",
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def write_bench_solver_json(
    path: str | Path,
    config: BenchConfig | None = None,
    speedup_rows: list[dict] | None = None,
    overhead_rows: list[dict] | None = None,
    incremental_rows: list[dict] | None = None,
    incremental_search_rows: list[dict] | None = None,
    analytic_rows: list[dict] | None = None,
    analytic_accuracy_rows: list[dict] | None = None,
    cascade_rows: list[dict] | None = None,
    dominance_rows: list[dict] | None = None,
    distributed_rows: list[dict] | None = None,
    arena_rows: list[dict] | None = None,
    adaptive_rows: list[dict] | None = None,
) -> dict:
    """Write the machine-readable solver benchmark (``BENCH_solver.json``).

    ``before``/``after`` of the level-parallel optimization are the
    ``taskloop_before_ms`` / ``level_after_ms`` fields of the speedup
    rows; the incremental engine's before/after are ``full_ms`` /
    ``delta_ms`` (per-state) and ``full_s`` / ``incremental_s``
    (end-to-end search).  Pass precomputed rows to reuse measurements a
    caller already made (the benchmark suite does).  The payload is
    stamped with git SHA + UTC timestamp provenance.
    """
    config = config or BenchConfig()
    payload = {
        "benchmark": "solver",
        "unit": "ms",
        **_git_provenance(),
        "host_cpu_count": host_cpu_count(),
        "workers": config.workers,
        "solver_speedup": speedup_rows if speedup_rows is not None else solver_speedup(config),
        "incremental": {
            "per_state": (
                incremental_rows
                if incremental_rows is not None
                else incremental_speedup(config)
            ),
            "search": (
                incremental_search_rows
                if incremental_search_rows is not None
                else incremental_search(config)
            ),
        },
        "analytic": {
            "per_state": (
                analytic_rows if analytic_rows is not None else analytic_speedup(config)
            ),
            "accuracy": (
                analytic_accuracy_rows
                if analytic_accuracy_rows is not None
                else analytic_accuracy(config)
            ),
            "cascade": cascade_rows if cascade_rows is not None else cascade_search(config),
        },
        "dominance": {
            "search": (
                dominance_rows if dominance_rows is not None else dominance_search(config)
            ),
        },
        "optimization_overhead": (
            overhead_rows if overhead_rows is not None else optimization_overhead(config)
        ),
    }
    dist_rows = (
        distributed_rows if distributed_rows is not None else distributed_search(config)
    )
    payload["distributed"] = {
        # The regression gate: sharding may never change which plan
        # wins, at any worker count (CI fails the bench otherwise).
        "identical": all(r["identical"] for r in dist_rows),
        "search": dist_rows,
    }
    a_rows = arena_rows if arena_rows is not None else arena_bench(config)
    payload["arena"] = {
        "identical": all(r["identical"] for r in a_rows),
        # Only meaningful where shared memory works: rows with
        # arena_used=False measured the fallback against itself.
        "broadcast_reduction_x": min(
            (r["broadcast_reduction_x"] for r in a_rows if r["arena_used"]),
            default=0.0,
        ),
        "rows": a_rows,
    }
    s_rows = adaptive_rows if adaptive_rows is not None else adaptive_sharding_bench(config)
    payload["adaptive_sharding"] = {
        "identical": all(r["identical"] for r in s_rows),
        "rows": s_rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=float) + "\n")
    return payload
