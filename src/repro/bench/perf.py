"""Solver performance: backend speedup and optimization overhead.

* :func:`solver_speedup` -- two comparisons per workflow scale:

  - the paper's GPU-vs-CPU gap (Sections 6.3.1-6.3.2 report 10x-36x for
    the K40 over a 6-core CPU): vectorized NumPy backend vs the
    deliberately scalar Python backend, identical numerics;
  - the level-parallel fast path vs the pre-optimization per-task
    propagation loop (``VectorizedBackend(level_parallel=False)``),
    measured at a search-shaped batch (Deco's default sample count and
    a frontier-sized state batch), reported as ``taskloop_before_ms`` /
    ``level_after_ms`` / ``level_speedup``.

* :func:`optimization_overhead` -- the paper's end-to-end figure of
  merit: 4.3-63.17 ms of optimization time per task for 20-1000-task
  workflows.  Rows carry the makespan-cache hit/miss counters of the
  solve, showing how much propagation the memoization avoided.

* :func:`write_bench_solver_json` -- machine-readable dump of both
  tables (the repo's ``BENCH_solver.json``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import BenchConfig
from repro.bench.parallel import host_cpu_count
from repro.solver.backends import CompiledProblem, ScalarBackend, VectorizedBackend
from repro.solver.state import PlanState
from repro.workflow.generators import ligo, montage

__all__ = ["solver_speedup", "optimization_overhead", "write_bench_solver_json"]


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds (first call warms caches)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def solver_speedup(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    batch: int = 4,
    num_samples: int = 50,
    level_batch: int = 32,
    level_samples: int = 200,
    repeats: int = 5,
) -> list[dict]:
    """Per workflow scale: evaluation throughput of the backend variants.

    The scalar comparison runs at a small shape (``batch`` x
    ``num_samples``) because the pure-Python backend is slow by design;
    the level-parallel before/after comparison runs at the shape the
    search actually evaluates (``level_batch`` states x
    ``level_samples`` Monte Carlo realizations, Deco's defaults).
    """
    config = config or BenchConfig()
    gpu, cpu = VectorizedBackend(), ScalarBackend()
    taskloop = VectorizedBackend(level_parallel=False)
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        states = [PlanState.uniform(len(wf), t % problem.num_types) for t in range(batch)]

        t_gpu = _best_of(lambda: gpu.evaluate_batch(problem, states), repeats)
        t0 = time.perf_counter()
        cpu_out = cpu.evaluate_batch(problem, states)
        t_cpu = time.perf_counter() - t0
        gpu_out = gpu.evaluate_batch(problem, states)

        assert all(
            abs(a.cost - b.cost) < 1e-9 and abs(a.mean_makespan - b.mean_makespan) < 1e-6
            for a, b in zip(gpu_out, cpu_out)
        ), "backends disagree"

        # Level-parallel fast path vs the pre-optimization per-task loop,
        # at the search's evaluation shape.
        lvl_problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=level_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        lvl_states = [
            PlanState.uniform(len(wf), t % lvl_problem.num_types)
            for t in range(level_batch)
        ]
        assert np.array_equal(
            gpu.makespan_samples(lvl_problem, lvl_states),
            taskloop.makespan_samples(lvl_problem, lvl_states),
        ), "level-parallel path disagrees with the per-task loop"
        t_level = _best_of(lambda: gpu.makespan_samples(lvl_problem, lvl_states), repeats)
        t_taskloop = _best_of(
            lambda: taskloop.makespan_samples(lvl_problem, lvl_states), repeats
        )

        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "samples": num_samples,
                "batch": batch,
                "vectorized_ms": t_gpu * 1000,
                "scalar_ms": t_cpu * 1000,
                "speedup": t_cpu / t_gpu,
                "level_batch": level_batch,
                "level_samples": level_samples,
                "taskloop_before_ms": t_taskloop * 1000,
                "level_after_ms": t_level * 1000,
                "level_speedup": t_taskloop / t_level,
            }
        )
    return rows


def optimization_overhead(
    config: BenchConfig | None = None,
    sizes: tuple[int, ...] = (20, 100, 1000),
) -> list[dict]:
    """Deco's optimization time per task for 20/100/1000-task workflows."""
    config = config or BenchConfig()
    rows = []
    for size in sizes:
        wf = ligo(num_tasks=size, seed=config.seed)
        deco = config.deco()
        before = deco.cache.counters()
        plan = deco.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        after = deco.cache.counters()
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "solve_seconds": plan.solve_seconds,
                "ms_per_task": plan.overhead_ms_per_task(),
                "evaluations": plan.evaluations,
                "feasible": plan.feasible,
                "cache_hits": after["hits"] - before["hits"],
                "cache_misses": after["misses"] - before["misses"],
            }
        )
    return rows


def write_bench_solver_json(
    path: str | Path,
    config: BenchConfig | None = None,
    speedup_rows: list[dict] | None = None,
    overhead_rows: list[dict] | None = None,
) -> dict:
    """Write the machine-readable solver benchmark (``BENCH_solver.json``).

    ``before``/``after`` of the level-parallel optimization are the
    ``taskloop_before_ms`` / ``level_after_ms`` fields of the speedup
    rows.  Pass precomputed rows to reuse measurements a caller already
    made (the benchmark suite does).
    """
    config = config or BenchConfig()
    payload = {
        "benchmark": "solver",
        "unit": "ms",
        "host_cpu_count": host_cpu_count(),
        "workers": config.workers,
        "solver_speedup": speedup_rows if speedup_rows is not None else solver_speedup(config),
        "optimization_overhead": (
            overhead_rows if overhead_rows is not None else optimization_overhead(config)
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=float) + "\n")
    return payload
