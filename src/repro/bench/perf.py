"""Solver performance: backend speedup and optimization overhead.

* :func:`solver_speedup` -- two comparisons per workflow scale:

  - the paper's GPU-vs-CPU gap (Sections 6.3.1-6.3.2 report 10x-36x for
    the K40 over a 6-core CPU): vectorized NumPy backend vs the
    deliberately scalar Python backend, identical numerics;
  - the level-parallel fast path vs the pre-optimization per-task
    propagation loop (``VectorizedBackend(level_parallel=False)``),
    measured at a search-shaped batch (Deco's default sample count and
    a frontier-sized state batch), reported as ``taskloop_before_ms`` /
    ``level_after_ms`` / ``level_speedup``.

* :func:`incremental_speedup` -- this PR's before/after: per-state
  delta propagation (dirty-level suffix recompute from the parent's
  cached finish-time frontier) against the full fused level kernel, at
  the search's child-evaluation shape, with bit-identity asserted.

* :func:`incremental_search` -- the end-to-end comparison: one Deco
  solve with the incremental engine (delta propagation + two-stage
  fidelity screening) vs one with ``incremental=False``, reporting
  wall-clock and an ``identical`` flag over the plans' decision dicts.

* :func:`optimization_overhead` -- the paper's end-to-end figure of
  merit: 4.3-63.17 ms of optimization time per task for 20-1000-task
  workflows.  Rows carry the makespan-cache hit/miss counters of the
  solve, showing how much propagation the memoization avoided.

* :func:`write_bench_solver_json` -- machine-readable dump of the
  tables (the repo's ``BENCH_solver.json``), stamped with git SHA +
  UTC timestamp provenance.
"""

from __future__ import annotations

import datetime
import json
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import BenchConfig
from repro.bench.parallel import host_cpu_count
from repro.solver.backends import CompiledProblem, ScalarBackend, VectorizedBackend
from repro.solver.cache import EvalContext
from repro.solver.state import PlanState
from repro.workflow.generators import ligo, montage

__all__ = [
    "solver_speedup",
    "incremental_speedup",
    "incremental_search",
    "optimization_overhead",
    "write_bench_solver_json",
]


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds (first call warms caches)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def solver_speedup(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    batch: int = 4,
    num_samples: int = 50,
    level_batch: int = 32,
    level_samples: int = 200,
    repeats: int = 5,
) -> list[dict]:
    """Per workflow scale: evaluation throughput of the backend variants.

    The scalar comparison runs at a small shape (``batch`` x
    ``num_samples``) because the pure-Python backend is slow by design;
    the level-parallel before/after comparison runs at the shape the
    search actually evaluates (``level_batch`` states x
    ``level_samples`` Monte Carlo realizations, Deco's defaults).
    """
    config = config or BenchConfig()
    gpu, cpu = VectorizedBackend(), ScalarBackend()
    taskloop = VectorizedBackend(level_parallel=False)
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        states = [PlanState.uniform(len(wf), t % problem.num_types) for t in range(batch)]

        t_gpu = _best_of(lambda: gpu.evaluate_batch(problem, states), repeats)
        t0 = time.perf_counter()
        cpu_out = cpu.evaluate_batch(problem, states)
        t_cpu = time.perf_counter() - t0
        gpu_out = gpu.evaluate_batch(problem, states)

        assert all(
            abs(a.cost - b.cost) < 1e-9 and abs(a.mean_makespan - b.mean_makespan) < 1e-6
            for a, b in zip(gpu_out, cpu_out)
        ), "backends disagree"

        # Level-parallel fast path vs the pre-optimization per-task loop,
        # at the search's evaluation shape.
        lvl_problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=level_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        lvl_states = [
            PlanState.uniform(len(wf), t % lvl_problem.num_types)
            for t in range(level_batch)
        ]
        assert np.array_equal(
            gpu.makespan_samples(lvl_problem, lvl_states),
            taskloop.makespan_samples(lvl_problem, lvl_states),
        ), "level-parallel path disagrees with the per-task loop"
        t_level = _best_of(lambda: gpu.makespan_samples(lvl_problem, lvl_states), repeats)
        t_taskloop = _best_of(
            lambda: taskloop.makespan_samples(lvl_problem, lvl_states), repeats
        )

        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "samples": num_samples,
                "batch": batch,
                "vectorized_ms": t_gpu * 1000,
                "scalar_ms": t_cpu * 1000,
                "speedup": t_cpu / t_gpu,
                "level_batch": level_batch,
                "level_samples": level_samples,
                "taskloop_before_ms": t_taskloop * 1000,
                "level_after_ms": t_level * 1000,
                "level_speedup": t_taskloop / t_level,
            }
        )
    return rows


def incremental_speedup(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (8.0,),
    batch: int = 32,
    num_samples: int = 200,
    repeats: int = 5,
) -> list[dict]:
    """Per-state evaluation: delta propagation vs the full level kernel.

    The measured shape is exactly what the search pays per expansion: a
    beam parent's frontier is cached (``ensure_frontier``), then a batch
    of single-task children is evaluated -- once through the full fused
    kernel (the PR-1 level-parallel path) and once through the dirty-
    level delta path.  Both produce bit-identical makespan samples
    (asserted here and by the test suite); ``incremental_speedup`` is
    the full/delta wall-clock ratio per state.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        full = VectorizedBackend()
        delta = VectorizedBackend(eval_context=EvalContext())
        parent = PlanState.uniform(len(wf), 1)
        # One single-task edit per child, spread across the whole DAG --
        # the shape of a search expansion (critical-path promotes plus
        # off-path demotes at every depth), alternating direction.
        children = []
        stride = max(1, len(wf) // batch)
        for j, i in enumerate(range(0, len(wf), stride)):
            child = (
                parent.promote(i, problem.num_types) if j % 2 else parent.demote(i)
            )
            if child is not None:
                children.append(child)
            if len(children) == batch:
                break
        delta.ensure_frontier(problem, parent)

        ref = full.makespan_samples(problem, children, incremental=False)
        inc = delta.makespan_samples(problem, children)
        assert np.array_equal(ref, inc), "delta propagation is not bit-identical"

        t_full = _best_of(
            lambda: full.makespan_samples(problem, children, incremental=False), repeats
        )
        t_delta = _best_of(lambda: delta.makespan_samples(problem, children), repeats)
        stats = delta.delta_stats()
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "batch": len(children),
                "samples": num_samples,
                "full_ms": t_full * 1000,
                "delta_ms": t_delta * 1000,
                "incremental_speedup": t_full / t_delta,
                "identical": True,  # asserted above, on the same operands
                "levels_skipped_frac": (
                    stats["levels_skipped"] / stats["levels_total"]
                    if stats["levels_total"]
                    else 0.0
                ),
                "rows_recomputed_frac": (
                    stats["rows_recomputed"] / stats["rows_total"]
                    if stats["rows_total"]
                    else 0.0
                ),
            }
        )
    return rows


def incremental_search(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (8.0,),
    repeats: int = 3,
) -> list[dict]:
    """End-to-end solve: incremental engine on vs off, same plan either way.

    Runs :meth:`Deco.schedule` twice per workflow -- once with the
    incremental evaluation engine (delta propagation + two-stage
    fidelity screening), once with ``incremental=False`` -- and
    compares the plans' *decision dicts* byte for byte.  ``identical``
    must be True: the incremental engine is a pure evaluation
    optimization, never a search-behaviour change.  Counter columns
    come from the incremental run's :class:`SearchResult`.
    """
    config = config or BenchConfig()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)

        # Best-of-``repeats``, fresh engine per solve (cold caches both
        # ways); plans must agree across every repetition.
        deco_off = config.deco(incremental=False)
        plan_off = deco_off.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        t_off = _best_of(
            lambda: config.deco(incremental=False).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        deco_inc = config.deco(incremental=True)
        plan_inc = deco_inc.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        t_inc = _best_of(
            lambda: config.deco(incremental=True).schedule(
                wf, "medium", deadline_percentile=config.deadline_percentile
            ),
            repeats,
        )

        result = deco_inc.last_result
        assert result is not None
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "full_s": t_off,
                "incremental_s": t_inc,
                "search_speedup": t_off / t_inc,
                "identical": plan_inc.decision_dict() == plan_off.decision_dict(),
                "evaluations": result.evaluations,
                "exact_evals": result.exact_evals,
                "screen_evals": result.screen_evals,
                "screened_out": result.screened_out,
                "states_incremental": result.states_incremental,
                "levels_skipped": result.levels_skipped,
                "levels_total": result.levels_total,
            }
        )
    return rows


def optimization_overhead(
    config: BenchConfig | None = None,
    sizes: tuple[int, ...] = (20, 100, 1000),
) -> list[dict]:
    """Deco's optimization time per task for 20/100/1000-task workflows."""
    config = config or BenchConfig()
    rows = []
    for size in sizes:
        wf = ligo(num_tasks=size, seed=config.seed)
        deco = config.deco()
        before = deco.cache.counters()
        plan = deco.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        after = deco.cache.counters()
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "solve_seconds": plan.solve_seconds,
                "ms_per_task": plan.overhead_ms_per_task(),
                "evaluations": plan.evaluations,
                "feasible": plan.feasible,
                "cache_hits": after["hits"] - before["hits"],
                "cache_misses": after["misses"] - before["misses"],
            }
        )
    return rows


def _git_provenance() -> dict:
    """Best-effort git SHA of the tree the numbers were measured on."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "git_sha": sha or "unknown",
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def write_bench_solver_json(
    path: str | Path,
    config: BenchConfig | None = None,
    speedup_rows: list[dict] | None = None,
    overhead_rows: list[dict] | None = None,
    incremental_rows: list[dict] | None = None,
    incremental_search_rows: list[dict] | None = None,
) -> dict:
    """Write the machine-readable solver benchmark (``BENCH_solver.json``).

    ``before``/``after`` of the level-parallel optimization are the
    ``taskloop_before_ms`` / ``level_after_ms`` fields of the speedup
    rows; the incremental engine's before/after are ``full_ms`` /
    ``delta_ms`` (per-state) and ``full_s`` / ``incremental_s``
    (end-to-end search).  Pass precomputed rows to reuse measurements a
    caller already made (the benchmark suite does).  The payload is
    stamped with git SHA + UTC timestamp provenance.
    """
    config = config or BenchConfig()
    payload = {
        "benchmark": "solver",
        "unit": "ms",
        **_git_provenance(),
        "host_cpu_count": host_cpu_count(),
        "workers": config.workers,
        "solver_speedup": speedup_rows if speedup_rows is not None else solver_speedup(config),
        "incremental": {
            "per_state": (
                incremental_rows
                if incremental_rows is not None
                else incremental_speedup(config)
            ),
            "search": (
                incremental_search_rows
                if incremental_search_rows is not None
                else incremental_search(config)
            ),
        },
        "optimization_overhead": (
            overhead_rows if overhead_rows is not None else optimization_overhead(config)
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=float) + "\n")
    return payload
