"""Solver performance: backend speedup and optimization overhead.

* :func:`solver_speedup` -- the paper's GPU-vs-CPU comparison
  (Sections 6.3.1-6.3.2 report 10x-36x for the K40 over a 6-core CPU).
  Here: vectorized NumPy backend vs the deliberately scalar Python
  backend, identical numerics.
* :func:`optimization_overhead` -- the paper's end-to-end figure of
  merit: 4.3-63.17 ms of optimization time per task for 20-1000-task
  workflows.
"""

from __future__ import annotations

import time

from repro.bench.harness import BenchConfig
from repro.solver.backends import CompiledProblem, ScalarBackend, VectorizedBackend
from repro.solver.state import PlanState
from repro.workflow.generators import ligo, montage

__all__ = ["solver_speedup", "optimization_overhead"]


def solver_speedup(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    batch: int = 4,
    num_samples: int = 50,
) -> list[dict]:
    """Per workflow scale: evaluation throughput of both backends."""
    config = config or BenchConfig()
    gpu, cpu = VectorizedBackend(), ScalarBackend()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        problem = CompiledProblem.compile(
            wf, config.catalog, deadline=1.0e9, percentile=96.0,
            num_samples=num_samples, seed=config.seed,
            runtime_model=config.runtime_model,
        )
        states = [PlanState.uniform(len(wf), t % problem.num_types) for t in range(batch)]

        t0 = time.perf_counter()
        gpu_out = gpu.evaluate_batch(problem, states)
        t_gpu = time.perf_counter() - t0

        t0 = time.perf_counter()
        cpu_out = cpu.evaluate_batch(problem, states)
        t_cpu = time.perf_counter() - t0

        assert all(
            abs(a.cost - b.cost) < 1e-9 and abs(a.mean_makespan - b.mean_makespan) < 1e-6
            for a, b in zip(gpu_out, cpu_out)
        ), "backends disagree"
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "samples": num_samples,
                "batch": batch,
                "vectorized_ms": t_gpu * 1000,
                "scalar_ms": t_cpu * 1000,
                "speedup": t_cpu / t_gpu,
            }
        )
    return rows


def optimization_overhead(
    config: BenchConfig | None = None,
    sizes: tuple[int, ...] = (20, 100, 1000),
) -> list[dict]:
    """Deco's optimization time per task for 20/100/1000-task workflows."""
    config = config or BenchConfig()
    rows = []
    for size in sizes:
        wf = ligo(num_tasks=size, seed=config.seed)
        deco = config.deco()
        plan = deco.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "solve_seconds": plan.solve_seconds,
                "ms_per_task": plan.overhead_ms_per_task(),
                "evaluations": plan.evaluations,
                "feasible": plan.feasible,
            }
        )
    return rows
