"""Service-layer benchmark: latency, throughput, cache, crash recovery.

Produces the repo's ``BENCH_service.json``.  Four sections, all
measured against a real in-process :class:`~repro.service.DecoService`
(journal on disk, warm worker processes, background dispatcher):

* ``latency`` -- submit-to-terminal wall-clock over a batch of distinct
  solve jobs: p50/p99/mean and drain throughput (jobs/s);
* ``cache`` -- the same batch resubmitted: hit rate and hit latency
  (a hit is served at submission, no solver work);
* ``degradation`` -- a burst past ``degrade_depth`` with the dispatcher
  paused: how many jobs the ladder downgraded to the analytic backend
  instead of rejecting;
* ``recovery`` -- one job SIGKILL'd mid-solve: wall-clock from the kill
  to the job's terminal state (respawn + retry + full re-solve), plus
  the terminal state reached (must be ``completed``).
"""

from __future__ import annotations

import json
import os
import signal
import time
import warnings
from pathlib import Path

from repro.bench.harness import BenchConfig
from repro.bench.perf import _git_provenance
from repro.parallel.executor import host_cpu_count
from repro.service import DecoService, ServiceConfig

__all__ = ["bench_service", "write_bench_service_json"]


def _engine_overrides(config: BenchConfig) -> dict:
    return {
        "seed": config.seed,
        "num_samples": config.num_samples,
        "max_evaluations": config.max_evaluations,
    }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile; [] -> 0.0 (tiny n makes p99 = max)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _payload(seed: int, degrees: float = 1.0) -> dict:
    return {
        "workflow": {"app": "montage", "degrees": degrees, "seed": seed},
        "deadline": "medium",
        "percentile": 96.0,
    }


def _drain(service: DecoService, timeout_s: float) -> None:
    service.run_until_idle(timeout_s=timeout_s)


def bench_service(
    config: BenchConfig | None = None,
    *,
    jobs: int = 8,
    workers: int = 2,
    journal_dir: str | None = None,
) -> dict:
    """Measure the service sections; returns the rows/summary dict."""
    import tempfile

    config = config or BenchConfig()
    tmp = journal_dir or tempfile.mkdtemp(prefix="deco-bench-service-")
    results: dict = {"jobs": jobs, "workers": workers}

    # -- latency + throughput + cache (one service, shared journal) --------
    svc_config = ServiceConfig(
        journal_path=os.path.join(tmp, "bench-latency.jsonl"),
        workers=workers,
        degrade_depth=max(jobs + 2, 8),   # no shedding in this section
        reject_depth=max(2 * jobs + 4, 16),
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        engine=_engine_overrides(config),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with DecoService(svc_config) as service:
            t0 = time.monotonic()
            submitted = [
                service.submit(_payload(seed)).job_id for seed in range(jobs)
            ]
            _drain(service, timeout_s=900.0)
            drain_s = time.monotonic() - t0
            latencies = sorted(
                service.queue.get(job_id).latency_s() or 0.0 for job_id in submitted
            )
            states = [service.queue.get(job_id).state for job_id in submitted]
            results["latency"] = {
                "p50_s": round(_percentile(latencies, 50), 6),
                "p99_s": round(_percentile(latencies, 99), 6),
                "mean_s": round(sum(latencies) / len(latencies), 6),
                "drain_s": round(drain_s, 6),
                "throughput_jobs_per_s": round(jobs / drain_s, 6),
                "all_completed": all(s == "completed" for s in states),
            }

            # Cache: identical resubmission -> served at submit time.
            t0 = time.monotonic()
            hits = [service.submit(_payload(seed)) for seed in range(jobs)]
            hit_s = time.monotonic() - t0
            results["cache"] = {
                **service.cache.stats(),
                "all_hits": all(job.cache_hit for job in hits),
                "hit_batch_s": round(hit_s, 6),
            }

            # Problem store: one workflow, several deadlines -- the plan
            # cache misses (different keys) but the compiled problem is
            # attached zero-copy after the first job publishes it.
            sweep = []
            for pct in (90.0, 93.0, 94.0, 98.0):
                payload = _payload(0)
                payload["percentile"] = pct
                sweep.append(service.submit(payload).job_id)
            _drain(service, timeout_s=900.0)
            store = service.stats()["problem_store"]
            results["problem_store"] = {
                **store,
                "sweep_jobs": len(sweep),
                "sweep_completed": all(
                    service.queue.get(j).state == "completed" for j in sweep
                ),
            }

    # -- degradation ladder ------------------------------------------------
    shed_config = ServiceConfig(
        journal_path=os.path.join(tmp, "bench-shed.jsonl"),
        workers=workers,
        degrade_depth=2,
        reject_depth=jobs + 4,
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        engine=_engine_overrides(config),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with DecoService(shed_config) as service:
            # Dispatcher not started: the whole burst lands on the queue,
            # so every job past degrade_depth is downgraded at admission.
            burst = [service.submit(_payload(100 + i)) for i in range(jobs)]
            degraded_n = sum(1 for job in burst if job.degraded)
            _drain(service, timeout_s=900.0)
            terminal = [service.queue.get(job.job_id).state for job in burst]
            results["degradation"] = {
                "burst": jobs,
                "degrade_depth": 2,
                "degraded_jobs": degraded_n,
                "terminal_states": sorted(set(terminal)),
                "all_terminal": all(
                    s in ("completed", "degraded") for s in terminal
                ),
            }

    # -- crash recovery ----------------------------------------------------
    recovery_config = ServiceConfig(
        journal_path=os.path.join(tmp, "bench-recovery.jsonl"),
        workers=workers,
        max_attempts=3,
        backoff_base_s=0.05,
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        engine=_engine_overrides(config),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with DecoService(recovery_config) as service:
            job = service.submit(_payload(7, degrees=2.0))
            # Step until the job is actually on a worker, then kill it.
            t_wait = time.monotonic() + 120.0
            pid = None
            while time.monotonic() < t_wait:
                service.step()
                active = service.pool.active()
                if active:
                    pid = service.pool.worker_pids()[active[0].slot]
                    if pid is not None:
                        break
                time.sleep(0.01)
            if pid is None:
                raise RuntimeError("recovery bench: job never reached a worker")
            os.kill(pid, signal.SIGKILL)
            t_kill = time.monotonic()
            _drain(service, timeout_s=900.0)
            record = service.queue.get(job.job_id)
            results["recovery"] = {
                "killed_pid": pid,
                "recovery_s": round(time.monotonic() - t_kill, 6),
                "terminal_state": record.state,
                "attempts": record.attempts,
                "worker_respawns": service.pool.respawns,
                "recovered": record.state == "completed",
            }
    return results


def write_bench_service_json(
    path: str | Path,
    config: BenchConfig | None = None,
    *,
    jobs: int = 8,
    workers: int = 2,
    results: dict | None = None,
) -> dict:
    """Write the machine-readable service benchmark (``BENCH_service.json``).

    The headline numbers are ``latency.p50_s`` / ``latency.p99_s``,
    ``cache.hit_rate`` and ``recovery.recovery_s``; ``ok`` aggregates
    the section health flags (everything terminal, cache all-hit, the
    killed job recovered).
    """
    config = config or BenchConfig()
    if results is None:
        results = bench_service(config, jobs=jobs, workers=workers)
    payload = {
        "benchmark": "service",
        "unit": "s",
        **_git_provenance(),
        "host_cpu_count": host_cpu_count(),
        **results,
        "ok": bool(
            results["latency"]["all_completed"]
            and results["cache"]["all_hits"]
            and results["degradation"]["all_terminal"]
            and results["recovery"]["recovered"]
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=float) + "\n")
    return payload
