"""Figure 8: cost & time vs probabilistic deadline, Deco vs Autoscaling.

For Montage-1/4/8 under the medium deadline, sweep the probabilistic
requirement p over {90, 92, 94, 96, 98, 99.9}% and measure average
monetary cost and execution time of both optimizers' plans on the
simulator.  Costs/times are normalized to Autoscaling per (workflow, p)
pair, as in the paper.  Expected shapes: Deco's normalized cost < 1
everywhere; both optimizers' plans satisfy the requirement.
"""

from __future__ import annotations

from repro.baselines.autoscaling import autoscaling_plan_calibrated
from repro.bench.harness import BenchConfig
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.workflow.generators import montage

__all__ = ["fig08_probabilistic_deadline_sweep"]

DEFAULT_PERCENTILES = (90.0, 92.0, 94.0, 96.0, 98.0, 99.9)


def fig08_probabilistic_deadline_sweep(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
) -> list[dict]:
    """One row per (workflow, percentile): Deco vs Autoscaling."""
    config = config or BenchConfig()
    cat = config.catalog
    sim = config.simulator()
    backend = VectorizedBackend()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        deco = config.deco()
        d = deco.presets(wf).medium
        for pct in percentiles:
            # The deadline is fixed across the percentile sweep, so every
            # solve after the first reuses makespan samples through the
            # Deco makespan cache; the per-row counter deltas prove it.
            cache_before = deco.cache.counters()
            plan = deco.schedule(wf, d, deadline_percentile=pct)
            cache_after = deco.cache.counters()
            as_plan = autoscaling_plan_calibrated(
                wf, cat, d, pct, config.runtime_model, config.num_samples, seed=config.seed
            )
            problem = CompiledProblem.compile(
                wf, cat, d, pct, config.num_samples, seed=config.seed,
                runtime_model=config.runtime_model,
            )
            as_eval = backend.evaluate(problem, problem.state_from_assignment(as_plan))

            deco_m = sim.summarize(
                sim.run_many(wf, plan.assignment, config.runs_per_plan, workers=config.workers)
            )
            as_m = sim.summarize(
                sim.run_many(wf, as_plan, config.runs_per_plan, workers=config.workers)
            )
            rows.append(
                {
                    "workflow": wf.name,
                    "percentile": pct,
                    "deadline": d,
                    "deco_cost": deco_m["mean_cost"],
                    "as_cost": as_m["mean_cost"],
                    "cost_norm": deco_m["mean_cost"] / as_m["mean_cost"],
                    "deco_time": deco_m["mean_makespan"],
                    "as_time": as_m["mean_makespan"],
                    "time_norm": deco_m["mean_makespan"] / as_m["mean_makespan"],
                    "deco_expected_cost": plan.expected_cost,
                    "as_expected_cost": as_eval.cost,
                    "expected_cost_norm": plan.expected_cost / as_eval.cost,
                    "deco_prob": plan.probability,
                    "as_prob": as_eval.probability,
                    "mk_cache_hits": cache_after["hits"] - cache_before["hits"],
                    "mk_cache_misses": cache_after["misses"] - cache_before["misses"],
                }
            )
    return rows
