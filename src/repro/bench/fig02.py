"""Figure 2: execution-time variance of Deco-optimized Montage plans.

The paper runs Montage-1/4/8 (instance configurations optimized by
Deco) 100 times each on EC2 and shows the quantile spread of the
normalized execution time -- significant variance, attributed to disk
and network I/O interference.  We reproduce it on the simulator: the
per-run makespans are normalized to their own mean and summarized as
quantiles.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import BenchConfig, is_full_profile
from repro.workflow.generators import montage

__all__ = ["fig02_runtime_variance"]


def fig02_runtime_variance(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
) -> list[dict]:
    """One row per Montage scale with normalized-makespan quantiles."""
    config = config or BenchConfig()
    runs = 100 if is_full_profile() else max(20, config.runs_per_plan)
    sim = config.simulator()
    deco = config.deco()
    rows = []
    for deg in degrees:
        wf = montage(degrees=deg, seed=config.seed)
        plan = deco.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
        makespans = np.asarray(
            [
                r.makespan
                for r in sim.run_many(wf, plan.assignment, runs, workers=config.workers)
            ]
        )
        norm = makespans / makespans.mean()
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf),
                "runs": runs,
                "min": float(norm.min()),
                "p25": float(np.percentile(norm, 25)),
                "median": float(np.percentile(norm, 50)),
                "p75": float(np.percentile(norm, 75)),
                "max": float(norm.max()),
                "spread": float(norm.max() - norm.min()),
            }
        )
    return rows
