"""Figure 11: deadline-parameter sensitivity (tight / medium / loose).

Montage-8 under the three deadline settings; average monetary cost and
execution time of Deco vs Autoscaling, normalized to Autoscaling under
the *tight* deadline.  Expected shapes: Deco <= Autoscaling at every
setting; cost decreases and execution time increases as the deadline
loosens (cheaper instances become admissible).
"""

from __future__ import annotations

from repro.baselines.autoscaling import autoscaling_plan_calibrated
from repro.bench.harness import BenchConfig
from repro.workflow.generators import montage

__all__ = ["fig11_deadline_sensitivity"]


def fig11_deadline_sensitivity(
    config: BenchConfig | None = None,
    degrees: float = 8.0,
    settings: tuple[str, ...] = ("tight", "medium", "loose"),
) -> list[dict]:
    """One row per deadline setting, both algorithms, Fig.-11 normalization."""
    config = config or BenchConfig()
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()
    presets = deco.presets(wf)
    sim = config.simulator()
    pct = config.deadline_percentile

    rows = []
    for setting in settings:
        d = presets.get(setting)
        plan = deco.schedule(wf, d, deadline_percentile=pct)
        as_plan = autoscaling_plan_calibrated(
            wf, config.catalog, d, pct, config.runtime_model,
            config.num_samples, seed=config.seed,
        )
        deco_m = sim.summarize(
            sim.run_many(wf, plan.assignment, config.runs_per_plan, workers=config.workers)
        )
        as_m = sim.summarize(
            sim.run_many(wf, as_plan, config.runs_per_plan, workers=config.workers)
        )
        rows.append(
            {
                "deadline": setting,
                "deadline_seconds": d,
                "deco_cost": deco_m["mean_cost"],
                "as_cost": as_m["mean_cost"],
                "deco_time": deco_m["mean_makespan"],
                "as_time": as_m["mean_makespan"],
                "deco_expected_cost": plan.expected_cost,
            }
        )
    # Normalize to Autoscaling under the tight deadline (the paper's axis).
    ref_cost = rows[0]["as_cost"]
    ref_time = rows[0]["as_time"]
    for r in rows:
        r["deco_cost_norm"] = r["deco_cost"] / ref_cost
        r["as_cost_norm"] = r["as_cost"] / ref_cost
        r["deco_time_norm"] = r["deco_time"] / ref_time
        r["as_time_norm"] = r["as_time"] / ref_time
    return rows
