"""Figure 1: average cost of Montage under different instance configs.

Seven scenarios: the four single-type configurations, Random,
Autoscaling and Deco; cost is the measured (billed) average over
repeated simulated runs, normalized to the most expensive configuration
(m1.xlarge in the paper).  The paper's headline shapes:

* m1.small / m1.medium are cheap but miss the deadline;
* among deadline-meeting configurations Deco is cheapest,
  about 40% of m1.xlarge's cost.
"""

from __future__ import annotations

from repro.baselines.autoscaling import autoscaling_plan_calibrated
from repro.baselines.static import random_plan, single_type_plan
from repro.bench.harness import BenchConfig
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.workflow.generators import montage

__all__ = ["fig01_instance_configs"]


def fig01_instance_configs(
    config: BenchConfig | None = None,
    degrees: float = 1.0,
    deadline: str = "medium",
) -> list[dict]:
    """One row per configuration: mean cost, mean makespan, feasibility."""
    config = config or BenchConfig()
    cat = config.catalog
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()
    d = deco.presets(wf).get(deadline)
    pct = config.deadline_percentile

    problem = CompiledProblem.compile(
        wf, cat, d, pct, config.num_samples, seed=config.seed,
        runtime_model=config.runtime_model,
    )
    backend = VectorizedBackend()
    sim = config.simulator()

    plans: dict[str, dict[str, str]] = {
        name: single_type_plan(wf, name, cat) for name in cat.type_names
    }
    plans["random"] = random_plan(wf, cat, seed=config.seed)
    plans["autoscaling"] = autoscaling_plan_calibrated(
        wf, cat, d, pct, config.runtime_model, config.num_samples, seed=config.seed
    )
    plans["deco"] = dict(deco.schedule(wf, d, deadline_percentile=pct).assignment)

    rows = []
    for name, plan in plans.items():
        ev = backend.evaluate(problem, problem.state_from_assignment(plan))
        results = sim.run_many(wf, plan, config.runs_per_plan, workers=config.workers)
        summary = sim.summarize(results)
        rows.append(
            {
                "config": name,
                "mean_cost": summary["mean_cost"],
                "mean_makespan": summary["mean_makespan"],
                "meets_deadline": ev.feasible,
                "deadline_prob": ev.probability,
                "expected_cost": ev.cost,
            }
        )
    reference = max(r["mean_cost"] for r in rows)
    for r in rows:
        r["cost_norm"] = r["mean_cost"] / reference
    return rows
