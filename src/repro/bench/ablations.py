"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one Deco design
decision and measures what it buys.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import BenchConfig
from repro.engine.ensemble import EnsembleDriver
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.search import AStarSearch, GenericSearch
from repro.workflow.generators import montage

__all__ = [
    "ablation_probabilistic_vs_deterministic",
    "ablation_mc_iterations",
    "ablation_astar_pruning",
    "ablation_search_seeds",
    "ablation_failure_injection",
]


def ablation_probabilistic_vs_deterministic(
    config: BenchConfig | None = None,
    degrees: float = 1.0,
    percentile: float = 96.0,
) -> list[dict]:
    """Deco's probabilistic constraint vs the deterministic (mean) notion.

    The deterministic variant optimizes against "mean makespan <= D"
    (the notion the paper argues is unsafe); we then measure how often
    each plan actually meets D on the dynamic cloud.  Expected shape:
    the deterministic plan is cheaper but misses the probabilistic
    requirement; the probabilistic plan pays a small premium and meets
    it.
    """
    config = config or BenchConfig()
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()
    d = deco.presets(wf).medium
    sim = config.simulator()
    rows = []
    for notion, pct in (("probabilistic", percentile), ("deterministic", 50.0)):
        plan = deco.schedule(wf, d, deadline_percentile=pct)
        results = sim.run_many(
            wf, plan.assignment, max(20, config.runs_per_plan), workers=config.workers
        )
        makespans = np.asarray([r.makespan for r in results])
        rows.append(
            {
                "notion": notion,
                "expected_cost": plan.expected_cost,
                "measured_cost": float(np.mean([r.cost for r in results])),
                "deadline_hit_rate": float(np.mean(makespans <= d)),
                "required": percentile / 100.0,
                "meets_requirement": float(np.mean(makespans <= d)) >= percentile / 100.0 - 0.05,
            }
        )
    return rows


def ablation_mc_iterations(
    config: BenchConfig | None = None,
    degrees: float = 1.0,
    sample_counts: tuple[int, ...] = (10, 25, 50, 100, 200, 400),
) -> list[dict]:
    """Monte Carlo iteration count: probability-estimate error vs cost.

    The reference is the largest sample count; the error is the absolute
    deviation of the deadline-probability estimate on a fixed plan.
    """
    config = config or BenchConfig()
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()
    d = deco.presets(wf).medium
    plan = deco.schedule(wf, d, deadline_percentile=config.deadline_percentile)
    backend = VectorizedBackend()

    def prob_at(samples: int, seed: int) -> float:
        problem = CompiledProblem.compile(
            wf, config.catalog, d, config.deadline_percentile, samples,
            seed=seed, runtime_model=config.runtime_model,
        )
        return backend.evaluate(problem, problem.state_from_assignment(plan.assignment)).probability

    reference = prob_at(max(sample_counts) * 4, seed=config.seed + 999)
    rows = []
    for s in sample_counts:
        estimates = [prob_at(s, seed=config.seed + i) for i in range(5)]
        rows.append(
            {
                "samples": s,
                "mean_estimate": float(np.mean(estimates)),
                "reference": reference,
                "abs_error": float(np.mean([abs(e - reference) for e in estimates])),
                "std": float(np.std(estimates)),
            }
        )
    return rows


def ablation_astar_pruning(config: BenchConfig | None = None) -> list[dict]:
    """A* (admissible potential heuristic) vs uninformed search (h = 0)
    on ensemble admission: expanded-state counts for the same optimum."""
    from repro.bench.fig09 import build_bench_ensemble

    config = config or BenchConfig()
    base = build_bench_ensemble("uniform_unsorted", config)
    deco = config.deco(max_evaluations=400)
    driver = EnsembleDriver(deco)
    plans = driver.member_plans(base, workers=config.workers)
    costs = {p: plans[p].expected_cost for p in plans if plans[p].feasible}
    budget = 0.5 * sum(costs.values())

    scores = {p: 2.0 ** (-p) for p in costs}
    candidates = sorted(costs)

    def run(with_h: bool):
        astar = AStarSearch(max_expansions=200_000)

        def used(state):
            return sum(costs[p] for p in state)

        def addable(state):
            rem = budget - used(state)
            start = max(state) + 1 if state else 0
            return [p for p in candidates if p >= start and costs[p] <= rem + 1e-12]

        def neighbors(state):
            return [frozenset(state | {p}) for p in addable(state)]

        def g(state):
            return -sum(scores[p] for p in state)

        def h(state):
            if not with_h:
                return 0.0
            rem = budget - used(state)
            start = max(state) + 1 if state else 0
            return -sum(scores[p] for p in candidates if p >= start and costs[p] <= rem + 1e-12)

        def goal(state):
            return not addable(state)

        return astar.solve(frozenset(), neighbors, g, h, goal)

    informed = run(True)
    uninformed = run(False)
    return [
        {
            "variant": "astar",
            "expanded": informed.expanded,
            "score": -informed.best_f if informed.found_goal else float("nan"),
        },
        {
            "variant": "uninformed",
            "expanded": uninformed.expanded,
            "score": -uninformed.best_f if uninformed.found_goal else float("nan"),
        },
    ]


def ablation_search_seeds(
    config: BenchConfig | None = None,
    degrees: float = 1.0,
) -> list[dict]:
    """Warm-start seeds vs cold start (all-cheapest only) for the
    transformation-driven search: solution quality and evaluations."""
    config = config or BenchConfig()
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()
    d = deco.presets(wf).medium
    problem = CompiledProblem.compile(
        wf, config.catalog, d, config.deadline_percentile, config.num_samples,
        seed=config.seed, runtime_model=config.runtime_model,
    )
    search = GenericSearch(max_evaluations=config.max_evaluations)
    cold = search.solve(problem)
    warm_plan = deco.schedule(wf, d, deadline_percentile=config.deadline_percentile)
    return [
        {
            "variant": "cold",
            "cost": cold.best_eval.cost,
            "feasible": cold.best_eval.feasible,
            "evaluations": cold.evaluations,
        },
        {
            "variant": "warm",
            "cost": warm_plan.expected_cost,
            "feasible": warm_plan.feasible,
            "evaluations": warm_plan.evaluations,
        },
    ]


def ablation_failure_injection(
    config: BenchConfig | None = None,
    degrees: float = 1.0,
    failure_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
) -> list[dict]:
    """Robustness under task failures (Condor retry discipline).

    Executes the same Deco plan with increasing per-attempt failure
    probabilities; failed attempts burn billed instance time and delay
    children.  Expected shape: measured cost and makespan grow
    monotonically (in expectation) with the failure rate while the plan
    still completes.
    """
    config = config or BenchConfig()
    wf = montage(degrees=degrees, seed=config.seed)
    deco = config.deco()
    plan = deco.schedule(wf, "medium", deadline_percentile=config.deadline_percentile)
    sim = config.simulator()
    rows = []
    for rate in failure_rates:
        # One code route with the parallel runtime: run_many owns the
        # per-run loop (and its failure-injection knobs) for both the
        # serial and multi-worker paths.
        results = sim.run_many(
            wf,
            plan.assignment,
            max(6, config.runs_per_plan),
            failure_rate=rate,
            max_retries=50,
            workers=config.workers,
        )
        rows.append(
            {
                "failure_rate": rate,
                "mean_cost": float(np.mean([r.cost for r in results])),
                "mean_makespan": float(np.mean([r.makespan for r in results])),
                "deadline_hit_rate": float(
                    np.mean([r.makespan <= plan.deadline for r in results])
                ),
            }
        )
    return rows
