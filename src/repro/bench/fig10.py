"""Figure 10: follow-the-cost migration, Deco vs the Heuristic baseline.

(a) total monetary cost vs workflow size (Montage-1/4/8 fleets split
    between US East and Singapore), normalized to the Heuristic;
(b) cost vs the Heuristic's re-optimization threshold (10-90%) on the
    largest fleet.

Expected shapes: Deco cheapest at every size with a gap growing in
workflow size; Deco below the Heuristic at every threshold.
"""

from __future__ import annotations

from repro.bench.harness import BenchConfig, is_full_profile
from repro.engine.followcost import FollowCostDriver, WorkflowDeployment
from repro.parallel.workers import solve_plans
from repro.workflow.generators import ligo, montage

__all__ = ["fig10_follow_the_cost", "build_fleet"]

#: The workflow-size axis.  The paper runs Montage-1/4/8 fleets.  Under
#: our calibrated data model and the (real, 2014) m1 price ladder --
#: which is nearly linear in CPU speed -- the two runtime mechanisms
#: split cleanly by application: inter-region migration only pays on
#: low-data (CPU-bound) workflows, and runtime type re-optimization
#: only pays on I/O-bound tasks.  The fleet therefore mixes the paper's
#: I/O-bound (Montage) and CPU-bound (Ligo) applications at each size
#: so both mechanisms are exercised (see EXPERIMENTS.md).
SIZE_AXIS = {1.0: 40, 4.0: 150, 8.0: 400}


def build_fleet(
    config: BenchConfig,
    degrees: float,
    per_region: int | None = None,
) -> list[WorkflowDeployment]:
    """Workflows split between the two regions, Deco-planned at home.

    The paper deploys 10-50 workflows per data center; the quick profile
    uses a handful.  Every deployment keeps the instance-type plan Deco
    produced for its home region and a loose-ish deadline so migration
    is *possible* but not free.
    """
    if per_region is None:
        per_region = 8 if is_full_profile() else 3
    num_tasks = SIZE_AXIS.get(degrees, int(40 * degrees))
    deco = config.deco(max_evaluations=600)
    regions = config.catalog.region_names
    rng = config.rngs.fresh(f"fig10/{degrees}")
    workflows = []
    for i in range(per_region * len(regions)):
        if i % 2 == 0:
            wf = ligo(num_tasks=num_tasks, seed=config.seed + i, name=f"ligo-{degrees:g}-w{i}")
        else:
            wf = montage(
                degrees=degrees, seed=config.seed + i, name=f"montage-{degrees:g}-w{i}"
            )
        workflows.append(wf)
    # The per-workflow home-region solves are independent -- fan them out.
    plans = solve_plans(
        deco,
        [(i, wf, "medium", config.deadline_percentile) for i, wf in enumerate(workflows)],
        workers=config.workers,
    )
    fleet: list[WorkflowDeployment] = []
    for i, wf in enumerate(workflows):
        plan = plans[i]
        region = regions[i % len(regions)]
        # Follow-the-cost uses the static deadline notion; give each
        # workflow serial-execution headroom plus jitter like the paper's
        # randomized fleets.
        serial_time = sum(
            config.runtime_model.mean(wf.task(t), plan.assignment[t]) for t in wf.task_ids
        )
        deadline = serial_time * float(rng.uniform(1.5, 2.5))
        fleet.append(
            WorkflowDeployment(
                workflow=wf,
                assignment=dict(plan.assignment),
                region=region,
                deadline=deadline,
            )
        )
    return fleet


def fig10_follow_the_cost(
    config: BenchConfig | None = None,
    degrees: tuple[float, ...] = (1.0, 4.0, 8.0),
    thresholds: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    threshold_degrees: float | None = None,
) -> dict[str, list[dict]]:
    """Returns ``{"by_size": rows, "by_threshold": rows}``."""
    config = config or BenchConfig()
    driver = FollowCostDriver(config.catalog, seed=config.seed, runtime_model=config.runtime_model)

    by_size = []
    fleets: dict[float, list[WorkflowDeployment]] = {}
    for deg in degrees:
        fleet = build_fleet(config, deg)
        fleets[deg] = fleet
        deco_res = driver.run(fleet, policy="deco")
        heur_res = driver.run(fleet, policy="heuristic", threshold=0.5)
        static_res = driver.run(fleet, policy="static")
        by_size.append(
            {
                "workflow": f"fleet-size{deg:g}",
                "fleet": len(fleet),
                "deco_cost": deco_res.total_cost,
                "heuristic_cost": heur_res.total_cost,
                "static_cost": static_res.total_cost,
                "cost_norm": deco_res.total_cost / heur_res.total_cost,
                "deco_migrations": deco_res.num_migrations,
                "heuristic_migrations": heur_res.num_migrations,
                "deco_deadlines_met": deco_res.deadlines_met,
                "heuristic_deadlines_met": heur_res.deadlines_met,
            }
        )

    tdeg = threshold_degrees if threshold_degrees is not None else max(degrees)
    fleet = fleets.get(tdeg) or build_fleet(config, tdeg)
    deco_res = driver.run(fleet, policy="deco")
    by_threshold = []
    for th in thresholds:
        heur_res = driver.run(fleet, policy="heuristic", threshold=th)
        by_threshold.append(
            {
                "threshold": th,
                "deco_cost": deco_res.total_cost,
                "heuristic_cost": heur_res.total_cost,
                "cost_norm": deco_res.total_cost / heur_res.total_cost,
            }
        )
    return {"by_size": by_size, "by_threshold": by_threshold}
