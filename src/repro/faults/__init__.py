"""First-class fault subsystem: declarative fault models and recovery.

The paper's Monte Carlo evaluation treats cloud *performance* as the
only source of uncertainty; real IaaS runs also lose instances mid-task
(crash-stop hardware failures, spot-market revocations) and suffer
transient task failures and stragglers.  This package makes those
events first-class and declarative:

* :class:`~repro.faults.model.FaultModel` -- *what can go wrong*:
  per-attempt transient task failures (generalizing the simulator's old
  ``failure_rate`` knob), per-instance crash-stop failures with
  exponential MTBF, spot revocations driven by
  :class:`~repro.cloud.spot.SpotPriceProcess`, and straggler slowdown
  events.  All draws come from named
  :class:`~repro.common.rng.RngService` streams so fault-injected runs
  stay bit-identical at any worker count.
* :class:`~repro.faults.recovery.RecoveryPolicy` -- *what we do about
  it*: bounded retries with exponential backoff, resubmission to a
  fresh instance, and an optional
  :class:`~repro.faults.recovery.CheckpointModel` with configurable
  overhead so a crashed task resumes from its last checkpoint instead
  of from zero.

Both sides also expose *analytic* expectations
(:meth:`FaultModel.inflate`,
:meth:`RecoveryPolicy.expected_attempts`) so the optimizer can score
plans *under* the fault model (see
:meth:`repro.solver.backends.CompiledProblem.with_faults`), closing the
loop the ISSUE calls fault-aware provisioning.
"""

from repro.faults.model import FaultModel, SpotMarket
from repro.faults.recovery import CheckpointModel, RecoveryPolicy

__all__ = ["FaultModel", "SpotMarket", "CheckpointModel", "RecoveryPolicy"]
