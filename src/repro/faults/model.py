"""Declarative fault models for the cloud execution substrate.

A :class:`FaultModel` describes *what can go wrong* during a run,
independently of what the simulator or scheduler does about it (that is
:class:`~repro.faults.recovery.RecoveryPolicy`'s job):

* **transient task failures** -- each task *attempt* fails with
  probability ``task_failure_rate`` and burns its sampled runtime on
  the instance (the simulator's original ``failure_rate`` knob,
  generalized);
* **instance crash-stop failures** -- every acquired instance draws an
  exponential time-to-failure with mean ``instance_mtbf`` seconds; a
  crash kills the task running on it at the crash instant and retires
  the instance;
* **spot revocations** -- when a :class:`SpotMarket` is attached,
  instances are spot instances: an hourly price path is drawn from
  :class:`~repro.cloud.spot.SpotPriceProcess` and the instance is
  revoked the first hour the market price exceeds the bid (the
  provider-interrupted hour is free, the 2014 EC2 billing rule);
* **stragglers** -- with probability ``straggler_rate`` an attempt runs
  ``straggler_slowdown``x slower than its sampled runtime.

Every stochastic draw takes an explicit ``numpy`` generator; the
simulator derives it from the named stream
``faults/<workflow>/<region>/<run_id>``, so fault-injected runs are
bit-identical for any worker count and independent of the performance
streams (enabling faults never perturbs the cloud's performance trace).

The model also exposes its own *analytic expectation* (:meth:`inflate`)
so the optimizer can score plans under it: per-task runtimes are
inflated by the expected-retry geometric series, the expected straggler
slowdown, steady-state checkpoint overhead, and a first-order
crash-rework term -- the fault-aware provisioning path benchmarked by
``repro bench faults``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.cloud.spot import SpotPriceProcess
from repro.faults.recovery import RecoveryPolicy

__all__ = ["FaultModel", "SpotMarket"]


@dataclass(frozen=True)
class SpotMarket:
    """Spot-market participation: bid level and price-process shape.

    ``bid_fraction`` is the bid as a fraction of the on-demand price
    (1.0 = bid exactly on-demand).  The remaining parameters configure
    the per-type :class:`~repro.cloud.spot.SpotPriceProcess`.
    """

    bid_fraction: float = 1.0
    horizon_hours: int = 168
    mean_fraction: float = 0.3
    phi: float = 0.7
    sigma_fraction: float = 0.12

    def __post_init__(self):
        if self.bid_fraction <= 0:
            raise ValidationError(f"bid_fraction must be > 0, got {self.bid_fraction}")
        if self.horizon_hours < 1:
            raise ValidationError(f"horizon_hours must be >= 1, got {self.horizon_hours}")

    def process_for(self, catalog, type_name: str, region: str | None = None) -> SpotPriceProcess:
        """The price process of one catalog type in one region."""
        return SpotPriceProcess.for_type(
            catalog,
            type_name,
            region,
            mean_fraction=self.mean_fraction,
            phi=self.phi,
            sigma_fraction=self.sigma_fraction,
        )

    def bid(self, process: SpotPriceProcess) -> float:
        return self.bid_fraction * process.on_demand

    @staticmethod
    def revocation_hour(prices: np.ndarray, bid: float) -> int | None:
        """First hour index whose market price exceeds ``bid`` (None: never)."""
        over = np.nonzero(prices > bid)[0]
        return int(over[0]) if over.size else None

    def revocation_probability_per_hour(self, process: SpotPriceProcess) -> float:
        """Stationary P(price > bid) of the AR(1) process (analytic).

        The discrete OU process has stationary mean ``mean_price`` and
        stationary std ``sigma / sqrt(1 - phi**2)``; the clamping to
        [floor, cap] is ignored (second-order for historical defaults).
        """
        bid = self.bid(process)
        sigma = process.sigma_fraction * process.on_demand
        stat_sd = sigma / math.sqrt(1.0 - process.phi**2)
        if stat_sd <= 0:
            return 0.0 if bid >= process.mean_price else 1.0
        z = (bid - process.mean_price) / stat_sd
        return 0.5 * (1.0 - math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class FaultModel:
    """What can go wrong: the declarative fault surface of one run."""

    task_failure_rate: float = 0.0
    instance_mtbf: float = math.inf
    straggler_rate: float = 0.0
    straggler_slowdown: float = 2.5
    spot: SpotMarket | None = field(default=None)

    def __post_init__(self):
        if not 0.0 <= self.task_failure_rate < 1.0:
            raise ValidationError(
                f"task_failure_rate must be in [0, 1), got {self.task_failure_rate}"
            )
        if self.instance_mtbf <= 0:
            raise ValidationError(f"instance_mtbf must be > 0, got {self.instance_mtbf}")
        if not 0.0 <= self.straggler_rate < 1.0:
            raise ValidationError(
                f"straggler_rate must be in [0, 1), got {self.straggler_rate}"
            )
        if self.straggler_slowdown < 1.0:
            raise ValidationError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )

    # Classification --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any fault source is active."""
        return (
            self.task_failure_rate > 0.0
            or math.isfinite(self.instance_mtbf)
            or self.straggler_rate > 0.0
            or self.spot is not None
        )

    @classmethod
    def from_legacy(cls, failure_rate: float) -> "FaultModel":
        """The simulator's original scalar ``failure_rate`` knob."""
        return cls(task_failure_rate=failure_rate)

    def describe(self) -> dict:
        """JSON-ready summary for bench payloads and plan provenance."""
        return {
            "task_failure_rate": self.task_failure_rate,
            "instance_mtbf": self.instance_mtbf if math.isfinite(self.instance_mtbf) else None,
            "straggler_rate": self.straggler_rate,
            "straggler_slowdown": self.straggler_slowdown,
            "spot_bid_fraction": self.spot.bid_fraction if self.spot else None,
        }

    # Stochastic draws (simulation side) ------------------------------------

    def attempt_fails(self, rng: np.random.Generator) -> bool:
        """Transient per-attempt failure draw (no draw when rate is 0)."""
        if self.task_failure_rate == 0.0:
            return False
        return bool(rng.random() < self.task_failure_rate)

    def straggler_factor(self, rng: np.random.Generator) -> float:
        """Per-attempt slowdown multiplier (1.0, or the straggler factor)."""
        if self.straggler_rate == 0.0:
            return 1.0
        return self.straggler_slowdown if rng.random() < self.straggler_rate else 1.0

    def crash_time(self, acquired: float, rng: np.random.Generator) -> float:
        """Absolute crash-stop instant of an instance acquired at ``acquired``."""
        if not math.isfinite(self.instance_mtbf):
            return math.inf
        return acquired + float(rng.exponential(self.instance_mtbf))

    # Analytic expectations (optimizer side) --------------------------------

    @property
    def expected_straggler_factor(self) -> float:
        return 1.0 + self.straggler_rate * (self.straggler_slowdown - 1.0)

    def inflate(self, times: np.ndarray, recovery: RecoveryPolicy) -> np.ndarray:
        """Expected effective runtimes under this fault model.

        ``t' = t * A * G * C + (t * A * G * C / MTBF) * rework`` where
        ``A`` is the expected-retry geometric series over the retry
        budget, ``G`` the expected straggler slowdown, ``C`` the
        steady-state checkpoint overhead factor, and the additive term
        is the first-order crash-rework expectation (expected number of
        crashes during the task times the expected work lost per crash:
        half the task without checkpoints, half a checkpoint interval
        plus the restore cost with them).  Element-wise over any array
        of task times -- the solver applies it to the whole ``(K, S, N)``
        sample tensor.
        """
        t = np.asarray(times, dtype=float)
        factor = recovery.expected_attempts(self.task_failure_rate)
        factor *= self.expected_straggler_factor
        if recovery.checkpoint is not None:
            factor *= recovery.checkpoint.overhead_factor
        out = t * factor
        crash_rate = 0.0
        if math.isfinite(self.instance_mtbf):
            crash_rate += 1.0 / self.instance_mtbf
        # Spot revocations behave like crashes with an hourly hazard.
        if self.spot is not None:
            # The hazard is type-dependent only through the price level,
            # which cancels in the fractions; use fraction parameters on
            # a unit on-demand price.
            proc = SpotPriceProcess(
                on_demand=1.0,
                mean_fraction=self.spot.mean_fraction,
                phi=self.spot.phi,
                sigma_fraction=self.spot.sigma_fraction,
            )
            crash_rate += self.spot.revocation_probability_per_hour(proc) / 3600.0
        if crash_rate > 0.0:
            if recovery.checkpoint is not None:
                rework = 0.5 * recovery.checkpoint.interval + recovery.checkpoint.restore
                out = out + out * crash_rate * rework
            else:
                # Without checkpoints a crash loses half the attempt on
                # average: t' = t / (1 - t * rate / 2), first order.
                out = out * (1.0 + 0.5 * np.minimum(out * crash_rate, 0.9))
        return out

    def plan_success_probability(self, num_tasks: int, recovery: RecoveryPolicy) -> float:
        """P(every task succeeds within its retry budget) -- analytic.

        Only transient failures bound success here: crash/revocation
        failures resubmit to fresh capacity, and the elastic pool always
        has more (they consume retry budget in *simulation*, but the
        analytic model keeps the clean geometric form the reliability
        constraint declares).
        """
        if num_tasks < 0:
            raise ValidationError(f"num_tasks must be >= 0, got {num_tasks}")
        return recovery.success_probability(self.task_failure_rate) ** num_tasks
