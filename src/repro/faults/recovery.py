"""Recovery policies: retries, backoff, and checkpoint/restart.

The simulator's old recovery discipline was a single ``max_retries``
knob with immediate resubmission to the same instance.  This module
generalizes it into a declarative policy object the simulator, the WMS
queue and the optimizer all consume:

* bounded retries (``max_retries``) with exponential backoff
  (``backoff_base * backoff_factor**(attempt-1)``, capped);
* resubmission to a *fresh* instance (``resubmit_fresh``), the Condor
  "don't reuse the machine that just failed me" discipline;
* an optional :class:`CheckpointModel`: tasks periodically checkpoint
  (paying a write overhead), and an instance crash resumes the task
  from its last completed checkpoint (paying a restore cost) instead of
  re-executing from zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ValidationError

__all__ = ["CheckpointModel", "RecoveryPolicy"]


@dataclass(frozen=True)
class CheckpointModel:
    """Periodic checkpoint/restart with configurable overhead.

    ``interval`` seconds of useful work are followed by a checkpoint
    write of ``overhead`` seconds; a resume after a crash costs
    ``restore`` seconds before work continues.  Progress up to the last
    *completed* checkpoint survives a crash; everything after it is
    re-executed.
    """

    interval: float
    overhead: float = 0.0
    restore: float = 0.0

    def __post_init__(self):
        if self.interval <= 0:
            raise ValidationError(f"checkpoint interval must be > 0, got {self.interval}")
        if self.overhead < 0 or self.restore < 0:
            raise ValidationError("checkpoint overhead/restore must be >= 0")

    def num_checkpoints(self, work: float) -> int:
        """Checkpoints written while executing ``work`` seconds of work.

        Checkpoints land at interval boundaries strictly inside the
        work; no checkpoint is written at completion.
        """
        if work <= 0:
            return 0
        return max(0, math.ceil(work / self.interval) - 1)

    def wall_time(self, work: float) -> float:
        """Wall-clock seconds to execute ``work`` seconds of useful work."""
        return work + self.num_checkpoints(work) * self.overhead

    def surviving_work(self, elapsed: float, work: float) -> float:
        """Work preserved when a crash hits ``elapsed`` s into an attempt.

        The k-th checkpoint completes at ``k * (interval + overhead)``
        wall seconds; the surviving work is ``k * interval`` for the
        largest completed k, capped at the attempt's total work.
        """
        if elapsed <= 0:
            return 0.0
        k = int(elapsed // (self.interval + self.overhead))
        return min(k * self.interval, max(work, 0.0))

    @property
    def overhead_factor(self) -> float:
        """Asymptotic wall-time inflation of steady-state checkpointing."""
        return (self.interval + self.overhead) / self.interval


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the execution substrate does when a task attempt fails."""

    max_retries: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap: float = 3600.0
    resubmit_fresh: bool = False
    checkpoint: CheckpointModel | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValidationError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValidationError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_cap < 0:
            raise ValidationError(f"backoff_cap must be >= 0, got {self.backoff_cap}")

    def backoff_delay(self, attempt: int) -> float:
        """Delay before resubmitting after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        if self.backoff_base == 0.0:
            return 0.0
        return min(self.backoff_base * self.backoff_factor ** (attempt - 1), self.backoff_cap)

    def attempt_wall_time(self, work: float, resuming: bool = False) -> float:
        """Wall-clock duration of one attempt executing ``work`` seconds.

        Adds checkpoint-write overhead and, when ``resuming`` from a
        previous crash, the one-time restore cost.
        """
        if self.checkpoint is None:
            return work
        t = self.checkpoint.wall_time(work)
        if resuming:
            t += self.checkpoint.restore
        return t

    def expected_attempts(self, failure_rate: float) -> float:
        """Analytic expected attempt count under per-attempt failures.

        Geometric series over the retry budget R = ``max_retries``:
        ``sum_{k=0..R} f**k = (1 - f**(R+1)) / (1 - f)`` -- each failed
        attempt burns its full sampled runtime, so this is also the
        expected runtime-inflation factor from transient failures.
        """
        if not 0.0 <= failure_rate < 1.0:
            raise ValidationError(f"failure_rate must be in [0, 1), got {failure_rate}")
        if failure_rate == 0.0:
            return 1.0
        r = self.max_retries
        return (1.0 - failure_rate ** (r + 1)) / (1.0 - failure_rate)

    def success_probability(self, failure_rate: float) -> float:
        """P(a task succeeds within the retry budget): ``1 - f**(R+1)``."""
        if not 0.0 <= failure_rate < 1.0:
            raise ValidationError(f"failure_rate must be in [0, 1), got {failure_rate}")
        return 1.0 - failure_rate ** (self.max_retries + 1)
